//! Integration tests for the static-analysis layer (`pmcs-audit`):
//! audited solves agree with plain solves on random feasible problems,
//! the generated WCRT formulations lint clean, and corrupted traces are
//! pinned to the protocol rule they break.

use proptest::prelude::*;

use pmcs::milp::{Cmp, Problem, Solver};
use pmcs::prelude::*;
use pmcs::sim::{SimResult, TraceUnit};

// --- audited vs. unaudited agreement ------------------------------------

#[derive(Debug, Clone)]
struct VarSpec {
    integral: bool,
    upper: i64,
    obj: i64,
}

#[derive(Debug, Clone)]
struct ConSpec {
    coeffs: Vec<i64>,
    rhs: i64,
}

fn var_spec() -> impl Strategy<Value = VarSpec> {
    (any::<bool>(), 1i64..=10, -5i64..=5).prop_map(|(integral, upper, obj)| VarSpec {
        integral,
        upper,
        obj,
    })
}

/// Builds a problem that is feasible by construction: all variables live
/// in `[0, ub]` and every constraint is `Σ aᵢxᵢ ≤ b` with `b ≥ 0`, so the
/// origin always satisfies everything.
fn build_problem(vars: &[VarSpec], cons: &[ConSpec]) -> Problem {
    let mut p = Problem::maximize();
    let handles: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if v.integral {
                p.integer(format!("x{i}"), 0.0, v.upper as f64)
            } else {
                p.continuous(format!("x{i}"), 0.0, v.upper as f64)
            }
        })
        .collect();
    for c in cons {
        let mut expr = pmcs::milp::LinExpr::zero();
        for (i, &a) in c.coeffs.iter().enumerate() {
            expr.add_term(handles[i], a as f64);
        }
        p.constrain(expr, Cmp::Le, c.rhs as f64);
    }
    let mut obj = pmcs::milp::LinExpr::zero();
    for (i, v) in vars.iter().enumerate() {
        obj.add_term(handles[i], v.obj as f64);
    }
    p.set_objective(obj);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `solve_audited` returns the same answer as `solve` on random
    /// feasible problems, and the exact-arithmetic audit never refutes it.
    #[test]
    fn audited_solves_agree_with_unaudited(
        vars in prop::collection::vec(var_spec(), 1..=5),
        cons_seed in prop::collection::vec((prop::collection::vec(-5i64..=5, 5), 0i64..=20), 0..=6),
    ) {
        let cons: Vec<ConSpec> = cons_seed
            .into_iter()
            .map(|(coeffs, rhs)| ConSpec { coeffs: coeffs[..vars.len()].to_vec(), rhs })
            .collect();
        let problem = build_problem(&vars, &cons);
        let solver = Solver::new();
        let plain = solver.solve(&problem).expect("feasible by construction");
        let audited = solver.solve_audited(&problem).expect("feasible by construction");
        let sol = audited.solution().expect("a feasible problem yields a solution");
        prop_assert!((plain.objective() - sol.objective()).abs() <= 1e-9,
            "plain {} vs audited {}", plain.objective(), sol.objective());
        prop_assert_eq!(plain.status(), sol.status());
        prop_assert!(!audited.report.failed(),
            "audit refuted a correct solve: {:?}", audited.report);
        if sol.is_optimal() {
            prop_assert!(audited.report.certified(),
                "optimal solve not certified: {:?}", audited.report);
        }
    }

    /// The WCRT window formulations produced by `MilpEngine` carry no
    /// lint errors (A002/A003) for random generated task sets.
    #[test]
    fn generated_formulations_lint_clean(seed in 0u64..40) {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig { n: 4, utilization: 0.4, ..TaskSetConfig::default() },
            seed,
        );
        let set = generator.generate();
        let engine = MilpEngine::new();
        for task in set.iter() {
            let case = pmcs::core::window::case_for(task.sensitivity());
            let w = pmcs::core::WindowModel::build(&set, task.id(), case, task.deadline())
                .expect("task id is in the set");
            let report = lint(&engine.build_problem(&w));
            prop_assert!(!report.has_errors(), "{:?}", report.diagnostics());
        }
    }

    /// With the per-slot big-M caps derived from the window data
    /// (`SlotCaps`), the delay-linking rows of real window formulations
    /// are tight enough that the loose-big-M lint (`A007`) stays quiet —
    /// the regression guard for the C13a/C13b tightening.
    #[test]
    fn real_window_formulations_keep_a007_quiet(
        seed in 0u64..24,
        n_idx in 0usize..3,
    ) {
        let n = [4usize, 6, 8][n_idx];
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig { n, utilization: 0.35, gamma: 0.3, beta: 0.4,
                            ..TaskSetConfig::default() },
            seed,
        );
        let set = generator.generate();
        let engine = MilpEngine::new();
        for task in set.iter() {
            let case = pmcs::core::window::case_for(task.sensitivity());
            let w = pmcs::core::WindowModel::build(&set, task.id(), case, task.deadline())
                .expect("task id is in the set");
            let report = lint(&engine.build_problem(&w));
            let loose: Vec<_> = report
                .diagnostics()
                .iter()
                .filter(|d| d.code == LintCode::LooseBigM)
                .collect();
            prop_assert!(loose.is_empty(), "A007 fired on a real window: {loose:?}");
        }
    }
}

// --- corrupted traces map to the right rule -----------------------------

fn demo_trace() -> (TaskSet, SimResult) {
    let mut generator = TaskSetGenerator::new(
        TaskSetConfig {
            n: 4,
            utilization: 0.4,
            ..TaskSetConfig::default()
        },
        7,
    );
    let set = generator.generate();
    let lowest = set
        .iter()
        .max_by_key(|t| t.priority().0)
        .map(|t| t.id())
        .expect("non-empty set");
    let set = set
        .with_sensitivity(lowest, Sensitivity::Ls)
        .expect("id from the set");
    let horizon = Time::from_millis(200);
    let plan = random_sporadic_plan(&set, horizon, 0.5, 8);
    let result = simulate(&set, &plan, Policy::Proposed, horizon);
    (set, result)
}

#[test]
fn clean_trace_is_conformant() {
    let (set, result) = demo_trace();
    let report = check_conformance(&set, &result, true);
    assert!(report.is_conformant(), "{:?}", report.diagnostics);
    assert!(report.intervals_checked > 0);
}

#[test]
fn corrupted_cancellation_is_pinned_to_r3() {
    let (set, result) = demo_trace();
    let mut events = result.events().to_vec();
    let idx = events
        .iter()
        .position(|e| e.unit == TraceUnit::Dma && e.phase == Phase::CopyIn && !e.canceled)
        .expect("trace has a committed copy-in");
    events[idx].canceled = true;
    let corrupted = SimResult::from_parts(
        events,
        result.jobs().to_vec(),
        result.interval_starts().to_vec(),
    );
    let report = check_conformance(&set, &corrupted, true);
    assert!(!report.is_conformant());
    assert!(
        report.by_rule(RuleTag::R3).next().is_some(),
        "expected an R3 diagnostic, got {:?}",
        report.diagnostics
    );
}

#[test]
fn torn_interval_is_pinned_to_r1() {
    let (set, result) = demo_trace();
    let mut events = result.events().to_vec();
    // Push the first event of interval 1 outside its interval span.
    let idx = events
        .iter()
        .position(|e| e.interval == 1)
        .expect("trace has a second interval");
    events[idx].start = Time::ZERO;
    let corrupted = SimResult::from_parts(
        events,
        result.jobs().to_vec(),
        result.interval_starts().to_vec(),
    );
    let report = check_conformance(&set, &corrupted, true);
    assert!(
        report.by_rule(RuleTag::R1).next().is_some(),
        "expected an R1 diagnostic, got {:?}",
        report.diagnostics
    );
}
