//! Cross-feature integration: partitioning, task chains, exhaustive LS
//! search and trace statistics working together on one workload.

use pmcs::core::{
    chain_latency, exhaustive_ls_assignment, partition, ChainActivation, Heuristic, TaskChain,
};
use pmcs::prelude::*;
use pmcs_sim::trace_stats;

fn workload() -> Vec<Task> {
    let mut generator = TaskSetGenerator::new(
        TaskSetConfig {
            n: 8,
            utilization: 0.8,
            gamma: 0.3,
            beta: 0.7,
            ..TaskSetConfig::default()
        },
        0xFACADE,
    );
    generator.generate().tasks().to_vec()
}

#[test]
fn partition_then_chain_latency() {
    let engine = ExactEngine::default();
    let result = partition(workload(), 4, Heuristic::WorstFit, &engine)
        .expect("analysis")
        .expect("packable");
    assert!(result.schedulable());

    // A chain across the first task of each non-empty core.
    let stages: Vec<TaskId> = result
        .platform
        .iter()
        .take(3)
        .map(|(_, set)| set.tasks()[0].id())
        .collect();
    assert!(stages.len() >= 2, "need a cross-core chain");
    let chain = TaskChain::new(stages.clone());
    let cores: Vec<TaskSet> = result.platform.iter().map(|(_, s)| s.clone()).collect();
    let triggered =
        chain_latency(&chain, &cores, ChainActivation::Triggered, &engine).expect("latency");
    let sampling =
        chain_latency(&chain, &cores, ChainActivation::Sampling, &engine).expect("latency");
    assert!(triggered > Time::ZERO);
    assert!(sampling > triggered, "sampling adds downstream periods");

    // Chain latency must dominate the sum of stage execution times.
    let floor: Time = stages
        .iter()
        .map(|id| {
            cores
                .iter()
                .find_map(|s| s.get(*id))
                .expect("stage placed")
                .exec()
        })
        .sum();
    assert!(triggered >= floor);
}

#[test]
fn per_core_simulation_respects_partitioned_bounds() {
    let engine = ExactEngine::default();
    let result = partition(workload(), 4, Heuristic::FirstFit, &engine)
        .expect("analysis")
        .expect("packable");
    let horizon = Time::from_secs(1);
    for (core, set) in result.platform.iter() {
        let report = &result.reports[core.0 as usize];
        // Re-mark the set per the final LS assignment before simulating.
        let marked = report
            .assignment()
            .promoted
            .iter()
            .fold(set.all_nls(), |s, &t| {
                s.with_sensitivity(t, Sensitivity::Ls).expect("task")
            });
        let plan = random_sporadic_plan(&marked, horizon, 0.25, 0xC0DE + u64::from(core.0));
        let run = simulate(&marked, &plan, Policy::Proposed, horizon);
        assert!(validate_trace(&marked, &run, true).is_empty());
        assert!(run.all_deadlines_met(horizon), "{core}");
        for v in report.verdicts() {
            if let Some(observed) = run.worst_response(v.task) {
                assert!(
                    observed <= v.wcrt,
                    "{core} {}: {observed} > {}",
                    v.task,
                    v.wcrt
                );
            }
        }
        let stats = trace_stats(&run);
        assert!(stats.cpu_utilization(horizon) <= 1.0 + f64::EPSILON);
        assert!(stats.dma_utilization(horizon) <= 1.0 + f64::EPSILON);
    }
}

#[test]
fn exhaustive_search_validates_partitioned_cores() {
    // On small cores the exhaustive LS search must agree with the greedy
    // verdict used by the partitioner.
    let engine = ExactEngine::default();
    let result = partition(workload(), 4, Heuristic::WorstFit, &engine)
        .expect("analysis")
        .expect("packable");
    for (_, set) in result.platform.iter() {
        if set.len() > 5 {
            continue;
        }
        let exhaustive = exhaustive_ls_assignment(set, &engine).expect("search");
        assert!(
            exhaustive.best.is_some(),
            "partitioner admitted an unschedulable core?!"
        );
    }
}
