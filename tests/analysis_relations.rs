//! Cross-analysis relations that must hold by construction.

use pmcs::prelude::*;
use pmcs_baselines::{wp_milp_analysis, NpsAnalysis, WpAnalysis};

fn random_sets(seeds: std::ops::Range<u64>, n: usize, u: f64) -> Vec<TaskSet> {
    seeds
        .map(|seed| {
            TaskSetGenerator::new(
                TaskSetConfig {
                    n,
                    utilization: u,
                    gamma: 0.3,
                    beta: 0.5,
                    ..TaskSetConfig::default()
                },
                seed,
            )
            .generate()
        })
        .collect()
}

#[test]
fn carry_convention_dominates_classical_nps() {
    // The paper's carry-in convention charges at least as much
    // interference as the classical critical-instant analysis, so its
    // WCRT bounds dominate task by task.
    for set in random_sets(0..10, 5, 0.35) {
        let classic = NpsAnalysis::default().analyze(&set);
        let carry = NpsAnalysis::with_carry().analyze(&set);
        for (c, k) in classic.iter().zip(&carry) {
            assert_eq!(c.task, k.task);
            assert!(
                k.wcrt >= c.wcrt,
                "{}: carry {} < classic {}",
                c.task,
                k.wcrt,
                c.wcrt
            );
        }
    }
}

#[test]
fn every_bound_dominates_the_isolated_response() {
    // No analysis may report less than the task's own three-phase time.
    let engine = ExactEngine::default();
    for set in random_sets(20..28, 4, 0.3) {
        let report =
            pmcs::core::schedulability::analyze_fixed_marking(&set, &engine).expect("analysis");
        for v in report.verdicts() {
            let t = set.get(v.task).unwrap();
            let floor = t.copy_in() + t.exec() + t.copy_out();
            assert!(v.wcrt >= floor, "{}: {} < {}", v.task, v.wcrt, floor);
        }
        for r in WpAnalysis::default().analyze(&set) {
            let t = set.get(r.task).unwrap();
            assert!(r.wcrt >= t.exec() + t.copy_out());
        }
        for r in NpsAnalysis::default().analyze(&set) {
            let t = set.get(r.task).unwrap();
            assert!(r.wcrt >= t.wcet_serialized());
        }
    }
}

#[test]
fn highest_priority_ls_task_beats_wp_bound() {
    // For the highest-priority task, the proposed protocol's LS analysis
    // (one blocking interval) must never be worse than the WP closed form
    // (two blocking intervals) — the paper's core claim.
    let engine = ExactEngine::default();
    for set in random_sets(40..50, 5, 0.3) {
        let highest = set.tasks()[0].id();
        let ls_set = set
            .all_nls()
            .with_sensitivity(highest, Sensitivity::Ls)
            .unwrap();
        let analyzer = WcrtAnalyzer::default();
        let prop = analyzer
            .analyze_task(&ls_set, highest, &engine)
            .expect("analysis");
        let wp = WpAnalysis::default().analyze_task(&set, highest);
        assert!(
            prop.wcrt <= wp.wcrt,
            "{highest}: proposed-LS {} > WP {}",
            prop.wcrt,
            wp.wcrt
        );
    }
}

#[test]
fn wp_milp_never_schedules_less_than_greedy_claims_for_all_nls() {
    // analyze_task_set starts from the all-NLS marking that wp_milp uses;
    // when wp_milp is schedulable the greedy returns in one round with an
    // identical report.
    let engine = ExactEngine::default();
    for set in random_sets(60..70, 4, 0.25) {
        let wp_milp = wp_milp_analysis(&set, &engine).expect("analysis");
        let greedy = analyze_task_set(&set, &engine).expect("analysis");
        if wp_milp.schedulable() {
            assert!(greedy.schedulable());
            for (a, b) in wp_milp.verdicts().iter().zip(greedy.verdicts()) {
                assert_eq!(a.wcrt, b.wcrt);
            }
        }
    }
}

#[test]
fn bounds_are_deterministic() {
    let engine = ExactEngine::default();
    let set = &random_sets(80..81, 5, 0.35)[0];
    let a = analyze_task_set(set, &engine).expect("analysis");
    let b = analyze_task_set(set, &engine).expect("analysis");
    assert_eq!(a, b);
}
