//! End-to-end pipeline test: generate Section-VII workloads, analyze them
//! under every approach, and cross-check each claimed-schedulable verdict
//! against the discrete-event simulator (analysis soundness: no simulated
//! response may exceed its analyzed bound, and no deadline may be missed).

use pmcs::prelude::*;
use pmcs_baselines::WpAnalysis;

fn marked_set(set: &TaskSet, report: &SchedulabilityReport) -> TaskSet {
    report
        .assignment()
        .promoted
        .iter()
        .fold(set.all_nls(), |s, &t| {
            s.with_sensitivity(t, Sensitivity::Ls).expect("task exists")
        })
}

#[test]
fn proposed_analysis_is_sound_against_simulation() {
    let engine = ExactEngine::default();
    let mut checked_schedulable = 0;
    for seed in 0..12u64 {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 4,
                utilization: 0.25 + 0.02 * seed as f64,
                gamma: 0.3,
                beta: 0.6,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let report = analyze_task_set(&set, &engine).expect("analysis");
        if !report.schedulable() {
            continue;
        }
        checked_schedulable += 1;
        let marked = marked_set(&set, &report);
        let horizon = Time::from_secs(2);
        for plan_seed in 0..3u64 {
            let plan = random_sporadic_plan(&marked, horizon, 0.4, plan_seed);
            let result = simulate(&marked, &plan, Policy::Proposed, horizon);
            assert!(
                result.all_deadlines_met(horizon),
                "seed {seed}/{plan_seed}: a deadline was missed in a set the \
                 analysis declared schedulable"
            );
            for v in report.verdicts() {
                if let Some(observed) = result.worst_response(v.task) {
                    assert!(
                        observed <= v.wcrt,
                        "seed {seed}/{plan_seed} {}: simulated {} > bound {}",
                        v.task,
                        observed,
                        v.wcrt
                    );
                }
            }
            // The trace must satisfy the protocol properties as well.
            let violations = validate_trace(&marked, &result, true);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }
    assert!(
        checked_schedulable >= 3,
        "test vacuous: only {checked_schedulable} schedulable sets"
    );
}

#[test]
fn wp_analysis_is_sound_against_simulation() {
    let wp = WpAnalysis::default();
    let mut checked = 0;
    for seed in 100..112u64 {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 4,
                utilization: 0.2,
                gamma: 0.3,
                beta: 0.8,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let results = wp.analyze(&set);
        if results.iter().any(|r| !r.schedulable) {
            continue;
        }
        checked += 1;
        let horizon = Time::from_secs(2);
        let plan = random_sporadic_plan(&set, horizon, 0.3, seed);
        let result = simulate(&set, &plan, Policy::WaslyPellizzoni, horizon);
        assert!(result.all_deadlines_met(horizon), "seed {seed}");
        for r in &results {
            if let Some(observed) = result.worst_response(r.task) {
                assert!(
                    observed <= r.wcrt,
                    "seed {seed} {}: simulated {} > WP bound {}",
                    r.task,
                    observed,
                    r.wcrt
                );
            }
        }
    }
    assert!(
        checked >= 3,
        "test vacuous: only {checked} schedulable sets"
    );
}

#[test]
fn nps_analysis_is_sound_against_simulation() {
    let nps = NpsAnalysis::default();
    let mut checked = 0;
    for seed in 200..212u64 {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 5,
                utilization: 0.3,
                gamma: 0.3,
                beta: 0.8,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let results = nps.analyze(&set);
        if results.iter().any(|r| !r.schedulable) {
            continue;
        }
        checked += 1;
        let horizon = Time::from_secs(2);
        let plan = random_sporadic_plan(&set, horizon, 0.2, seed);
        let result = simulate(&set, &plan, Policy::Nps, horizon);
        assert!(result.all_deadlines_met(horizon), "seed {seed}");
        for r in &results {
            if let Some(observed) = result.worst_response(r.task) {
                assert!(
                    observed <= r.wcrt,
                    "seed {seed} {}: simulated {} > NPS bound {}",
                    r.task,
                    observed,
                    r.wcrt
                );
            }
        }
    }
    assert!(
        checked >= 3,
        "test vacuous: only {checked} schedulable sets"
    );
}

#[test]
fn greedy_never_loses_to_fixed_all_nls() {
    // The greedy algorithm starts all-NLS: whenever the all-NLS marking is
    // schedulable, the greedy must agree (it terminates in round 1).
    let engine = ExactEngine::default();
    for seed in 300..310u64 {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 4,
                utilization: 0.3,
                gamma: 0.2,
                beta: 0.6,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let all_nls = pmcs::core::schedulability::analyze_fixed_marking(&set.all_nls(), &engine)
            .expect("analysis");
        let greedy = analyze_task_set(&set, &engine).expect("analysis");
        if all_nls.schedulable() {
            assert!(greedy.schedulable(), "seed {seed}");
            assert!(greedy.assignment().promoted.is_empty(), "seed {seed}");
        }
    }
}
