//! Measures the greedy LS-marking algorithm (Section VI) against the
//! exhaustive ground truth over all `2^n` markings.
//!
//! Two facts are asserted:
//!
//! * **Agreement on success**: when the greedy finds a schedulable
//!   marking, some marking is schedulable (trivially — its own), and when
//!   the exhaustive search proves *no* marking works, the greedy must
//!   also have failed.
//! * **The greedy can be suboptimal** is *allowed* (it is a heuristic);
//!   the test reports sets where the exhaustive search succeeds and the
//!   greedy fails, and only requires this to be rare on the evaluation
//!   workloads.

use pmcs::prelude::*;
use pmcs_core::exhaustive_ls_assignment;

#[test]
fn greedy_matches_exhaustive_on_most_sets() {
    let engine = ExactEngine::default();
    let mut greedy_wins = 0usize;
    let mut exhaustive_wins = 0usize;
    let mut greedy_missed = 0usize;
    const SETS: u64 = 30;
    for seed in 0..SETS {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 4,
                utilization: 0.3,
                gamma: 0.3,
                beta: 0.4,
                ..TaskSetConfig::default()
            },
            seed.wrapping_mul(0x9E37),
        );
        let set = generator.generate();
        let greedy = analyze_task_set(&set, &engine).expect("greedy analysis");
        let exhaustive = exhaustive_ls_assignment(&set, &engine).expect("exhaustive");
        match (greedy.schedulable(), exhaustive.best.is_some()) {
            (true, true) => greedy_wins += 1,
            (false, false) => {}
            (false, true) => greedy_missed += 1,
            (true, false) => panic!(
                "seed {seed}: greedy schedulable but exhaustive says impossible — \
                 the greedy found a marking the exhaustive search missed?!"
            ),
        }
        if exhaustive.best.is_some() {
            exhaustive_wins += 1;
        }
    }
    assert!(
        greedy_wins >= 1 && exhaustive_wins >= greedy_wins,
        "vacuous test: {greedy_wins}/{exhaustive_wins}"
    );
    // The greedy is a heuristic; allow a small optimality gap.
    assert!(
        greedy_missed * 5 <= exhaustive_wins,
        "greedy missed {greedy_missed} of {exhaustive_wins} feasible sets (> 20%)"
    );
    println!("greedy: {greedy_wins}/{exhaustive_wins} feasible sets, missed {greedy_missed}");
}

#[test]
fn exhaustive_minimality() {
    // The exhaustive search returns a minimal-cardinality marking: any
    // strictly smaller subset of it must be unschedulable.
    let engine = ExactEngine::default();
    let mut verified = 0usize;
    for seed in 100..115u64 {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.35,
                gamma: 0.3,
                beta: 0.3,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let result = exhaustive_ls_assignment(&set, &engine).expect("exhaustive");
        let Some((ls, report)) = result.best else {
            continue;
        };
        assert!(report.schedulable());
        if ls.is_empty() {
            continue;
        }
        verified += 1;
        // Remove each marked task in turn: the reduced marking must fail
        // (otherwise the popcount-ordered search would have found it).
        for skip in &ls {
            let mut marked = set.all_nls();
            for id in ls.iter().filter(|id| *id != skip) {
                marked = marked.with_sensitivity(*id, Sensitivity::Ls).unwrap();
            }
            let reduced = pmcs::core::schedulability::analyze_fixed_marking(&marked, &engine)
                .expect("analysis");
            assert!(
                !reduced.schedulable(),
                "seed {seed}: dropping {skip} from {ls:?} still schedulable — not minimal"
            );
        }
    }
    // It is fine if few sets needed promotions; just ensure the check ran.
    println!("verified minimality on {verified} sets");
}
