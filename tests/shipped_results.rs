//! Guards the paper's qualitative claims against the shipped experiment
//! results (`results/fig2*.csv`): if a code change regenerates the CSVs
//! with shapes that no longer match the paper, these tests fail.

use std::fs;
use std::path::Path;

struct Row {
    x: f64,
    proposed: f64,
    wp: f64,
    nps: f64,
}

fn load(name: &str) -> Vec<Row> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing shipped result {}: {e}", path.display()));
    text.lines()
        .skip(1)
        .map(|line| {
            let cols: Vec<f64> = line
                .split(',')
                .take(4)
                .map(|v| v.parse().expect("numeric csv"))
                .collect();
            Row {
                x: cols[0],
                proposed: cols[1],
                wp: cols[2],
                nps: cols[3],
            }
        })
        .collect()
}

/// Proposed ≥ WP at every point of every inset (the paper's central
/// comparison; small sampling noise tolerated).
#[test]
fn proposed_dominates_wp_everywhere() {
    for inset in [
        "fig2a.csv",
        "fig2b.csv",
        "fig2c.csv",
        "fig2d.csv",
        "fig2e.csv",
        "fig2f.csv",
    ] {
        for row in load(inset) {
            assert!(
                row.proposed >= row.wp - 0.021,
                "{inset} x={}: proposed {} < wp {}",
                row.x,
                row.proposed,
                row.wp
            );
        }
    }
}

/// Proposed ≥ carry-convention NPS at every point (the paper claims the
/// proposed protocol beats NPS in all tested configurations).
#[test]
fn proposed_dominates_carry_nps_everywhere() {
    for inset in [
        "fig2a.csv",
        "fig2b.csv",
        "fig2c.csv",
        "fig2d.csv",
        "fig2e.csv",
        "fig2f.csv",
    ] {
        for row in load(inset) {
            assert!(
                row.proposed >= row.nps - 0.021,
                "{inset} x={}: proposed {} < nps {}",
                row.x,
                row.proposed,
                row.nps
            );
        }
    }
}

/// At low memory intensity (inset a, γ=0.1) WP falls *below* NPS at some
/// mid utilization — the paper's motivating observation (Figure 1 /
/// Section I).
#[test]
fn wp_worse_than_nps_at_low_gamma() {
    let rows = load("fig2a.csv");
    assert!(
        rows.iter()
            .any(|r| r.nps >= r.wp + 0.10 && r.x >= 0.2 && r.x <= 0.5),
        "expected a mid-U point where NPS clearly beats WP at γ=0.1"
    );
}

/// Inset (e): the proposed protocol's margin over NPS persists as γ
/// grows, while NPS collapses first (DMA advantage grows with memory
/// intensity).
#[test]
fn dma_advantage_grows_with_gamma() {
    let rows = load("fig2e.csv");
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    assert!(first.x < last.x);
    // At the largest γ, NPS is (near-)dead while proposed still schedules.
    assert!(
        last.nps <= 0.05,
        "nps at γ=0.5 should be ~0, got {}",
        last.nps
    );
    assert!(
        last.proposed >= last.nps,
        "proposed must outlive nps at high γ"
    );
    // Proposed declines more slowly than NPS in absolute terms.
    let prop_drop = first.proposed - last.proposed;
    let nps_drop = first.nps - last.nps;
    assert!(
        nps_drop >= prop_drop - 0.15,
        "NPS should collapse at least as fast as proposed"
    );
}

/// Inset (f): the relative improvement of proposed over WP shrinks as
/// deadlines relax (the paper: the improvement is higher for tight
/// deadlines).
#[test]
fn relative_improvement_larger_for_tight_deadlines() {
    let rows = load("fig2f.csv");
    let ratio = |r: &Row| {
        if r.wp <= 0.0 {
            f64::INFINITY
        } else {
            r.proposed / r.wp
        }
    };
    // Compare a tight-deadline point (smallest β with nonzero wp) against
    // the implicit-deadline point (β = 1).
    let tight = rows
        .iter()
        .find(|r| r.wp > 0.0)
        .expect("some tight point with wp > 0");
    let relaxed = rows.last().expect("β = 1 row");
    assert!(
        ratio(tight) >= ratio(relaxed),
        "proposed/wp at β={} ({:.2}) should exceed that at β={} ({:.2})",
        tight.x,
        ratio(tight),
        relaxed.x,
        ratio(relaxed)
    );
}
