//! Regression test pinning the exact Figure 1 schedules (see the `fig1`
//! binary in `pmcs-bench`): the event-level timestamps of the three
//! policies on the reconstructed scenario.

use pmcs::prelude::*;
use pmcs_model::Phase;

fn scenario() -> (TaskSet, ReleasePlan) {
    let set = TaskSet::new(vec![
        Task::builder(TaskId(0))
            .name("tau_i")
            .exec(Time::from_ticks(2))
            .copy_in(Time::from_ticks(2))
            .copy_out(Time::from_ticks(2))
            .sporadic(Time::from_ticks(1_000))
            .deadline(Time::from_ticks(10))
            .priority(Priority(0))
            .sensitivity(Sensitivity::Ls)
            .build()
            .unwrap(),
        pmcs::core::window::test_task(1, 3, 1, 1, 1_000, 1, false),
        pmcs::core::window::test_task(2, 4, 3, 2, 1_000, 2, false),
        pmcs::core::window::test_task(3, 2, 1, 2, 1_000, 3, false),
    ])
    .unwrap();
    let plan = ReleasePlan::from_pairs(vec![
        (TaskId(0), vec![Time::from_ticks(4)]),
        (TaskId(1), vec![Time::from_ticks(1)]),
        (TaskId(2), vec![Time::from_ticks(1)]),
        (TaskId(3), vec![Time::ZERO]),
    ]);
    (set, plan)
}

fn completion(result: &pmcs_sim::SimResult, task: TaskId) -> Time {
    result
        .jobs()
        .iter()
        .find(|j| j.job.task() == task)
        .and_then(|j| j.completion)
        .expect("task completed")
}

#[test]
fn wp_misses_via_two_blocking_intervals() {
    let (set, plan) = scenario();
    let result = simulate(&set, &plan, Policy::WaslyPellizzoni, Time::from_ticks(60));
    // τ_i: released 4, copy-in by DMA [9,11) in the interval executing
    // τ2, executes [12,14), copy-out [14,16) → completes at 16 > 14.
    assert_eq!(completion(&result, TaskId(0)), Time::from_ticks(16));
    let rec = result
        .jobs()
        .iter()
        .find(|j| j.job.task() == TaskId(0))
        .unwrap();
    assert!(!rec.met_deadline());
    // Both lower-priority tasks executed before τ_i (double blocking).
    let exec_start_t1 = result
        .events()
        .iter()
        .find(|e| e.job.task() == TaskId(1) && e.phase == Phase::Execute)
        .unwrap()
        .start;
    let exec_start_t2 = result
        .events()
        .iter()
        .find(|e| e.job.task() == TaskId(2) && e.phase == Phase::Execute)
        .unwrap()
        .start;
    assert!(exec_start_t1 >= Time::from_ticks(4) || exec_start_t2 >= Time::from_ticks(4));
    // No cancellations under WP.
    assert!(result.events().iter().all(|e| !e.canceled));
}

#[test]
fn nps_meets_with_single_blocking() {
    let (set, plan) = scenario();
    let result = simulate(&set, &plan, Policy::Nps, Time::from_ticks(60));
    // τ_p (τ3) runs [0,5); τ_i starts right after: [5,11) → completes 11.
    assert_eq!(completion(&result, TaskId(0)), Time::from_ticks(11));
    assert!(result
        .jobs()
        .iter()
        .find(|j| j.job.task() == TaskId(0))
        .unwrap()
        .met_deadline());
}

#[test]
fn proposed_rescues_tau_i_with_cancellation() {
    let (set, plan) = scenario();
    let result = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(60));
    assert_eq!(completion(&result, TaskId(0)), Time::from_ticks(12));
    // Rule R3 fired: a canceled DMA copy-in exists…
    let cancel = result
        .events()
        .iter()
        .find(|e| e.canceled)
        .expect("a cancellation must occur");
    assert_eq!(cancel.unit, pmcs_sim::TraceUnit::Dma);
    // …and τ_i's copy-in ran on the CPU (urgent, rule R5).
    let urgent_copyin = result
        .events()
        .iter()
        .find(|e| {
            e.job.task() == TaskId(0)
                && e.phase == Phase::CopyIn
                && e.unit == pmcs_sim::TraceUnit::Cpu
        })
        .expect("urgent CPU copy-in");
    assert!(urgent_copyin.start >= Time::from_ticks(4));
    let violations = validate_trace(&set, &result, true);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn analysis_agrees_with_the_scenario() {
    // The proposed-protocol analysis of τ_i (LS) must bound the simulated
    // response (12 − 4 = 8). The analytical worst case is higher than this
    // particular trace: in LS case (b) the adversary blocks with τ2
    // (Δ_0 = max(C_2, l̂+û) = 5), then the urgent copy-in+execution
    // interval is stretched by the DMA (Δ_1 = max(l_i+C_i, l̂+u_2) = 5),
    // plus the copy-out — exactly 12.
    let (set, _) = scenario();
    let engine = ExactEngine::default();
    let analysis = WcrtAnalyzer::default()
        .analyze_task(&set, TaskId(0), &engine)
        .expect("analysis");
    assert!(analysis.wcrt >= Time::from_ticks(8));
    assert_eq!(analysis.wcrt, Time::from_ticks(12));
    assert_eq!(analysis.case_b_response, Some(Time::from_ticks(12)));
}
