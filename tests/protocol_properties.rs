//! Property tests over random workloads and release patterns: every
//! simulated trace must satisfy the paper's Properties 1–4 (phase
//! placement, blocking-interval bounds), under both interval policies.

use proptest::prelude::*;

use pmcs::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    exec: i64,
    mem: i64,
    period: i64,
    ls: bool,
    offset: i64,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1i64..=40, 0i64..=15, 60i64..=200, any::<bool>(), 0i64..=100).prop_map(
        |(exec, mem, period, ls, offset)| Spec {
            exec,
            mem,
            period,
            ls,
            offset,
        },
    )
}

fn build(specs: &[Spec]) -> (TaskSet, ReleasePlan) {
    let tasks: Vec<Task> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Task::builder(TaskId(i as u32))
                .exec(Time::from_ticks(s.exec))
                .copy_in(Time::from_ticks(s.mem))
                .copy_out(Time::from_ticks(s.mem))
                .sporadic(Time::from_ticks(s.period))
                .deadline(Time::from_ticks(s.period))
                .priority(Priority(i as u32))
                .sensitivity(if s.ls {
                    Sensitivity::Ls
                } else {
                    Sensitivity::Nls
                })
                .build()
                .unwrap()
        })
        .collect();
    let set = TaskSet::new(tasks).unwrap();
    let horizon = Time::from_ticks(1_500);
    let plan = ReleasePlan::periodic_with_offsets(&set, horizon, |id| {
        Time::from_ticks(specs[id.0 as usize].offset)
    });
    (set, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The proposed protocol's traces satisfy Properties 1–4 and conform
    /// to the rule-addressable R1–R6 analysis.
    #[test]
    fn proposed_traces_validate(specs in prop::collection::vec(spec(), 2..=5)) {
        let (set, plan) = build(&specs);
        let result = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(1_500));
        let violations = validate_trace(&set, &result, true);
        prop_assert!(violations.is_empty(), "{violations:?}");
        let report = check_conformance(&set, &result, true);
        prop_assert!(report.is_conformant(), "{:?}", report.diagnostics);
    }

    /// The WP baseline's traces satisfy the structural properties and the
    /// two-interval blocking bound.
    #[test]
    fn wp_traces_validate(specs in prop::collection::vec(spec(), 2..=5)) {
        let (set, plan) = build(&specs);
        let result = simulate(&set, &plan, Policy::WaslyPellizzoni, Time::from_ticks(1_500));
        let violations = validate_trace(&set, &result, false);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // WP never cancels (rule R3 is the proposed protocol's).
        prop_assert!(result.events().iter().all(|e| !e.canceled));
        let report = check_conformance(&set, &result, false);
        prop_assert!(report.is_conformant(), "{:?}", report.diagnostics);
    }

    /// Jobs complete in release order per task, and responses are
    /// non-negative under every policy.
    #[test]
    fn job_accounting_is_consistent(
        specs in prop::collection::vec(spec(), 1..=4),
        policy_idx in 0usize..3,
    ) {
        let policy = [Policy::Proposed, Policy::WaslyPellizzoni, Policy::Nps][policy_idx];
        let (set, plan) = build(&specs);
        let result = simulate(&set, &plan, policy, Time::from_ticks(1_500));
        for task in set.iter() {
            let mut completions: Vec<Time> = result
                .jobs()
                .iter()
                .filter(|j| j.job.task() == task.id())
                .filter_map(|j| j.completion)
                .collect();
            let sorted = {
                let mut c = completions.clone();
                c.sort();
                c
            };
            prop_assert_eq!(&completions, &sorted, "completions out of order");
            completions.dedup();
            prop_assert_eq!(completions.len(), sorted.len(), "duplicate completion");
        }
        for j in result.jobs() {
            if let Some(r) = j.response() {
                prop_assert!(r >= Time::ZERO);
                // A completed three-phase job takes at least l + C + u.
                let t = set.get(j.job.task()).unwrap();
                prop_assert!(r >= t.wcet_serialized() - t.copy_in() - t.copy_out() ,
                    "response below execution time");
            }
        }
    }

    /// Under harmonic low load the proposed protocol meets all deadlines
    /// (sanity link between simulation and intuition).
    #[test]
    fn low_load_meets_deadlines(seed in 0u64..50) {
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.1,
                gamma: 0.2,
                beta: 1.0,
                ..TaskSetConfig::default()
            },
            seed,
        );
        let set = generator.generate();
        let horizon = Time::from_secs(1);
        let plan = random_sporadic_plan(&set, horizon, 0.2, seed);
        let result = simulate(&set, &plan, Policy::Proposed, horizon);
        prop_assert!(result.all_deadlines_met(horizon));
    }
}
