//! Quickstart: generate a Section-VII-style task set, analyze it under the
//! proposed protocol (with greedy LS marking), the Wasly-Pellizzoni
//! baseline, and non-preemptive scheduling, and print the verdicts.
//!
//! Run with: `cargo run --release --example quickstart`

use pmcs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A task set in the paper's evaluation style: 5 tasks, total
    // utilization 0.35, memory phases 30% of execution (γ), deadlines
    // moderately constrained (β).
    let mut generator = TaskSetGenerator::new(
        TaskSetConfig {
            n: 5,
            utilization: 0.35,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        },
        0xC0FFEE,
    );
    let set = generator.generate();
    println!("{set}");

    // The paper's analysis: fixed-point WCRT bounds per task, promoting
    // deadline-missing tasks to latency-sensitive (Section VI).
    let report = analyze_task_set(&set, &ExactEngine::default())?;
    println!("proposed protocol → {report}");

    // Baselines.
    let wp = WpAnalysis::default();
    println!("wasly-pellizzoni [3]:");
    for r in wp.analyze(&set) {
        println!(
            "  {} R={} {}",
            r.task,
            r.wcrt,
            if r.schedulable { "ok" } else { "MISS" }
        );
    }
    let nps = NpsAnalysis::default();
    println!("non-preemptive scheduling:");
    for r in nps.analyze(&set) {
        println!(
            "  {} R={} {}",
            r.task,
            r.wcrt,
            if r.schedulable { "ok" } else { "MISS" }
        );
    }

    // Cross-check the analysis against the discrete-event simulator: the
    // observed worst response of every task must stay below its bound.
    let marked = report
        .assignment()
        .promoted
        .iter()
        .try_fold(set.all_nls(), |s, &task| {
            s.with_sensitivity(task, Sensitivity::Ls)
        })?;
    let horizon = Time::from_secs(2);
    let plan = random_sporadic_plan(&marked, horizon, 0.3, 42);
    let result = simulate(&marked, &plan, Policy::Proposed, horizon);
    for v in report.verdicts() {
        if let Some(observed) = result.worst_response(v.task) {
            assert!(
                observed <= v.wcrt,
                "{}: simulated {} exceeded analyzed bound {}",
                v.task,
                observed,
                v.wcrt
            );
            println!(
                "{}: observed worst response {} ≤ analyzed bound {}",
                v.task, observed, v.wcrt
            );
        }
    }
    Ok(())
}
