//! Mini schedulability study: a condensed version of the paper's Figure 2,
//! sweeping total utilization and printing the schedulability ratio of the
//! proposed protocol vs. Wasly-Pellizzoni [3] vs. non-preemptive
//! scheduling (both carry conventions).
//!
//! Run with:
//! `cargo run --release --example protocol_comparison -- [sets-per-point]`

use pmcs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sets_per_point: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let engine = ExactEngine::default();

    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12}",
        "U", "proposed", "wp [3]", "nps(carry)", "nps(classic)"
    );
    for step in 1..=8 {
        let u = step as f64 * 0.05 + 0.05; // 0.10 … 0.45
        let mut generator = TaskSetGenerator::new(
            TaskSetConfig {
                n: 5,
                utilization: u,
                gamma: 0.3,
                beta: 0.4,
                ..TaskSetConfig::default()
            },
            0xBEEF ^ step,
        );
        let mut wins = [0usize; 4];
        for _ in 0..sets_per_point {
            let set = generator.generate();
            let flags = [
                analyze_task_set(&set, &engine)?.schedulable(),
                WpAnalysis::default().is_schedulable(&set),
                pmcs::baselines::NpsAnalysis::with_carry().is_schedulable(&set),
                NpsAnalysis::default().is_schedulable(&set),
            ];
            for (w, f) in wins.iter_mut().zip(flags) {
                *w += usize::from(f);
            }
        }
        let ratio = |w: usize| w as f64 / sets_per_point as f64;
        println!(
            "{u:>5.2} {:>10.2} {:>10.2} {:>12.2} {:>12.2}",
            ratio(wins[0]),
            ratio(wins[1]),
            ratio(wins[2]),
            ratio(wins[3]),
        );
    }
    println!(
        "\n(the proposed protocol dominates [3] everywhere and the \
         carry-convention NPS on all but the lightest workloads — the \
         paper's Figure 2 pattern; see EXPERIMENTS.md for full runs)"
    );
    Ok(())
}
