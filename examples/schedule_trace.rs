//! Trace explorer: simulates one task set under all three policies and
//! prints the schedules side by side (the Figure 1 scenario by default).
//!
//! Run with: `cargo run --release --example schedule_trace`

use pmcs::prelude::*;
use pmcs_model::Phase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 1 scenario from the paper: a latency-sensitive task
    // released while the DMA is loading a lower-priority task.
    let set = TaskSet::new(vec![
        Task::builder(TaskId(0))
            .name("tau_i")
            .exec(Time::from_ticks(2))
            .copy_in(Time::from_ticks(2))
            .copy_out(Time::from_ticks(2))
            .sporadic(Time::from_ticks(1_000))
            .deadline(Time::from_ticks(10))
            .priority(Priority(0))
            .sensitivity(Sensitivity::Ls)
            .build()?,
        pmcs::core::window::test_task(1, 3, 1, 1, 1_000, 1, false),
        pmcs::core::window::test_task(2, 4, 3, 2, 1_000, 2, false),
        pmcs::core::window::test_task(3, 2, 1, 2, 1_000, 3, false),
    ])?;
    let plan = ReleasePlan::from_pairs(vec![
        (TaskId(0), vec![Time::from_ticks(4)]),
        (TaskId(1), vec![Time::from_ticks(1)]),
        (TaskId(2), vec![Time::from_ticks(1)]),
        (TaskId(3), vec![Time::ZERO]),
    ]);
    let horizon = Time::from_ticks(40);

    for (policy, name) in [
        (Policy::Proposed, "proposed"),
        (Policy::WaslyPellizzoni, "wasly-pellizzoni"),
        (Policy::Nps, "non-preemptive"),
    ] {
        let result = simulate(&set, &plan, policy, horizon);
        println!("=== {name} ===");
        print!(
            "{}",
            render_gantt(&result, Time::from_ticks(26), Time::TICK)
        );
        for event in result.events() {
            println!("  {event}");
        }
        for job in result.jobs() {
            println!(
                "  {} response={:?} deadline {}",
                job.job,
                job.response().map(|t| t.to_string()),
                if job.met_deadline() { "met" } else { "missed" }
            );
        }
        // Count cancellations (rule R3 in action).
        let cancels = result
            .events()
            .iter()
            .filter(|e| e.canceled && e.phase == Phase::CopyIn)
            .count();
        println!("  cancellations: {cancels}\n");
    }
    Ok(())
}
