//! A domain scenario: engine-control ECU with a latency-sensitive
//! injection task.
//!
//! The motivating workload of the paper's introduction: an embedded
//! multicore running a mix of control loops from scratchpad memory. The
//! fuel-injection correction task tolerates almost no scheduling delay,
//! while logging and diagnostics tasks are heavyweight but relaxed. Under
//! the Wasly-Pellizzoni protocol the injection task can be blocked by two
//! heavyweight lower-priority intervals and misses its deadline; the
//! proposed protocol's greedy algorithm marks it latency-sensitive and
//! makes the whole set schedulable.
//!
//! Run with: `cargo run --release --example engine_control`

use pmcs::baselines::wp_milp_analysis;
use pmcs::prelude::*;

fn task(
    id: u32,
    name: &str,
    exec_us: i64,
    mem_us: i64,
    period_us: i64,
    deadline_us: i64,
    prio: u32,
) -> Task {
    Task::builder(TaskId(id))
        .name(name)
        .exec(Time::from_micros(exec_us))
        .copy_in(Time::from_micros(mem_us))
        .copy_out(Time::from_micros(mem_us))
        .sporadic(Time::from_micros(period_us))
        .deadline(Time::from_micros(deadline_us))
        .priority(Priority(prio))
        .build()
        .expect("valid task")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TaskSet::new(vec![
        // Crank-synchronous injection correction: 600 µs of work, must
        // finish within 2.5 ms of the crank event. One heavyweight
        // blocking interval fits in the budget; two do not — exactly the
        // gap between the proposed protocol and [3].
        task(0, "injection", 600, 120, 5_000, 2_500, 0),
        // Lambda-probe control loop.
        task(1, "lambda", 900, 200, 10_000, 6_500, 1),
        // Knock detection FFT window.
        task(2, "knock", 1_200, 300, 20_000, 15_000, 2),
        // Diagnostics snapshot: heavyweight, relaxed deadline.
        task(3, "diagnostics", 1_300, 350, 50_000, 40_000, 3),
        // Flash logging: the heaviest block mover.
        task(4, "logging", 1_250, 400, 50_000, 45_000, 4),
    ])?;
    println!("{set}");

    // Baseline [3]: no latency-sensitivity support.
    let wp = WpAnalysis::default().analyze(&set);
    println!("wasly-pellizzoni [3]:");
    for r in &wp {
        let name = set.get(r.task).and_then(|t| t.name().map(str::to_owned));
        println!(
            "  {:<12} R={:<8} {}",
            name.unwrap_or_default(),
            r.wcrt.to_string(),
            if r.schedulable { "ok" } else { "MISS" }
        );
    }

    // The paper's own formulation but all-NLS (improved analysis of [3]).
    let wp_milp = wp_milp_analysis(&set, &ExactEngine::default())?;
    println!(
        "all-NLS MILP variant: {}",
        if wp_milp.schedulable() {
            "schedulable"
        } else {
            "not schedulable"
        }
    );

    // Proposed protocol with greedy LS marking.
    let report = analyze_task_set(&set, &ExactEngine::default())?;
    println!("proposed protocol → {report}");

    // Show the protocol dynamics: simulate the worst moment — injection
    // released right after logging's copy-in started.
    let marked = report
        .assignment()
        .promoted
        .iter()
        .try_fold(set.all_nls(), |s, &t| {
            s.with_sensitivity(t, Sensitivity::Ls)
        })?;
    let plan = ReleasePlan::from_pairs(vec![
        (TaskId(0), vec![Time::from_micros(50)]),
        (TaskId(1), vec![Time::from_micros(60)]),
        (TaskId(2), vec![Time::from_micros(100)]),
        (TaskId(3), vec![Time::ZERO]),
        (TaskId(4), vec![Time::ZERO]),
    ]);
    let horizon = Time::from_millis(20);
    let result = simulate(&marked, &plan, Policy::Proposed, horizon);
    let violations = validate_trace(&marked, &result, true);
    assert!(violations.is_empty(), "{violations:?}");
    println!(
        "\nproposed-protocol schedule for an adversarial release pattern \
         (first 8 ms, 1 char = 100 µs):"
    );
    print!(
        "{}",
        render_gantt(&result, Time::from_millis(8), Time::from_micros(100))
    );
    let injection = result.worst_response(TaskId(0)).expect("injection ran");
    println!("observed injection response: {injection} (deadline 2500µs)");
    assert!(injection <= Time::from_micros(2_500));
    Ok(())
}
