//! Multicore partitioning: pack a workload onto the fewest cores that the
//! proposed protocol can schedule, comparing bin-packing heuristics
//! (the paper analyzes each core in isolation — Section II).
//!
//! Run with: `cargo run --release --example multicore_partitioning`

use pmcs::core::{partition, Heuristic};
use pmcs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-task workload too heavy for one core.
    let mut generator = TaskSetGenerator::new(
        TaskSetConfig {
            n: 10,
            utilization: 0.9,
            gamma: 0.3,
            beta: 0.6,
            ..TaskSetConfig::default()
        },
        0x5EED,
    );
    let tasks: Vec<Task> = generator.generate().tasks().to_vec();
    let engine = ExactEngine::default();

    for heuristic in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
        match partition(tasks.clone(), 4, heuristic, &engine)? {
            Ok(result) => {
                println!(
                    "{heuristic}: {} core(s), schedulable = {}",
                    result.platform.num_cores(),
                    result.schedulable()
                );
                for (core, set) in result.platform.iter() {
                    let ls: Vec<String> = result.reports[core.0 as usize]
                        .assignment()
                        .promoted
                        .iter()
                        .map(|t| t.to_string())
                        .collect();
                    println!(
                        "  {core}: {} tasks, U = {:.2}, LS = [{}]",
                        set.len(),
                        set.utilization(),
                        ls.join(", ")
                    );
                }
            }
            Err(e) => println!("{heuristic}: {e}"),
        }
    }
    Ok(())
}
