//! # pmcs — Predictable Memory-CPU Co-Scheduling
//!
//! A complete, from-scratch reproduction of
//! *"Predictable Memory-CPU Co-Scheduling with Support for
//! Latency-Sensitive Tasks"* (Casini, Pazzaglia, Biondi, Di Natale,
//! Buttazzo — **DAC 2020**), packaged as a workspace of focused crates
//! and re-exported here as one facade:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `pmcs-model` | time, tasks, arrival curves, task sets |
//! | [`milp`] | `pmcs-milp` | from-scratch LP/MILP solver (CPLEX substitute) |
//! | [`core`] | `pmcs-core` | the protocol (R1–R6), MILP analysis, exact engine, greedy LS marking |
//! | [`baselines`] | `pmcs-baselines` | non-preemptive scheduling (NPS) and Wasly-Pellizzoni (WP) analyses |
//! | [`analysis`] | `pmcs-analysis` | unified facade: `Analyzer` trait, approach registry, engine stack, typed config |
//! | [`sim`] | `pmcs-sim` | discrete-event simulator + trace validators + Gantt |
//! | [`workload`] | `pmcs-workload` | Section VII task-set generators |
//! | [`cert`] | `pmcs-cert` | proof-carrying analysis: certificate formats + independent `i128` checker |
//! | [`audit`] | `pmcs-audit` | exact MILP audits, formulation lints, R1–R6 conformance |
//! | [`serve`] | `pmcs-serve` | schedulability-as-a-service: NDJSON/TCP daemon, replay auditing, load generator |
//!
//! ## Quickstart
//!
//! ```
//! use pmcs::prelude::*;
//!
//! // Generate a Section-VII-style task set and analyze it under all
//! // three approaches.
//! let mut gen = TaskSetGenerator::new(TaskSetConfig {
//!     n: 4,
//!     utilization: 0.45,
//!     gamma: 0.3,
//!     beta: 0.4,
//!     ..TaskSetConfig::default()
//! }, 42);
//! let set = gen.generate();
//!
//! let proposed = analyze_task_set(&set, &ExactEngine::default())?;
//! let wp = WpAnalysis::default().is_schedulable(&set);
//! let nps = NpsAnalysis::default().is_schedulable(&set);
//! println!("proposed: {} | wp: {wp} | nps: {nps}", proposed.schedulable());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub use pmcs_analysis as analysis;
pub use pmcs_audit as audit;
pub use pmcs_baselines as baselines;
pub use pmcs_cert as cert;
pub use pmcs_core as core;
pub use pmcs_milp as milp;
pub use pmcs_model as model;
pub use pmcs_serve as serve;
pub use pmcs_sim as sim;
pub use pmcs_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use pmcs_analysis::{
        AnalysisConfig, AnalysisContext, AnalysisError, Analyzer, ApproachReport, Registry,
    };
    pub use pmcs_audit::{lint, LintCode, LintReport};
    pub use pmcs_baselines::{NpsAnalysis, WpAnalysis};
    pub use pmcs_core::{
        analyze_task_set, chain_latency, exhaustive_ls_assignment, partition, ChainActivation,
        CoreError, DelayEngine, ExactEngine, Heuristic, MilpEngine, SchedulabilityReport,
        TaskChain, WcrtAnalyzer,
    };
    pub use pmcs_model::prelude::*;
    pub use pmcs_sim::{
        check_conformance, render_gantt, simulate, trace_stats, validate_trace, Policy,
        ReleasePlan, RuleTag,
    };
    pub use pmcs_workload::{random_sporadic_plan, TaskSetConfig, TaskSetGenerator};
}
