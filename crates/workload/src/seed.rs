//! Hierarchical seed derivation for parallel experiment drivers.
//!
//! Sweeps fan `(point, set)` work items out across threads, so every item
//! needs an RNG stream that depends only on its coordinates — never on
//! which worker picks it up or in which order. [`derive_seed`] maps
//! `(base_seed, point_index, set_index)` to a well-mixed 64-bit seed via
//! two rounds of the splitmix64 finalizer, the same mixer `StdRng`
//! seeding builds on. Distinct coordinates give (with overwhelming
//! probability) decorrelated streams; equal coordinates give identical
//! streams regardless of thread count.

/// splitmix64 finalizer: a bijective avalanche mixer on `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the per-work-item seed for sweep point `point`, task set `set`.
///
/// The derivation is a fixed function of its three arguments: results are
/// independent of scheduling, thread count, and evaluation order.
///
/// # Example
///
/// ```
/// use pmcs_workload::derive_seed;
///
/// let a = derive_seed(42, 3, 7);
/// assert_eq!(a, derive_seed(42, 3, 7));
/// assert_ne!(a, derive_seed(42, 7, 3));
/// assert_ne!(a, derive_seed(43, 3, 7));
/// ```
pub fn derive_seed(base_seed: u64, point: u64, set: u64) -> u64 {
    mix(mix(base_seed ^ mix(point)).wrapping_add(mix(set ^ 0xa076_1d64_78bd_642f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    }

    #[test]
    fn coordinates_are_not_interchangeable() {
        // XOR-style derivations collapse (p, s) with (s, p); ours must not.
        assert_ne!(derive_seed(0, 1, 2), derive_seed(0, 2, 1));
        assert_ne!(derive_seed(1, 0, 2), derive_seed(2, 0, 1));
    }

    #[test]
    fn no_collisions_on_experiment_scale_grids() {
        // 16 points × 1000 sets × a few bases: all distinct.
        let mut seen = HashSet::new();
        for base in [0u64, 42, 0xffff_ffff_ffff_ffff] {
            for p in 0..16u64 {
                for s in 0..1000u64 {
                    assert!(
                        seen.insert(derive_seed(base, p, s)),
                        "collision at base={base} p={p} s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_coordinates_are_mixed() {
        // The all-zero corner must not degenerate to the base seed.
        assert_ne!(derive_seed(7, 0, 0), 7);
        assert_ne!(derive_seed(0, 0, 0), 0);
    }
}
