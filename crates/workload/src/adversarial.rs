//! Adversarial release-plan generators for simulation-vs-analysis
//! cross-validation.
//!
//! Each generator targets a different worst-case mechanism of the
//! analysis:
//!
//! * [`PlanKind::CriticalInstant`] — every task released synchronously at
//!   `t = 0` and re-released as early as admitted, the classical
//!   critical-instant pattern the response-time analyses are built
//!   around;
//! * [`PlanKind::Sporadic`] — random sporadic arrivals with seed-derived
//!   jitter (via [`crate::random_sporadic_plan`]), probing interleavings
//!   the synchronous pattern cannot reach;
//! * [`PlanKind::Burst`] — maximum-interference bursts: the
//!   lowest-priority task is released first so its non-preemptive /
//!   copy-phase blocking is in flight when everyone else arrives one
//!   tick later.
//!
//! Plans are identified by a [`PlanSpec`] whose seed comes from
//! [`crate::derive_seed`], so a refutation report names the exact plan
//! and any run — any thread count, any machine — reproduces it.

use pmcs_model::{TaskSet, Time};
use pmcs_sim::ReleasePlan;

use crate::releases::random_sporadic_plan_into;
use crate::seed::derive_seed;

/// The adversarial plan families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Synchronous release of all tasks at `t = 0`, repeating as early as
    /// the arrival model admits.
    CriticalInstant,
    /// Random sporadic arrivals with seed-derived jitter.
    Sporadic,
    /// Lowest-priority task first, everyone else inside its serialized
    /// execution — maximum blocking interference.
    Burst,
}

impl PlanKind {
    /// All families, in generation order.
    pub const ALL: [PlanKind; 3] = [
        PlanKind::CriticalInstant,
        PlanKind::Sporadic,
        PlanKind::Burst,
    ];

    /// Stable machine-readable name (used in refutation reports).
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::CriticalInstant => "critical-instant",
            PlanKind::Sporadic => "sporadic",
            PlanKind::Burst => "burst",
        }
    }
}

/// A fully-determined adversarial plan: family plus derived seed.
///
/// The `index` is the plan's position in the generated family sequence
/// (`0..count`), kept so reports stay human-orderable; `seed` alone
/// already pins the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanSpec {
    /// The plan family.
    pub kind: PlanKind,
    /// Seed that fully determines the plan (from [`derive_seed`]).
    pub seed: u64,
    /// Position in the generated sequence.
    pub index: usize,
}

impl std::fmt::Display for PlanSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}#{} seed={:#018x}",
            self.kind.name(),
            self.index,
            self.seed
        )
    }
}

/// Enumerates `count` plan specs, cycling through the three families and
/// deriving one seed per plan from `base_seed`.
///
/// Seeds are position-derived (not drawn from a shared RNG stream), so a
/// parallel driver can evaluate plans in any order and still produce
/// byte-identical reports.
pub fn adversarial_specs(count: usize, base_seed: u64) -> Vec<PlanSpec> {
    (0..count).map(|i| adversarial_spec(i, base_seed)).collect()
}

/// The `index`-th spec of the sequence [`adversarial_specs`] enumerates,
/// computed directly — shard-parallel drivers use this to regenerate any
/// slice of a million-plan campaign without materializing the full spec
/// list.
pub fn adversarial_spec(index: usize, base_seed: u64) -> PlanSpec {
    let kind = PlanKind::ALL[index % PlanKind::ALL.len()];
    PlanSpec {
        kind,
        seed: derive_seed(
            base_seed,
            (index % PlanKind::ALL.len()) as u64,
            (index / PlanKind::ALL.len()) as u64,
        ),
        index,
    }
}

/// Materializes the release plan a [`PlanSpec`] describes for `set` over
/// `[0, horizon)`.
///
/// # Panics
///
/// Panics if a task's arrival model has no positive minimum
/// inter-arrival time (the generators need a release grid).
pub fn adversarial_plan(set: &TaskSet, horizon: Time, spec: PlanSpec) -> ReleasePlan {
    let mut plan = ReleasePlan::default();
    adversarial_plan_into(set, horizon, spec, &mut plan);
    plan
}

/// [`adversarial_plan`] into a caller-owned plan whose buffers are
/// reused between calls (cleared, not reallocated) — the per-shard
/// regeneration path of campaign drivers. Produces a plan equal to the
/// allocating variant for the same inputs, whatever `plan` held before.
///
/// # Panics
///
/// Same conditions as [`adversarial_plan`].
pub fn adversarial_plan_into(set: &TaskSet, horizon: Time, spec: PlanSpec, plan: &mut ReleasePlan) {
    match spec.kind {
        PlanKind::CriticalInstant => plan.fill_periodic(set, horizon),
        PlanKind::Sporadic => {
            // Seed-derived jitter amplitude in (0, 0.5].
            let max_slack = ((spec.seed % 50) + 1) as f64 / 100.0;
            random_sporadic_plan_into(set, horizon, max_slack, spec.seed, plan);
        }
        PlanKind::Burst => burst_plan_into(set, horizon, plan),
    }
}

/// Maximum-interference burst: the lowest-priority task is released at
/// `t = 0` so its blocking (copy phases, non-preemptive execution) is in
/// flight when every other task arrives synchronously one tick later —
/// the instant that maximizes the blocking the higher-priority tasks
/// observe. Releases then repeat at the minimum inter-arrival distance.
///
/// The burst instant is deterministic by design (it *is* the worst
/// case); the spec's seed identifies the plan but does not perturb it.
fn burst_plan_into(set: &TaskSet, horizon: Time, plan: &mut ReleasePlan) {
    let blocker = set
        .iter()
        .max_by_key(|t| t.priority())
        .expect("burst plan needs a non-empty task set");
    plan.reset_for(set);
    for task in set.iter() {
        let t = task
            .arrival()
            .min_inter_arrival()
            .expect("burst plan needs a positive minimum inter-arrival time");
        let offset = if task.id() == blocker.id() {
            Time::ZERO
        } else {
            Time::TICK
        };
        let mut now = offset;
        while now < horizon {
            plan.push(task.id(), now);
            now += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskId;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 5, 1, 1, 50, 0, true),
            test_task(1, 8, 2, 2, 80, 1, false),
            test_task(2, 10, 3, 3, 100, 2, false),
        ])
        .unwrap()
    }

    #[test]
    fn specs_cycle_families_and_derive_distinct_seeds() {
        let specs = adversarial_specs(7, 42);
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].kind, PlanKind::CriticalInstant);
        assert_eq!(specs[1].kind, PlanKind::Sporadic);
        assert_eq!(specs[2].kind, PlanKind::Burst);
        assert_eq!(specs[3].kind, PlanKind::CriticalInstant);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 7, "per-plan seeds must be distinct");
    }

    #[test]
    fn specs_are_deterministic_in_base_seed() {
        assert_eq!(adversarial_specs(9, 7), adversarial_specs(9, 7));
        assert_ne!(adversarial_specs(9, 7), adversarial_specs(9, 8));
    }

    #[test]
    fn critical_instant_releases_everyone_at_zero() {
        let spec = adversarial_specs(1, 1)[0];
        let plan = adversarial_plan(&set(), Time::from_ticks(500), spec);
        for (_, releases) in plan.iter() {
            assert_eq!(releases[0], Time::ZERO);
        }
    }

    #[test]
    fn burst_releases_blocker_first() {
        let spec = PlanSpec {
            kind: PlanKind::Burst,
            seed: 99,
            index: 2,
        };
        let plan = adversarial_plan(&set(), Time::from_ticks(500), spec);
        let blocker = plan.releases(TaskId(2));
        assert_eq!(blocker[0], Time::ZERO);
        let span = set().get(TaskId(2)).unwrap().wcet_serialized();
        for victim in [TaskId(0), TaskId(1)] {
            let first = plan.releases(victim)[0];
            assert!(first > Time::ZERO && first <= span, "{victim}: {first}");
        }
    }

    #[test]
    fn all_plans_respect_min_inter_arrival() {
        let s = set();
        for spec in adversarial_specs(6, 11) {
            let plan = adversarial_plan(&s, Time::from_ticks(2_000), spec);
            for (task, releases) in plan.iter() {
                let t = s.get(task).unwrap().arrival().min_inter_arrival().unwrap();
                for w in releases.windows(2) {
                    assert!(w[1] - w[0] >= t, "{spec}: {task} gap {}", w[1] - w[0]);
                }
            }
        }
    }

    #[test]
    fn spec_display_is_machine_readable() {
        let spec = PlanSpec {
            kind: PlanKind::Sporadic,
            seed: 0xdead_beef,
            index: 4,
        };
        assert_eq!(format!("{spec}"), "sporadic#4 seed=0x00000000deadbeef");
    }
}
