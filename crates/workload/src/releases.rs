//! Random sporadic release plans for simulation cross-checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmcs_model::TaskSet;
use pmcs_model::Time;
use pmcs_sim::ReleasePlan;

/// Builds a random sporadic release plan: consecutive releases of each
/// task are separated by `T_i · (1 + slack)` with `slack` uniform in
/// `[0, max_slack]`; the first release is uniform in `[0, T_i]`.
///
/// With `max_slack = 0` the plan is periodic with a random phase.
///
/// # Panics
///
/// Panics if `max_slack` is negative or a task's arrival model admits
/// simultaneous releases (no positive minimum inter-arrival time).
///
/// # Example
///
/// ```
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskSet, Time};
/// use pmcs_workload::random_sporadic_plan;
///
/// let set = TaskSet::new(vec![test_task(0, 5, 1, 1, 100, 0, false)]).unwrap();
/// let plan = random_sporadic_plan(&set, Time::from_ticks(1_000), 0.2, 7);
/// assert!(plan.total_releases() >= 8);
/// ```
pub fn random_sporadic_plan(
    set: &TaskSet,
    horizon: Time,
    max_slack: f64,
    seed: u64,
) -> ReleasePlan {
    let mut plan = ReleasePlan::default();
    random_sporadic_plan_into(set, horizon, max_slack, seed, &mut plan);
    plan
}

/// [`random_sporadic_plan`] into a caller-owned plan whose buffers are
/// reused (cleared, not reallocated). Produces a plan equal to the
/// allocating variant for the same inputs, whatever `plan` held before.
///
/// # Panics
///
/// Same conditions as [`random_sporadic_plan`].
pub fn random_sporadic_plan_into(
    set: &TaskSet,
    horizon: Time,
    max_slack: f64,
    seed: u64,
    plan: &mut ReleasePlan,
) {
    assert!(max_slack >= 0.0, "slack must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    plan.reset_for(set);
    for task in set.iter() {
        let t = task
            .arrival()
            .min_inter_arrival()
            .expect("sporadic plan needs a positive minimum inter-arrival time");
        assert!(t > Time::ZERO);
        let mut now = Time::from_ticks(rng.gen_range(0..=t.as_ticks()));
        while now < horizon {
            plan.push(task.id(), now);
            let slack = rng.gen_range(0.0..=max_slack.max(f64::MIN_POSITIVE));
            let gap = Time::from_f64_ceil(t.as_f64() * (1.0 + slack)).max(t);
            now += gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskId;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 5, 1, 1, 100, 0, false),
            test_task(1, 5, 1, 1, 70, 1, false),
        ])
        .unwrap()
    }

    #[test]
    fn gaps_respect_min_inter_arrival() {
        let plan = random_sporadic_plan(&set(), Time::from_ticks(5_000), 0.5, 3);
        for (task, releases) in plan.iter() {
            let t = set()
                .get(task)
                .unwrap()
                .arrival()
                .min_inter_arrival()
                .unwrap();
            for w in releases.windows(2) {
                assert!(w[1] - w[0] >= t, "{task}: gap {} < T {}", w[1] - w[0], t);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_sporadic_plan(&set(), Time::from_ticks(2_000), 0.3, 9);
        let b = random_sporadic_plan(&set(), Time::from_ticks(2_000), 0.3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_slack_is_periodic_with_phase() {
        let plan = random_sporadic_plan(&set(), Time::from_ticks(1_000), 0.0, 1);
        let r = plan.releases(TaskId(0));
        for w in r.windows(2) {
            assert_eq!(w[1] - w[0], Time::from_ticks(100));
        }
    }

    #[test]
    fn all_tasks_present() {
        let plan = random_sporadic_plan(&set(), Time::from_ticks(500), 0.2, 5);
        assert_eq!(plan.iter().count(), 2);
    }
}
