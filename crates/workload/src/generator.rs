//! Task-set generation per Section VII of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmcs_model::{Priority, Task, TaskId, TaskSet, Time};

use crate::uunifast::uunifast;

/// Parameters of the Section VII generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSetConfig {
    /// Number of tasks per core.
    pub n: usize,
    /// Total utilization `U = Σ C_i / T_i`.
    pub utilization: f64,
    /// Memory-intensity factor: `u_i = l_i = γ · C_i`.
    pub gamma: f64,
    /// Deadline-tightness: `D_i ~ U[C_i + β(T_i − C_i), T_i]`.
    pub beta: f64,
    /// Minimum inter-arrival lower bound (paper: 10 ms).
    pub period_min: Time,
    /// Minimum inter-arrival upper bound (paper: 100 ms).
    pub period_max: Time,
}

impl Default for TaskSetConfig {
    fn default() -> Self {
        TaskSetConfig {
            n: 6,
            utilization: 0.5,
            gamma: 0.3,
            beta: 0.4,
            period_min: Time::from_millis(10),
            period_max: Time::from_millis(100),
        }
    }
}

/// Seeded generator of random task sets.
///
/// # Example
///
/// ```
/// use pmcs_workload::{TaskSetConfig, TaskSetGenerator};
///
/// let mut g = TaskSetGenerator::new(TaskSetConfig::default(), 1234);
/// let set = g.generate();
/// assert_eq!(set.len(), 6);
/// assert!((set.utilization() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct TaskSetGenerator {
    config: TaskSetConfig,
    rng: StdRng,
}

impl TaskSetGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero tasks, non-positive
    /// utilization, `γ < 0`, `β ∉ [0, 1]`, inverted period range).
    pub fn new(config: TaskSetConfig, seed: u64) -> Self {
        assert!(config.n > 0, "need at least one task");
        assert!(config.utilization > 0.0, "utilization must be positive");
        assert!(config.gamma >= 0.0, "gamma must be non-negative");
        assert!(
            (0.0..=1.0).contains(&config.beta),
            "beta must be within [0, 1]"
        );
        assert!(
            Time::ZERO < config.period_min && config.period_min <= config.period_max,
            "period range must be positive and ordered"
        );
        TaskSetGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TaskSetConfig {
        &self.config
    }

    /// Generates the next random task set.
    pub fn generate(&mut self) -> TaskSet {
        let c = &self.config;
        let utils = uunifast(c.n, c.utilization, &mut self.rng);
        let mut drafts: Vec<(Time, Time, Time, Time)> = Vec::with_capacity(c.n);
        for &u in &utils {
            // Log-uniform minimum inter-arrival time.
            let (lo, hi) = (c.period_min.as_f64().ln(), c.period_max.as_f64().ln());
            let t = Time::from_f64_round(self.rng.gen_range(lo..=hi).exp()).max(Time::TICK);
            // C_i = U_i · T_i, at least one tick.
            let exec = Time::from_f64_round(u * t.as_f64()).max(Time::TICK);
            // u_i = l_i = γ · C_i.
            let mem = Time::from_f64_round(c.gamma * exec.as_f64());
            // D_i ~ U[C_i + β(T_i − C_i), T_i].
            let dmin = exec + Time::from_f64_round(c.beta * (t - exec).as_f64());
            let dmin = dmin.min(t);
            let deadline = if dmin >= t {
                t
            } else {
                Time::from_ticks(self.rng.gen_range(dmin.as_ticks()..=t.as_ticks()))
            };
            drafts.push((t, exec, mem, deadline));
        }
        // Deadline-monotonic priority order (ties broken by index).
        let mut order: Vec<usize> = (0..c.n).collect();
        order.sort_by_key(|&i| (drafts[i].3, i));
        let mut tasks = Vec::with_capacity(c.n);
        for (prio, &i) in order.iter().enumerate() {
            let (t, exec, mem, deadline) = drafts[i];
            tasks.push(
                Task::builder(TaskId(i as u32))
                    .exec(exec)
                    .copy_in(mem)
                    .copy_out(mem)
                    .sporadic(t)
                    .deadline(deadline)
                    .priority(Priority(prio as u32))
                    .build()
                    .expect("generated parameters are valid"),
            );
        }
        TaskSet::new(tasks).expect("generated set is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_one(config: TaskSetConfig, seed: u64) -> TaskSet {
        TaskSetGenerator::new(config, seed).generate()
    }

    #[test]
    fn respects_scale_parameters() {
        let cfg = TaskSetConfig {
            n: 8,
            utilization: 0.6,
            gamma: 0.5,
            beta: 0.0,
            ..TaskSetConfig::default()
        };
        let set = gen_one(cfg, 99);
        assert_eq!(set.len(), 8);
        assert!((set.utilization() - 0.6).abs() < 0.05);
        for t in set.iter() {
            let tt = t.arrival().min_inter_arrival().unwrap();
            assert!(tt >= Time::from_millis(10) && tt <= Time::from_millis(100));
            assert!(t.deadline() <= tt);
            assert!(t.deadline() >= t.exec());
            // γ = 0.5: memory phases about half the execution.
            let ratio = t.copy_in().as_f64() / t.exec().as_f64();
            assert!((ratio - 0.5).abs() < 0.51, "ratio {ratio}"); // rounding on tiny C
            assert_eq!(t.copy_in(), t.copy_out());
        }
    }

    #[test]
    fn priorities_are_deadline_monotonic() {
        let set = gen_one(TaskSetConfig::default(), 5);
        let deadlines: Vec<_> = set.iter().map(|t| t.deadline()).collect();
        let mut sorted = deadlines.clone();
        sorted.sort();
        assert_eq!(deadlines, sorted);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = gen_one(TaskSetConfig::default(), 11);
        let b = gen_one(TaskSetConfig::default(), 11);
        let c = gen_one(TaskSetConfig::default(), 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn beta_one_pins_deadline_to_period() {
        let cfg = TaskSetConfig {
            beta: 1.0,
            ..TaskSetConfig::default()
        };
        let set = gen_one(cfg, 3);
        for t in set.iter() {
            assert_eq!(
                t.deadline(),
                t.arrival().min_inter_arrival().unwrap(),
                "β=1 must give implicit deadlines"
            );
        }
    }

    #[test]
    fn gamma_zero_gives_pure_compute_tasks() {
        let cfg = TaskSetConfig {
            gamma: 0.0,
            ..TaskSetConfig::default()
        };
        let set = gen_one(cfg, 4);
        assert!(set
            .iter()
            .all(|t| t.copy_in().is_zero() && t.copy_out().is_zero()));
    }

    #[test]
    #[should_panic(expected = "beta must be within")]
    fn invalid_beta_rejected() {
        let _ = TaskSetGenerator::new(
            TaskSetConfig {
                beta: 1.5,
                ..TaskSetConfig::default()
            },
            0,
        );
    }

    #[test]
    fn successive_sets_differ() {
        let mut g = TaskSetGenerator::new(TaskSetConfig::default(), 0);
        let a = g.generate();
        let b = g.generate();
        assert_ne!(a, b);
    }
}
