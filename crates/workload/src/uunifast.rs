//! The UUniFast algorithm (Bini & Buttazzo, reference \[18\] of the paper).

use rand::Rng;

/// Draws `n` task utilizations summing exactly to `total`, uniformly over
/// the standard simplex (UUniFast).
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not positive and finite.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let us = pmcs_workload::uunifast(4, 0.8, &mut rng);
/// assert_eq!(us.len(), 4);
/// let sum: f64 = us.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-12);
/// ```
pub fn uunifast(n: usize, total: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total > 0.0 && total.is_finite(),
        "total utilization must be positive and finite"
    );
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let exp = 1.0 / (n - i) as f64;
        let next = sum * rng.gen::<f64>().powf(exp);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_total_and_all_positive() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in 1..=12 {
            for &u in &[0.1, 0.5, 0.95] {
                let us = uunifast(n, u, &mut rng);
                assert_eq!(us.len(), n);
                let sum: f64 = us.iter().sum();
                assert!((sum - u).abs() < 1e-12, "n={n} u={u} sum={sum}");
                assert!(us.iter().all(|&x| x > 0.0));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uunifast(5, 0.7, &mut StdRng::seed_from_u64(1));
        let b = uunifast(5, 0.7, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn single_task_gets_everything() {
        let us = uunifast(1, 0.42, &mut StdRng::seed_from_u64(0));
        assert_eq!(us, vec![0.42]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = uunifast(0, 0.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Spot-check that the spread across tasks varies (no uniform
        // splitting artifact).
        let mut rng = StdRng::seed_from_u64(9);
        let us = uunifast(8, 0.8, &mut rng);
        let min = us.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = us.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.5, "suspiciously uniform: {us:?}");
    }
}
