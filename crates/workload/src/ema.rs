//! EMA execution-time prediction — the measurement-driven workload mode.
//!
//! Declared WCETs are pessimistic by design; real executions cluster
//! well below them. This module reproduces the Exo-OS scheduler idiom
//! (see SNIPPETS.md): an exponential moving average over observed
//! execution times,
//!
//! ```text
//! ema = α · new_time + (1 − α) · old_ema        (α = 0.25)
//! ```
//!
//! with the first sample initializing the average, and a three-way
//! execution class derived from the prediction (*hot* < 10 ms ≤
//! *normal* < 100 ms ≤ *cold*). Campaign drivers feed the predictor
//! with seeded *simulated* history (this repository has no hardware to
//! measure), build a "measured" variant of each task set via
//! [`measured_set`], and report how far observed worst-case responses
//! under measured execution times sit below the declared-WCET
//! analytical bounds — the measured-vs-declared sensitivity column.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmcs_model::{Task, TaskId, TaskSet, Time};

use crate::seed::derive_seed;

/// The smoothing factor the Exo-OS idiom uses.
pub const DEFAULT_ALPHA: f64 = 0.25;

/// Exponential-moving-average predictor over observed execution times.
///
/// # Example
///
/// ```
/// use pmcs_model::Time;
/// use pmcs_workload::EmaPredictor;
///
/// let mut p = EmaPredictor::new(0.25);
/// p.observe(Time::from_ticks(100)); // first sample initializes
/// assert_eq!(p.prediction(), Some(Time::from_ticks(100)));
/// p.observe(Time::from_ticks(200)); // 0.25·200 + 0.75·100 = 125
/// assert_eq!(p.prediction(), Some(Time::from_ticks(125)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EmaPredictor {
    alpha: f64,
    ema: Option<f64>,
    samples: u64,
}

impl EmaPredictor {
    /// A predictor with smoothing factor `alpha` (`0 < α ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EmaPredictor {
            alpha,
            ema: None,
            samples: 0,
        }
    }

    /// Folds one observed execution time into the average. The first
    /// observation initializes the EMA to the sample itself.
    pub fn observe(&mut self, t: Time) {
        let x = t.as_f64();
        self.ema = Some(match self.ema {
            None => x,
            Some(old) => self.alpha * x + (1.0 - self.alpha) * old,
        });
        self.samples += 1;
    }

    /// The current prediction, rounded up to the tick grid (`None`
    /// before the first observation).
    pub fn prediction(&self) -> Option<Time> {
        self.ema.map(Time::from_f64_ceil)
    }

    /// Number of samples folded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Execution class of a predicted time (the Exo-OS three-queue split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Predicted execution below 10 ms.
    Hot,
    /// Predicted execution in `[10, 100)` ms.
    Normal,
    /// Predicted execution at or above 100 ms.
    Cold,
}

impl ExecClass {
    /// Classifies a predicted execution time.
    pub fn of(predicted: Time) -> Self {
        if predicted < Time::from_millis(10) {
            ExecClass::Hot
        } else if predicted < Time::from_millis(100) {
            ExecClass::Normal
        } else {
            ExecClass::Cold
        }
    }

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ExecClass::Hot => "hot",
            ExecClass::Normal => "normal",
            ExecClass::Cold => "cold",
        }
    }
}

/// Per-task outcome of [`measured_set`].
#[derive(Debug, Clone, Copy)]
pub struct MeasuredTask {
    /// The task.
    pub task: TaskId,
    /// Declared WCET `C` from the original set.
    pub declared: Time,
    /// EMA prediction over the simulated history (≤ `declared`).
    pub predicted: Time,
    /// Execution class of the prediction.
    pub class: ExecClass,
}

/// Seeded simulated execution history for `task`: `len` samples in
/// `[1, C]` ticks. Most executions land well under the declared WCET
/// (uniform fraction in `[0.55, 0.95]` of `C`); one in eight hits `C`
/// exactly, keeping the average honest about the worst case. Fully
/// deterministic in `(task, seed)` — independent of sampling order
/// across tasks.
pub fn simulated_exec_history(task: &Task, len: usize, seed: u64) -> Vec<Time> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xe3a_u64, u64::from(task.id().0)));
    let c = task.exec().as_ticks().max(1);
    (0..len)
        .map(|_| {
            if rng.gen_range(0..8_u32) == 0 {
                Time::from_ticks(c)
            } else {
                let frac: f64 = rng.gen_range(0.55..=0.95);
                Time::from_ticks(((c as f64 * frac).ceil() as i64).clamp(1, c))
            }
        })
        .collect()
}

/// Builds the *measured* variant of `set`: each task's execution time is
/// replaced by the EMA prediction over `history` simulated samples
/// (clamped to `[1 tick, C]`; zero-execution tasks stay at zero). Copy
/// phases, arrival models, deadlines, priorities and sensitivity are
/// untouched, so the measured set is schedulable wherever the declared
/// one is. Returns the set together with the per-task predictions.
pub fn measured_set(
    set: &TaskSet,
    history: usize,
    alpha: f64,
    seed: u64,
) -> (TaskSet, Vec<MeasuredTask>) {
    let mut tasks = Vec::with_capacity(set.len());
    let mut info = Vec::with_capacity(set.len());
    for t in set.tasks() {
        let predicted = if t.exec() == Time::ZERO {
            Time::ZERO
        } else {
            let mut p = EmaPredictor::new(alpha);
            for s in simulated_exec_history(t, history, seed) {
                p.observe(s);
            }
            p.prediction()
                .unwrap_or(t.exec())
                .clamp(Time::TICK, t.exec())
        };
        let mut b = Task::builder(t.id())
            .exec(predicted)
            .copy_in(t.copy_in())
            .copy_out(t.copy_out())
            .arrival(t.arrival().clone())
            .deadline(t.deadline())
            .priority(t.priority())
            .sensitivity(t.sensitivity());
        if let Some(n) = t.name() {
            b = b.name(n);
        }
        tasks.push(
            b.build()
                .expect("shrinking the execution time preserves task validity"),
        );
        info.push(MeasuredTask {
            task: t.id(),
            declared: t.exec(),
            predicted,
            class: ExecClass::of(predicted),
        });
    }
    let measured = TaskSet::new(tasks).expect("measured set mirrors a valid set");
    (measured, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 2_000, 500, 500, 20_000, 0, true),
            test_task(1, 15_000, 2_000, 2_000, 60_000, 1, false),
        ])
        .unwrap()
    }

    #[test]
    fn first_sample_initializes_then_smooths() {
        let mut p = EmaPredictor::new(0.25);
        assert_eq!(p.prediction(), None);
        p.observe(Time::from_ticks(80));
        assert_eq!(p.prediction(), Some(Time::from_ticks(80)));
        p.observe(Time::from_ticks(160));
        // 0.25·160 + 0.75·80 = 100
        assert_eq!(p.prediction(), Some(Time::from_ticks(100)));
        assert_eq!(p.samples(), 2);
    }

    #[test]
    fn classes_split_at_10_and_100_ms() {
        assert_eq!(ExecClass::of(Time::from_millis(9)), ExecClass::Hot);
        assert_eq!(ExecClass::of(Time::from_millis(10)), ExecClass::Normal);
        assert_eq!(ExecClass::of(Time::from_millis(99)), ExecClass::Normal);
        assert_eq!(ExecClass::of(Time::from_millis(100)), ExecClass::Cold);
    }

    #[test]
    fn history_is_deterministic_and_bounded() {
        let s = set();
        let t = &s.tasks()[0];
        let a = simulated_exec_history(t, 64, 7);
        let b = simulated_exec_history(t, 64, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x > Time::ZERO && x <= t.exec()));
        assert_ne!(a, simulated_exec_history(t, 64, 8));
    }

    #[test]
    fn measured_set_shrinks_exec_only() {
        let s = set();
        let (m, info) = measured_set(&s, 64, DEFAULT_ALPHA, 42);
        assert_eq!(m.len(), s.len());
        for (orig, meas) in s.tasks().iter().zip(m.tasks()) {
            assert_eq!(orig.id(), meas.id());
            assert!(meas.exec() <= orig.exec());
            assert!(meas.exec() > Time::ZERO);
            assert_eq!(orig.copy_in(), meas.copy_in());
            assert_eq!(orig.copy_out(), meas.copy_out());
            assert_eq!(orig.deadline(), meas.deadline());
            assert_eq!(orig.priority(), meas.priority());
        }
        assert_eq!(info.len(), 2);
        // τ0: C = 2000 ticks = 2 ms → hot; τ1: 15 ms declared, ~60-95 %
        // measured → around 10 ms, class depends on the draw but must
        // match its own prediction.
        assert_eq!(info[0].class, ExecClass::Hot);
        for mt in &info {
            assert_eq!(mt.class, ExecClass::of(mt.predicted));
            assert!(mt.predicted <= mt.declared);
        }
    }

    #[test]
    fn measured_set_is_deterministic() {
        let s = set();
        let (m1, _) = measured_set(&s, 32, 0.25, 9);
        let (m2, _) = measured_set(&s, 32, 0.25, 9);
        for (a, b) in m1.tasks().iter().zip(m2.tasks()) {
            assert_eq!(a.exec(), b.exec());
        }
    }
}
