//! # pmcs-workload
//!
//! Seeded task-set generators reproducing the evaluation workloads of
//! Section VII of the paper:
//!
//! * minimum inter-arrival times `T_i` log-uniform in `[10, 100]` ms;
//! * per-task utilizations from **UUniFast** \[18\] for a given total `U`;
//! * execution times `C_i = U_i · T_i`;
//! * memory phases `u_i = l_i = γ · C_i` with `γ ∈ [0.1, 0.5]`;
//! * deadlines uniform in `[C_i + β(T_i − C_i), T_i]`;
//! * unique priorities assigned **deadline-monotonic** (the paper does not
//!   state its priority assignment; DM is the standard choice for
//!   constrained deadlines).
//!
//! All randomness flows from a caller-provided seed, so every experiment
//! is exactly reproducible.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod ema;
pub mod generator;
pub mod releases;
pub mod seed;
pub mod uunifast;

pub use adversarial::{
    adversarial_plan, adversarial_plan_into, adversarial_spec, adversarial_specs, PlanKind,
    PlanSpec,
};
pub use ema::{measured_set, simulated_exec_history, EmaPredictor, ExecClass, MeasuredTask};
pub use generator::{TaskSetConfig, TaskSetGenerator};
pub use releases::{random_sporadic_plan, random_sporadic_plan_into};
pub use seed::derive_seed;
pub use uunifast::uunifast;
