//! Throughput-regression guard over the shipped `BENCH_campaign.json`:
//! the workspace-reuse streaming kernel must keep beating the
//! fresh-allocation traced baseline, and the record must come from a
//! full million-plan campaign that found no bound exceedances.
//!
//! The shipped record was produced on a 1-CPU container with `--jobs 1`
//! (285k streamed sims/s vs 131k traced sims/s, speedup 2.18x). The
//! assertions leave generous headroom — they catch the workspace reuse
//! silently falling back to per-run allocation, not machine noise.

use std::fs;
use std::path::Path;

/// Streamed throughput floor (shipped: ~285k sims/s; floor = half).
const MIN_PLANS_PER_SEC: f64 = 140_000.0;

/// Streaming-vs-traced speedup floor (shipped: 2.18x; the issue's
/// acceptance bar is 2.0x — a record below that must not ship).
const MIN_SPEEDUP: f64 = 2.0;

/// Pulls a top-level numeric field out of the hand-rolled perf JSON
/// (stable shape: one `"key": value` pair per line).
fn field(json: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let line = json
        .lines()
        .find(|l| l.trim_start().starts_with(&needle))
        .unwrap_or_else(|| panic!("field {key} missing from BENCH_campaign.json"));
    line.trim_start()[needle.len()..]
        .trim_end_matches([',', ' '])
        .parse()
        .unwrap_or_else(|_| panic!("field {key} is not numeric"))
}

#[test]
fn shipped_campaign_record_holds_the_line() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    let json = fs::read_to_string(&path).expect("shipped BENCH_campaign.json");

    assert!(
        field(&json, "campaign_plans") >= 1_000_000.0,
        "shipped campaign must cover at least one million plans per approach"
    );
    assert_eq!(
        field(&json, "refutations"),
        0.0,
        "shipped campaign record contains bound exceedances"
    );

    let pps = field(&json, "campaign_plans_per_sec");
    assert!(
        pps >= MIN_PLANS_PER_SEC,
        "streamed throughput regressed: {pps:.0} sims/s (floor {MIN_PLANS_PER_SEC:.0})"
    );

    let speedup = field(&json, "speedup");
    assert!(
        speedup >= MIN_SPEEDUP,
        "workspace-reuse speedup regressed: {speedup:.2}x (floor {MIN_SPEEDUP:.1}x)"
    );

    // Reuse accounting: with one worker shard chain per section, all but
    // a handful of runs must have reused warm buffers.
    let sims = field(&json, "campaign_sims");
    let reused = field(&json, "campaign_ws_reused");
    assert!(
        reused >= sims * 0.99,
        "only {reused:.0} of {sims:.0} sims reused a warm workspace"
    );
}

#[test]
fn field_parser_reads_the_hand_rolled_shape() {
    let sample =
        "{\n  \"bin\": \"campaign\",\n  \"campaign_plans\": 1000000,\n  \"speedup\": 2.18,\n}";
    assert_eq!(field(sample, "campaign_plans"), 1_000_000.0);
    assert_eq!(field(sample, "speedup"), 2.18);
}
