//! Differential golden test for the facade refactor seam.
//!
//! The pre-refactor sweep path evaluated each task set with hardcoded
//! direct calls — `analyze_task_set(..).map(..).unwrap_or(false)`,
//! `WpAnalysis::default().is_schedulable(..)`, the two `NpsAnalysis`
//! variants — and accumulated `[bool; 4]` flags. This test re-implements
//! that legacy path verbatim (including its fold-failures-into-false
//! behavior) and asserts the registry-driven sweep produces byte-identical
//! CSV rows for the same seeds, on a small fig2 inset-A slice.

use pmcs_analysis::{AnalysisConfig, Registry};
use pmcs_baselines::{NpsAnalysis, WpAnalysis};
use pmcs_bench::{csv_string, fig2_inset, sweep_with, Fig2Inset, SweepPoint, SweepRow};
use pmcs_core::{analyze_task_set, CachedEngine, DelayEngine, ExactEngine};
use pmcs_workload::{derive_seed, TaskSetGenerator};

/// The pre-refactor `evaluate_set`, reproduced exactly — note the
/// `unwrap_or(false)` that motivated the failure-accounting satellite.
fn legacy_evaluate_set(set: &pmcs_model::TaskSet, engine: &impl DelayEngine) -> [bool; 4] {
    let proposed = analyze_task_set(set, engine)
        .map(|r| r.schedulable())
        .unwrap_or(false);
    let wp = WpAnalysis::default().is_schedulable(set);
    let nps = NpsAnalysis::with_carry().is_schedulable(set);
    let nps_classic = NpsAnalysis::default().is_schedulable(set);
    [proposed, wp, nps, nps_classic]
}

/// The pre-refactor single-threaded sweep loop: one cached engine reused
/// across all sets, win counts per point, ratios over `sets_per_point`.
fn legacy_sweep(points: &[SweepPoint], sets_per_point: usize, base_seed: u64) -> Vec<SweepRow> {
    let engine = CachedEngine::new(ExactEngine::default());
    points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let mut wins = [0usize; 4];
            for si in 0..sets_per_point {
                let seed = derive_seed(base_seed, pi as u64, si as u64);
                let set = TaskSetGenerator::new(point.config.clone(), seed).generate();
                for (w, f) in wins.iter_mut().zip(legacy_evaluate_set(&set, &engine)) {
                    *w += usize::from(f);
                }
            }
            SweepRow {
                x: point.x,
                ratios: wins
                    .iter()
                    .map(|&w| w as f64 / sets_per_point.max(1) as f64)
                    .collect(),
                failures: vec![0; 4],
                sets: sets_per_point,
            }
        })
        .collect()
}

#[test]
fn registry_sweep_matches_legacy_evaluate_set_byte_for_byte() {
    // A fig2 inset-A slice, small enough for a debug-build test run.
    let points: Vec<SweepPoint> = fig2_inset(Fig2Inset::A).into_iter().take(4).collect();
    let sets_per_point = 3;
    let seed = 0xDAC2020u64;

    let legacy_rows = legacy_sweep(&points, sets_per_point, seed);
    let outcome = sweep_with(
        &points,
        sets_per_point,
        seed,
        &Registry::standard(),
        &AnalysisConfig::default(),
    );

    assert_eq!(
        csv_string("utilization", &outcome.labels, &legacy_rows),
        csv_string("utilization", &outcome.labels, &outcome.rows),
        "registry sweep diverged from the pre-refactor evaluate_set path"
    );
    // No analysis failed here, so the two paths agree even on the rows
    // themselves, not just the rendered ratios.
    assert_eq!(outcome.total_failures(), 0);
    assert_eq!(legacy_rows, outcome.rows);
}

#[test]
fn registry_sweep_matches_legacy_on_a_parameter_sweep() {
    // Same check on the γ sweep (inset E), which varies a different knob.
    let points: Vec<SweepPoint> = fig2_inset(Fig2Inset::E).into_iter().take(3).collect();
    let legacy_rows = legacy_sweep(&points, 2, 7);
    let outcome = sweep_with(
        &points,
        2,
        7,
        &Registry::standard(),
        &AnalysisConfig::default(),
    );
    assert_eq!(legacy_rows, outcome.rows);
}
