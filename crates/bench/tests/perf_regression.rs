//! Perf-regression guard over the shipped `BENCH_runtime_table.json`:
//! every per-configuration point — including the n ≥ 8 rows that used to
//! hit the combinatorial wall — must stay under a wall-clock budget.
//!
//! The record is regenerated on a 1-CPU container with `--jobs 1`, so
//! `points[].secs` are uncontended compute seconds; a point drifting past
//! the budget means the engine lost its n ≥ 8 scaling (gate, pruning, or
//! per-config schedule regressed).

use std::fs;
use std::path::Path;

/// Hard ceiling, in seconds, for any single runtime-table point.
const POINT_BUDGET_SECS: f64 = 60.0;

/// Pulls every `"secs": <num>` out of the `points` array of the
/// hand-rolled perf JSON (stable shape: one `{"label": …, "secs": …}`
/// object per line).
fn point_secs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_points = false;
    for line in json.lines() {
        if line.contains("\"points\"") {
            in_points = true;
            continue;
        }
        if !in_points {
            continue;
        }
        let Some(label_at) = line.find("\"label\": \"") else {
            continue;
        };
        let label = &line[label_at + 10..];
        let label = &label[..label.find('"').expect("closing label quote")];
        let secs_at = line.find("\"secs\": ").expect("secs field on point line");
        let secs = line[secs_at + 8..]
            .trim_end_matches(['}', ',', ' '])
            .parse::<f64>()
            .expect("numeric secs");
        out.push((label.to_string(), secs));
    }
    out
}

#[test]
fn runtime_table_points_stay_under_budget() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime_table.json");
    let json = fs::read_to_string(&path).expect("shipped BENCH_runtime_table.json");
    let points = point_secs(&json);
    assert!(
        points.len() >= 15,
        "expected the full n ∈ {{4,6,8,10,12}} × U sweep, found {} points",
        points.len()
    );
    for (label, secs) in &points {
        assert!(
            *secs < POINT_BUDGET_SECS,
            "runtime_table point {label} took {secs:.1}s (budget {POINT_BUDGET_SECS}s)"
        );
    }
    // The sweep must actually reach the paper's wall sizes.
    for n in [8, 10, 12] {
        assert!(
            points
                .iter()
                .any(|(l, _)| l.starts_with(&format!("n={n},"))),
            "no n={n} rows in the shipped runtime table"
        );
    }
}

#[test]
fn parser_reads_the_hand_rolled_shape() {
    let sample = r#"{
  "bin": "runtime_table",
  "points": [
    {"label": "n=4,U=0.20", "secs": 0.25},
    {"label": "n=12,U=0.50", "secs": 12.5}
  ]
}"#;
    let points = point_secs(sample);
    assert_eq!(points.len(), 2);
    assert_eq!(points[0], ("n=4,U=0.20".to_string(), 0.25));
    assert_eq!(points[1], ("n=12,U=0.50".to_string(), 12.5));
}
