//! Determinism contract of the parallel sweep executor: the rows (and the
//! CSV rendered from them) must be byte-identical for every thread count
//! and regardless of whether the delay-bound cache is enabled.
//!
//! Per-item seeds come from `pmcs_workload::derive_seed(base, point, set)`,
//! so a task set's content depends only on its coordinates — never on
//! which worker thread picked the item off the queue.

use pmcs_analysis::{AnalysisConfig, Registry};
use pmcs_bench::{csv_string, sweep_with, SweepPoint};
use pmcs_workload::TaskSetConfig;

fn points() -> Vec<SweepPoint> {
    [0.2f64, 0.4, 0.6]
        .iter()
        .map(|&u| SweepPoint {
            x: u,
            config: TaskSetConfig {
                n: 5,
                utilization: u,
                gamma: 0.3,
                beta: 0.4,
                ..TaskSetConfig::default()
            },
        })
        .collect()
}

#[test]
fn sweep_rows_are_identical_for_any_thread_count() {
    let points = points();
    let registry = Registry::standard();
    let reference = sweep_with(&points, 8, 7, &registry, &AnalysisConfig::default());
    for jobs in [2usize, 8] {
        let other = sweep_with(
            &points,
            8,
            7,
            &registry,
            &AnalysisConfig::default().with_jobs(jobs),
        );
        assert_eq!(
            reference.rows, other.rows,
            "rows diverged between 1 and {jobs} worker threads"
        );
    }
}

#[test]
fn sweep_rows_are_identical_with_and_without_cache() {
    let points = points();
    let registry = Registry::standard();
    let cached = sweep_with(
        &points,
        8,
        7,
        &registry,
        &AnalysisConfig::default().with_jobs(2),
    );
    let plain = sweep_with(
        &points,
        8,
        7,
        &registry,
        &AnalysisConfig::default().with_jobs(2).with_cache(false),
    );
    assert_eq!(cached.rows, plain.rows, "caching changed the sweep rows");
    assert!(
        cached.cache.hits > 0,
        "the sweep should actually exercise the delay cache"
    );
}

#[test]
fn csv_output_is_byte_identical_across_configurations() {
    let points = points();
    let registry = Registry::standard();
    let reference_outcome = sweep_with(
        &points,
        6,
        11,
        &registry,
        &AnalysisConfig::default().with_cache(false),
    );
    let reference = csv_string("U", &reference_outcome.labels, &reference_outcome.rows);
    for (jobs, cache) in [(1usize, true), (2, true), (8, false), (8, true)] {
        let outcome = sweep_with(
            &points,
            6,
            11,
            &registry,
            &AnalysisConfig::default().with_jobs(jobs).with_cache(cache),
        );
        assert_eq!(
            reference,
            csv_string("U", &outcome.labels, &outcome.rows),
            "CSV bytes diverged at jobs={jobs}, cache={cache}"
        );
    }
}
