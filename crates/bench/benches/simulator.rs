//! Criterion benchmarks for the discrete-event simulator: events per
//! second under each policy on a second-long horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmcs_model::Time;
use pmcs_sim::{simulate, Policy, ReleasePlan};
use pmcs_workload::{random_sporadic_plan, TaskSetConfig, TaskSetGenerator};

fn bench_policies(c: &mut Criterion) {
    let cfg = TaskSetConfig {
        n: 6,
        utilization: 0.4,
        gamma: 0.3,
        beta: 0.8,
        ..TaskSetConfig::default()
    };
    let set = TaskSetGenerator::new(cfg, 3).generate();
    let horizon = Time::from_secs(1);
    let plan = random_sporadic_plan(&set, horizon, 0.2, 9);
    let mut group = c.benchmark_group("simulate_1s");
    for (policy, name) in [
        (Policy::Proposed, "proposed"),
        (Policy::WaslyPellizzoni, "wp"),
        (Policy::Nps, "nps"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| simulate(&set, &plan, p, horizon));
        });
    }
    group.finish();
}

fn bench_periodic_plan(c: &mut Criterion) {
    let cfg = TaskSetConfig {
        n: 8,
        utilization: 0.5,
        gamma: 0.3,
        beta: 1.0,
        ..TaskSetConfig::default()
    };
    let set = TaskSetGenerator::new(cfg, 5).generate();
    let horizon = Time::from_secs(1);
    c.bench_function("periodic_plan_build", |b| {
        b.iter(|| ReleasePlan::periodic(&set, horizon));
    });
}

criterion_group!(benches, bench_policies, bench_periodic_plan);
criterion_main!(benches);
