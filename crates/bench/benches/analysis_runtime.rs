//! Criterion benchmarks for the schedulability analyses — the runtime
//! measurements the paper reports in prose ("hundreds of seconds …
//! about one hour" per task set with CPLEX; our specialized engine is
//! orders of magnitude faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmcs_baselines::{NpsAnalysis, WpAnalysis};
use pmcs_core::{analyze_task_set, ExactEngine};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

fn bench_greedy_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_ls_analysis");
    group.sample_size(10);
    for n in [3usize, 4, 6] {
        let cfg = TaskSetConfig {
            n,
            utilization: 0.3,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        };
        let mut generator = TaskSetGenerator::new(cfg, 7);
        let set = generator.generate();
        let engine = ExactEngine::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| analyze_task_set(set, &engine).unwrap().schedulable());
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let cfg = TaskSetConfig {
        n: 6,
        utilization: 0.4,
        gamma: 0.3,
        beta: 0.4,
        ..TaskSetConfig::default()
    };
    let set = TaskSetGenerator::new(cfg, 11).generate();
    c.bench_function("wp_closed_form", |b| {
        b.iter(|| WpAnalysis::default().is_schedulable(&set));
    });
    c.bench_function("nps_classical", |b| {
        b.iter(|| NpsAnalysis::default().is_schedulable(&set));
    });
    c.bench_function("nps_carry", |b| {
        b.iter(|| NpsAnalysis::with_carry().is_schedulable(&set));
    });
}

criterion_group!(benches, bench_greedy_analysis, bench_baselines);
criterion_main!(benches);
