//! Criterion benchmarks for the from-scratch MILP substrate: LP solves and
//! branch & bound on schedulability formulations of growing size, plus the
//! formulation-vs-specialized-engine comparison that justifies the
//! engine's existence (DESIGN.md §2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmcs_core::window::{test_task, WindowCase, WindowModel};
use pmcs_core::{DelayEngine, ExactEngine, MilpEngine};
use pmcs_milp::{Cmp, LinExpr, Problem, Simplex, Solver};
use pmcs_model::{TaskId, TaskSet, Time};

fn window(n_tasks: u32, t: i64) -> WindowModel {
    let tasks: Vec<_> = (0..n_tasks)
        .map(|i| {
            test_task(
                i,
                10 + 7 * i as i64,
                2 + i as i64,
                2 + (i as i64 + 1) % 3,
                80 + 30 * i as i64,
                i,
                i % 2 == 0,
            )
        })
        .collect();
    let set = TaskSet::new(tasks).unwrap();
    let low = TaskId(n_tasks - 1);
    WindowModel::build(&set, low, WindowCase::Nls, Time::from_ticks(t)).unwrap()
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp");
    for size in [10usize, 30, 60] {
        // Dense random-ish LP: maximize Σ x_i, chained capacity rows.
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..size)
            .map(|i| p.continuous(format!("x{i}"), 0.0, 10.0))
            .collect();
        for w in vars.windows(3) {
            let e = LinExpr::from(w[0]) + w[1] + w[2];
            p.constrain(e, Cmp::Le, 12.0);
        }
        let mut obj = LinExpr::zero();
        for v in &vars {
            obj += LinExpr::from(*v);
        }
        p.set_objective(obj);
        group.bench_with_input(BenchmarkId::from_parameter(size), &p, |b, p| {
            b.iter(|| Simplex::new().solve(p).unwrap());
        });
    }
    group.finish();
}

fn bench_bnb_knapsack(c: &mut Criterion) {
    let mut p = Problem::maximize();
    let weights = [5.0, 7.0, 4.0, 3.0, 9.0, 6.0, 5.5, 4.5, 8.0, 2.0];
    let mut cap = LinExpr::zero();
    let mut obj = LinExpr::zero();
    for (i, w) in weights.iter().enumerate() {
        let v = p.binary(format!("b{i}"));
        cap += v * *w;
        obj += v * (*w + (i as f64) * 0.3);
    }
    p.constrain(cap, Cmp::Le, 23.0);
    p.set_objective(obj);
    c.bench_function("bnb_knapsack_10", |b| {
        b.iter(|| Solver::new().solve(&p).unwrap());
    });
}

fn bench_formulation_vs_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_delay");
    group.sample_size(10);
    for n in [2u32, 3] {
        let w = window(n, 60);
        group.bench_with_input(BenchmarkId::new("milp", n), &w, |b, w| {
            b.iter(|| MilpEngine::default().max_total_delay(w).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &w, |b, w| {
            b.iter(|| ExactEngine::default().max_total_delay(w).unwrap());
        });
    }
    // Larger windows: specialized engine only (the MILP would take minutes,
    // as CPLEX did for the authors).
    for n in [5u32, 7] {
        let w = window(n, 200);
        group.bench_with_input(BenchmarkId::new("exact", n), &w, |b, w| {
            b.iter(|| ExactEngine::default().max_total_delay(w).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_bnb_knapsack,
    bench_formulation_vs_engine
);
criterion_main!(benches);
