//! One Criterion benchmark per figure-regeneration unit: the cost of one
//! sweep point of each Figure 2 inset (3-set micro version — the real
//! figures use the `fig2` binary) and of the Figure 1 simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmcs_bench::{fig1_task_set, fig2_inset, sweep, Fig2Inset};
use pmcs_model::Time;
use pmcs_sim::{simulate, Policy, ReleasePlan};

fn bench_fig2_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_point");
    group.sample_size(10);
    for inset in [
        Fig2Inset::A,
        Fig2Inset::B,
        Fig2Inset::C,
        Fig2Inset::E,
        Fig2Inset::F,
    ] {
        let points = fig2_inset(inset);
        // A representative mid-sweep point.
        let mid = points[points.len() / 2].clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(inset.letter()),
            &mid,
            |b, point| {
                b.iter(|| sweep(std::slice::from_ref(point), 3, 1));
            },
        );
    }
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let (set, releases) = fig1_task_set();
    let plan = ReleasePlan::from_pairs(releases);
    for (policy, name) in [
        (Policy::Proposed, "fig1_proposed"),
        (Policy::WaslyPellizzoni, "fig1_wp"),
        (Policy::Nps, "fig1_nps"),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| simulate(&set, &plan, policy, Time::from_ticks(100)));
        });
    }
}

criterion_group!(benches, bench_fig2_points, bench_fig1);
criterion_main!(benches);
