//! Concrete figure configurations.
//!
//! The paper does not print the per-inset `(n, γ, β)` values of Figure 2;
//! the values here are chosen to reproduce the reported *shapes* (see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`). The utilization grid focuses on
//! the region where the schedulability ratios actually move — our
//! generator produces somewhat harsher task sets than the original
//! evaluation appears to have used, so the cliffs sit at lower `U`.

use pmcs_core::window::test_task;
use pmcs_model::{TaskSet, Time};
use pmcs_workload::TaskSetConfig;

use crate::experiment::SweepPoint;

/// One inset of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig2Inset {
    /// Utilization sweep, n=6, γ=0.1, β=0.4.
    A,
    /// Utilization sweep, n=6, γ=0.3, β=0.4.
    B,
    /// Utilization sweep, n=6, γ=0.5, β=0.4.
    C,
    /// Utilization sweep, n=8, γ=0.3, β=0.4.
    D,
    /// γ sweep at n=6, U=0.35, β=0.4.
    E,
    /// β sweep at n=6, U=0.35, γ=0.3.
    F,
}

impl Fig2Inset {
    /// Parses an inset letter.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "a" => Some(Fig2Inset::A),
            "b" => Some(Fig2Inset::B),
            "c" => Some(Fig2Inset::C),
            "d" => Some(Fig2Inset::D),
            "e" => Some(Fig2Inset::E),
            "f" => Some(Fig2Inset::F),
            _ => None,
        }
    }

    /// All insets in order.
    pub const ALL: [Fig2Inset; 6] = [
        Fig2Inset::A,
        Fig2Inset::B,
        Fig2Inset::C,
        Fig2Inset::D,
        Fig2Inset::E,
        Fig2Inset::F,
    ];

    /// Inset letter.
    pub fn letter(self) -> char {
        match self {
            Fig2Inset::A => 'a',
            Fig2Inset::B => 'b',
            Fig2Inset::C => 'c',
            Fig2Inset::D => 'd',
            Fig2Inset::E => 'e',
            Fig2Inset::F => 'f',
        }
    }

    /// Human-readable description of the swept parameter and fixed values.
    pub fn description(self) -> String {
        match self {
            Fig2Inset::A => "schedulability vs U (n=6, γ=0.1, β=0.4)".into(),
            Fig2Inset::B => "schedulability vs U (n=6, γ=0.3, β=0.4)".into(),
            Fig2Inset::C => "schedulability vs U (n=6, γ=0.5, β=0.4)".into(),
            Fig2Inset::D => "schedulability vs U (n=8, γ=0.3, β=0.4)".into(),
            Fig2Inset::E => "schedulability vs γ (n=6, U=0.35, β=0.4)".into(),
            Fig2Inset::F => "schedulability vs β (n=6, U=0.35, γ=0.3)".into(),
        }
    }

    /// The swept-axis label.
    pub fn x_label(self) -> &'static str {
        match self {
            Fig2Inset::E => "gamma",
            Fig2Inset::F => "beta",
            _ => "utilization",
        }
    }
}

/// Builds the sweep points of one Figure 2 inset.
pub fn fig2_inset(inset: Fig2Inset) -> Vec<SweepPoint> {
    let base = TaskSetConfig::default();
    let u_grid: Vec<f64> = (1..=12).map(|i| i as f64 * 0.05).collect(); // 0.05 … 0.60
    match inset {
        Fig2Inset::A | Fig2Inset::B | Fig2Inset::C | Fig2Inset::D => {
            let (n, gamma) = match inset {
                Fig2Inset::A => (6, 0.1),
                Fig2Inset::B => (6, 0.3),
                Fig2Inset::C => (6, 0.5),
                Fig2Inset::D => (8, 0.3),
                _ => unreachable!(),
            };
            u_grid
                .iter()
                .map(|&u| SweepPoint {
                    x: u,
                    config: TaskSetConfig {
                        n,
                        utilization: u,
                        gamma,
                        beta: 0.4,
                        ..base.clone()
                    },
                })
                .collect()
        }
        Fig2Inset::E => (1..=5)
            .map(|i| {
                let gamma = i as f64 * 0.1;
                SweepPoint {
                    x: gamma,
                    config: TaskSetConfig {
                        n: 6,
                        utilization: 0.35,
                        gamma,
                        beta: 0.4,
                        ..base.clone()
                    },
                }
            })
            .collect(),
        Fig2Inset::F => (0..=5)
            .map(|i| {
                let beta = i as f64 * 0.2;
                SweepPoint {
                    x: beta,
                    config: TaskSetConfig {
                        n: 6,
                        utilization: 0.35,
                        gamma: 0.3,
                        beta,
                        ..base.clone()
                    },
                }
            })
            .collect(),
    }
}

/// The Figure 1 scenario: a task τ_i (here `τ0`, latency-sensitive in the
/// proposed run) together with two pending lower-priority tasks and a
/// previously-running lowest-priority task τ_p whose copy-out is pending
/// when the window of interest begins.
///
/// Releases (see the `fig1` binary): τ_p at 0, the two blockers at 1, and
/// τ_i one time unit after the blockers start executing — reproducing the
/// structure of Figure 1 where τ_i arrives just after the interval in
/// which its blocker was selected.
pub fn fig1_task_set() -> (TaskSet, Vec<(pmcs_model::TaskId, Vec<Time>)>) {
    use pmcs_model::TaskId;
    let tasks = vec![
        // τ0 = τ_i: l=2, C=2, u=2, D=10.
        {
            let mut t = test_task(0, 2, 2, 2, 1_000, 0, true);
            t = pmcs_model::Task::builder(t.id())
                .name("tau_i")
                .exec(Time::from_ticks(2))
                .copy_in(Time::from_ticks(2))
                .copy_out(Time::from_ticks(2))
                .sporadic(Time::from_ticks(1_000))
                .deadline(Time::from_ticks(10))
                .priority(pmcs_model::Priority(0))
                .sensitivity(pmcs_model::Sensitivity::Ls)
                .build()
                .unwrap();
            t
        },
        test_task(1, 3, 1, 1, 1_000, 1, false), // τ_lp1
        test_task(2, 4, 3, 2, 1_000, 2, false), // τ_lp2
        test_task(3, 2, 1, 2, 1_000, 3, false), // τ_p
    ];
    let set = TaskSet::new(tasks).unwrap();
    let releases = vec![
        (TaskId(0), vec![Time::from_ticks(4)]),
        (TaskId(1), vec![Time::from_ticks(1)]),
        (TaskId(2), vec![Time::from_ticks(1)]),
        (TaskId(3), vec![Time::ZERO]),
    ];
    (set, releases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_insets_parse() {
        for inset in Fig2Inset::ALL {
            assert_eq!(Fig2Inset::parse(&inset.letter().to_string()), Some(inset));
        }
        assert_eq!(Fig2Inset::parse("z"), None);
        assert_eq!(Fig2Inset::parse(" B "), Some(Fig2Inset::B));
    }

    #[test]
    fn utilization_insets_have_twelve_points() {
        for inset in [Fig2Inset::A, Fig2Inset::B, Fig2Inset::C, Fig2Inset::D] {
            let pts = fig2_inset(inset);
            assert_eq!(pts.len(), 12);
            assert!((pts[0].x - 0.05).abs() < 1e-12);
            assert!((pts[11].x - 0.60).abs() < 1e-12);
        }
    }

    #[test]
    fn parameter_sweeps_vary_the_right_knob() {
        let gammas = fig2_inset(Fig2Inset::E);
        assert!(gammas
            .windows(2)
            .all(|w| w[0].config.gamma < w[1].config.gamma));
        let betas = fig2_inset(Fig2Inset::F);
        assert!(betas
            .windows(2)
            .all(|w| w[0].config.beta < w[1].config.beta));
        assert_eq!(Fig2Inset::E.x_label(), "gamma");
        assert_eq!(Fig2Inset::F.x_label(), "beta");
    }

    #[test]
    fn fig1_set_is_valid() {
        let (set, releases) = fig1_task_set();
        assert_eq!(set.len(), 4);
        assert_eq!(releases.len(), 4);
        assert!(set.get(pmcs_model::TaskId(0)).unwrap().is_ls());
    }

    #[test]
    fn descriptions_mention_parameters() {
        for inset in Fig2Inset::ALL {
            assert!(fig2_inset(inset).len() >= 5);
            assert!(inset.description().contains("n="));
        }
    }
}
