//! A minimal work-queue thread pool on `std::thread::scope`.
//!
//! The container has no network access, so the usual data-parallelism
//! crates are off the table; the sweeps only need one primitive anyway:
//! *map an item list across `N` workers, preserving item order in the
//! output*. Work is distributed dynamically through a shared atomic
//! cursor, so a straggler item (an adversarial task set can cost 100× the
//! median) never idles the other workers, and results land in a
//! pre-sized slot vector so the output order is independent of scheduling.
//!
//! Determinism contract: the closure receives the item *index* and must
//! derive any randomness from it (see
//! [`derive_seed`](pmcs_workload::derive_seed)), never from worker
//! identity or call order. Under that contract the output is identical
//! for every thread count, which `tests/parallel_determinism.rs` checks
//! end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Maps `f` over `items` on `jobs` worker threads; `results[i]`
/// corresponds to `items[i]` regardless of which worker processed it.
///
/// `f` is called with `(item_index, &item)`.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, jobs, || (), |(), i, t| f(i, t)).0
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (e.g. to build an engine with its own cache and scratch)
/// and the final states are returned alongside the results, in no
/// particular order (e.g. to merge per-worker cache statistics).
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], jobs: usize, init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let states: Mutex<Vec<S>> = Mutex::new(Vec::with_capacity(jobs));
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&mut state, i, &items[i]);
                    slots.lock().expect("no poisoned worker")[i] = Some(r);
                }
                states.lock().expect("no poisoned worker").push(state);
            });
        }
    });
    let results = slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect();
    (results, states.into_inner().expect("workers joined"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 8] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = parallel_map(&[1, 2], 16, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn worker_states_are_returned() {
        let items: Vec<usize> = (0..50).collect();
        let (out, states) = parallel_map_with(
            &items,
            4,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(out, items);
        assert!(states.len() <= 4 && !states.is_empty());
        // Every item was processed by exactly one worker.
        assert_eq!(states.iter().sum::<usize>(), items.len());
    }
}
