//! Multi-core schedulability sweep: cores × regulation budgets ×
//! partitioning heuristics.
//!
//! For each budget level (a fraction of the fair share `P / cores`) and
//! each generated workload, the sweep partitions the tasks onto the
//! regulated platform with every bin-packing heuristic
//! ([`pmcs_core::partition_regulated`], contention-aware admission) and
//! records the schedulability ratio per heuristic — the
//! bandwidth-regulation analogue of the paper's Figure 2 utilization
//! sweeps. Optionally every schedulable first-fit partition is
//! multi-core cross-validated ([`cross_validate_platform`]): per-core
//! adversarial plans plus the coupled bus-arbiter replay, any refutation
//! reported upward.
//!
//! The sweep runs on the shared worker pool ([`parallel_map_with`]) with
//! one shared delay cache; every per-item seed derives from
//! `(base seed, point, set)`, so results are byte-identical for any
//! `--jobs` value.

use std::sync::Arc;
use std::time::Instant;

use pmcs_analysis::{cross_validate_platform, AnalysisConfig, AnalysisContext, SimCounters};
use pmcs_core::{partition_regulated, CacheStats, Heuristic, SharedDelayCache, SolverStats};
use pmcs_model::{BusModel, Time};
use pmcs_workload::{derive_seed, TaskSetConfig, TaskSetGenerator};

use crate::parallel::parallel_map_with;

/// Seed-stream tag separating cross-validation seeds from generation
/// seeds (same idiom as the single-core sweeps).
const CV_SEED_STREAM: u64 = 0xb05_a4b1;

/// Budget levels swept, as fractions of the fair share `P / cores`
/// (numerator, denominator), most generous first.
pub const BUDGET_FRACTIONS: &[(i64, i64)] = &[(1, 1), (3, 4), (1, 2), (3, 8), (1, 4)];

/// Configuration of one multicore sweep.
#[derive(Debug, Clone)]
pub struct MulticoreConfig {
    /// Number of cores sharing the regulated bus.
    pub cores: usize,
    /// Workloads generated per budget level.
    pub sets: usize,
    /// Base seed; every `(point, set)` seed derives from it.
    pub seed: u64,
    /// Replenishment period `P` of the bus.
    pub period: Time,
    /// Per-core utilization of the generated workloads (total is
    /// `cores ×` this).
    pub util_per_core: f64,
    /// Memory-intensity factor γ of the generated workloads.
    pub gamma: f64,
    /// Adversarial plans per schedulable first-fit partition
    /// (`0` disables cross-validation).
    pub plans: usize,
    /// Engine-stack configuration (jobs, cache, LP backend, …).
    pub analysis: AnalysisConfig,
}

impl MulticoreConfig {
    /// Defaults scaled to the core count. Under fair-share regulation a
    /// core holds `1/cores` of the bus, so sustained memory demand is
    /// served roughly `cores ×` slower; scaling the generated memory
    /// intensity as `γ = 0.3 / cores` keeps the sweep in the regime
    /// where generous budgets schedule and starved ones do not (instead
    /// of saturating at all-zero or all-one ratios).
    pub fn for_cores(cores: usize) -> Self {
        let cores = cores.max(1);
        MulticoreConfig {
            cores,
            sets: 10,
            seed: 42,
            period: Time::from_ticks(200),
            util_per_core: 0.25,
            gamma: 0.3 / cores as f64,
            plans: 2,
            analysis: AnalysisConfig::default(),
        }
    }
}

impl Default for MulticoreConfig {
    fn default() -> Self {
        MulticoreConfig::for_cores(4)
    }
}

/// One budget level of the sweep result.
#[derive(Debug, Clone)]
pub struct MulticoreRow {
    /// Budget as a fraction of the fair share `P / cores`.
    pub fraction: f64,
    /// The resulting per-core budget `Q` in ticks.
    pub budget: Time,
    /// Schedulability ratio per heuristic (parallel to
    /// [`MulticoreOutcome::labels`]).
    pub ratios: Vec<f64>,
    /// Analysis failures (engine errors) at this level.
    pub failures: u64,
    /// Workloads evaluated.
    pub sets: usize,
}

/// Result of [`sweep_multicore`].
#[derive(Debug, Clone)]
pub struct MulticoreOutcome {
    /// Heuristic names, in ratio order.
    pub labels: Vec<String>,
    /// One row per budget level, most generous first.
    pub rows: Vec<MulticoreRow>,
    /// Per-level compute seconds.
    pub point_secs: Vec<(String, f64)>,
    /// Merged delay-cache statistics of all workers.
    pub cache: CacheStats,
    /// Merged solver-effort statistics of all workers.
    pub solver: SolverStats,
    /// Merged cross-validation counters (per-core and bus layers).
    pub sim: SimCounters,
    /// DMA transfers replayed through the shared-bus arbiter.
    pub transfers: u64,
    /// Refutation lines (`point=.. set=.. REFUTATION ..`), in
    /// deterministic `(point, set)` order. Must be empty.
    pub refutations: Vec<String>,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
}

/// Per-item result collected by the workers.
struct ItemOutcome {
    point: usize,
    schedulable: Vec<bool>,
    failed: bool,
    secs: f64,
    sim: SimCounters,
    transfers: u64,
    refutations: Vec<String>,
}

/// Runs the cores × budgets × heuristics sweep described in the module
/// docs and returns the aggregate outcome. Deterministic for a given
/// config, independent of `analysis.jobs`.
pub fn sweep_multicore(cfg: &MulticoreConfig) -> MulticoreOutcome {
    let started = Instant::now();
    let labels: Vec<String> = Heuristic::ALL.iter().map(ToString::to_string).collect();
    let share = (cfg.period.as_ticks() / cfg.cores as i64).max(1);
    let budgets: Vec<Time> = BUDGET_FRACTIONS
        .iter()
        .map(|&(num, den)| Time::from_ticks((share * num / den).max(1)))
        .collect();
    let workload = TaskSetConfig {
        n: 2 * cfg.cores,
        utilization: cfg.util_per_core * cfg.cores as f64,
        gamma: cfg.gamma,
        ..TaskSetConfig::default()
    };

    let items: Vec<(usize, usize)> = (0..budgets.len())
        .flat_map(|pi| (0..cfg.sets).map(move |si| (pi, si)))
        .collect();
    let shared_cache = Arc::new(SharedDelayCache::default());
    let analysis = cfg.analysis.clone();
    let (outcomes, contexts) = parallel_map_with(
        &items,
        cfg.analysis.jobs,
        || AnalysisContext::with_shared_cache(&analysis, Arc::clone(&shared_cache)),
        |ctx, _, &(pi, si)| {
            let item_started = Instant::now();
            let seed = derive_seed(cfg.seed, pi as u64, si as u64);
            let set = TaskSetGenerator::new(workload.clone(), seed).generate();
            let tasks = set.tasks().to_vec();
            let bus = BusModel::uniform(cfg.period, cfg.cores, budgets[pi])
                .expect("budget levels respect ΣQ ≤ P");
            let mut out = ItemOutcome {
                point: pi,
                schedulable: Vec::with_capacity(Heuristic::ALL.len()),
                failed: false,
                secs: 0.0,
                sim: SimCounters::default(),
                transfers: 0,
                refutations: Vec::new(),
            };
            for h in Heuristic::ALL {
                match partition_regulated(tasks.clone(), cfg.cores, &bus, h, ctx.engine()) {
                    Ok(Ok(p)) => {
                        let sched = p.schedulable();
                        out.schedulable.push(sched);
                        if sched && h == Heuristic::FirstFit && cfg.plans > 0 {
                            let cv_seed = derive_seed(seed, CV_SEED_STREAM, 0);
                            match cross_validate_platform(
                                &p.platform,
                                "proposed",
                                cfg.plans,
                                cv_seed,
                                ctx,
                            ) {
                                Ok(pv) => {
                                    out.sim.merge(&pv.counters());
                                    out.transfers += pv.transfers_checked;
                                    out.refutations.extend(
                                        pv.refutations()
                                            .iter()
                                            .map(|r| format!("point={pi} set={si} {r}")),
                                    );
                                }
                                Err(_) => out.failed = true,
                            }
                        }
                    }
                    Ok(Err(_)) => out.schedulable.push(false),
                    Err(_) => {
                        out.schedulable.push(false);
                        out.failed = true;
                    }
                }
            }
            out.secs = item_started.elapsed().as_secs_f64();
            out
        },
    );

    let mut rows: Vec<MulticoreRow> = budgets
        .iter()
        .zip(BUDGET_FRACTIONS)
        .map(|(&q, &(num, den))| MulticoreRow {
            fraction: num as f64 / den as f64,
            budget: q,
            ratios: vec![0.0; labels.len()],
            failures: 0,
            sets: cfg.sets,
        })
        .collect();
    let mut point_secs = vec![0.0f64; rows.len()];
    let mut sim = SimCounters::default();
    let mut transfers = 0u64;
    let mut refutations = Vec::new();
    for o in &outcomes {
        let row = &mut rows[o.point];
        for (slot, &ok) in row.ratios.iter_mut().zip(&o.schedulable) {
            if ok {
                *slot += 1.0;
            }
        }
        row.failures += u64::from(o.failed);
        point_secs[o.point] += o.secs;
        sim.merge(&o.sim);
        transfers += o.transfers;
        refutations.extend(o.refutations.iter().cloned());
    }
    for row in &mut rows {
        for slot in &mut row.ratios {
            *slot /= cfg.sets.max(1) as f64;
        }
    }

    let mut cache = CacheStats::default();
    let mut solver = SolverStats::default();
    for ctx in &contexts {
        cache.merge(ctx.cache_stats());
        solver.merge(ctx.solver_stats());
    }
    MulticoreOutcome {
        labels,
        rows,
        point_secs: budgets
            .iter()
            .zip(point_secs)
            .map(|(q, s)| (format!("Q={q}"), s))
            .collect(),
        cache,
        solver,
        sim,
        transfers,
        refutations,
        wall_secs: started.elapsed().as_secs_f64(),
        jobs: cfg.analysis.jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MulticoreConfig {
        MulticoreConfig {
            sets: 2,
            seed: 7,
            plans: 1,
            ..MulticoreConfig::for_cores(2)
        }
    }

    #[test]
    fn sweep_is_byte_identical_for_any_thread_count() {
        let serial = sweep_multicore(&tiny());
        let parallel = sweep_multicore(&MulticoreConfig {
            analysis: AnalysisConfig::default().with_jobs(4),
            ..tiny()
        });
        assert_eq!(serial.labels, parallel.labels);
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.ratios, b.ratios);
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.failures, b.failures);
        }
        assert_eq!(serial.refutations, parallel.refutations);
        assert_eq!(serial.transfers, parallel.transfers);
    }

    #[test]
    fn generous_budgets_never_schedule_less_than_starved_ones() {
        let out = sweep_multicore(&MulticoreConfig { plans: 0, ..tiny() });
        // Ratio at the fair share must dominate the 25% level for every
        // heuristic (inflation is monotone in the budget).
        let first = &out.rows.first().expect("rows").ratios;
        let last = &out.rows.last().expect("rows").ratios;
        for (f, l) in first.iter().zip(last) {
            assert!(f >= l, "fair-share ratio {f} below starved ratio {l}");
        }
        assert!(out.refutations.is_empty());
    }
}
