//! Machine-readable performance records (`BENCH_<bin>.json`).
//!
//! Every bench binary drops a small JSON file at the repository root
//! recording wall-clock time, worker count, cache statistics, and
//! per-point timings, so performance changes leave a comparable trail
//! across commits. The format is hand-rolled (the container is offline —
//! no serde): flat object, stable key order, finite numbers only.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pmcs_analysis::SimCounters;
use pmcs_core::{CacheStats, SolverStats};

/// One labeled timing entry (a sweep point, a figure inset, a config row).
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Human-readable label, e.g. `"fig2a"` or `"U=0.25"`.
    pub label: String,
    /// Aggregate compute seconds spent on this point.
    pub secs: f64,
}

/// A performance record destined for `BENCH_<bin>.json`.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Binary name (`fig2`, `fig1`, `ablation`, `runtime_table`).
    pub bin: String,
    /// End-to-end wall-clock seconds of the measured phase.
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Merged delay-cache statistics (zeros when caching is disabled).
    pub cache: CacheStats,
    /// Per-point timings.
    pub points: Vec<PerfPoint>,
    /// Extra key/value pairs; values must already be valid JSON
    /// fragments (use [`PerfRecord::extra_num`] / [`PerfRecord::extra_str`]).
    extras: Vec<(String, String)>,
}

impl PerfRecord {
    /// Starts an empty record for `bin`.
    pub fn new(bin: &str) -> Self {
        PerfRecord {
            bin: bin.to_string(),
            wall_secs: 0.0,
            jobs: 1,
            cache: CacheStats::default(),
            points: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Attaches a numeric field (NaN/∞ are recorded as `null`).
    pub fn extra_num(&mut self, key: &str, value: f64) {
        self.extras.push((key.to_string(), json_num(value)));
    }

    /// Attaches a string field.
    pub fn extra_str(&mut self, key: &str, value: &str) {
        self.extras.push((key.to_string(), json_str(value)));
    }

    /// Attaches one solver-effort record under `prefix` (B&B nodes, LP
    /// solves/pivots, warm-start attempts/hits/rate, presolve
    /// reductions), e.g. `solver_proposed_bb_nodes`.
    pub fn extra_solver(&mut self, prefix: &str, stats: SolverStats) {
        self.extra_num(&format!("{prefix}_bb_nodes"), stats.bb_nodes as f64);
        self.extra_num(&format!("{prefix}_dp_fallbacks"), stats.dp_fallbacks as f64);
        self.extra_num(&format!("{prefix}_lp_solves"), stats.lp_solves as f64);
        self.extra_num(&format!("{prefix}_lp_pivots"), stats.lp_pivots as f64);
        self.extra_num(
            &format!("{prefix}_warm_start_attempts"),
            stats.warm_start_attempts as f64,
        );
        self.extra_num(
            &format!("{prefix}_warm_start_hits"),
            stats.warm_start_hits as f64,
        );
        self.extra_num(&format!("{prefix}_warm_hit_rate"), stats.warm_hit_rate());
        self.extra_num(
            &format!("{prefix}_presolve_vars_fixed"),
            stats.presolve_vars_fixed as f64,
        );
        self.extra_num(
            &format!("{prefix}_presolve_rows_removed"),
            stats.presolve_rows_removed as f64,
        );
    }

    /// Attaches the certificate-pass counters as the four `cert_*` keys
    /// (all zero when certificate emission was off).
    pub fn extra_cert(&mut self, certs: &crate::certs::CertSummary) {
        self.extra_num("cert_emitted", certs.emitted as f64);
        self.extra_num("cert_checked", certs.checked as f64);
        self.extra_num("cert_rejected", certs.rejected as f64);
        self.extra_num("cert_secs", certs.secs);
    }

    /// Attaches the simulation cross-validation counters as the `sim_*`
    /// keys (all zero when cross-validation was off), including the
    /// simulation throughput and the workspace-reuse counter — how many
    /// runs recycled a worker's pooled buffers instead of allocating.
    pub fn extra_sim(&mut self, sim: &SimCounters) {
        self.extra_num("sim_plans_run", sim.plans_run as f64);
        self.extra_num("sim_traces_validated", sim.traces_validated as f64);
        self.extra_num("sim_refutations", sim.refutations as f64);
        self.extra_num("sim_secs", sim.sim_secs);
        self.extra_num("sim_plans_per_sec", sim.plans_per_sec());
        self.extra_num("sim_ws_reused", sim.ws_reused as f64);
    }

    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"bin\": {},", json_str(&self.bin));
        let _ = writeln!(o, "  \"wall_secs\": {},", json_num(self.wall_secs));
        let _ = writeln!(o, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(o, "  \"cache_hits\": {},", self.cache.hits);
        let _ = writeln!(o, "  \"cache_misses\": {},", self.cache.misses);
        let _ = writeln!(
            o,
            "  \"cache_hit_rate\": {},",
            json_num(self.cache.hit_rate())
        );
        // The workers of one run share a single SharedDelayCache, so the
        // merged per-worker counters are the shared-cache view.
        let _ = writeln!(
            o,
            "  \"shared_cache_hit_rate\": {},",
            json_num(self.cache.hit_rate())
        );
        let _ = writeln!(o, "  \"shared_cache_evictions\": {},", self.cache.evictions);
        for (k, v) in &self.extras {
            let _ = writeln!(o, "  {}: {},", json_str(k), v);
        }
        let _ = writeln!(o, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = writeln!(
                o,
                "    {{\"label\": {}, \"secs\": {}}}{comma}",
                json_str(&p.label),
                json_num(p.secs)
            );
        }
        let _ = writeln!(o, "  ]");
        o.push('}');
        o.push('\n');
        o
    }

    /// Writes `BENCH_<bin>.json` at the repository root (falling back to
    /// the current directory when run outside the source tree) and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.bin));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The repository root: two levels above this crate's manifest when that
/// directory still exists (source checkout), else the current directory.
fn repo_root() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if root.is_dir() {
        root
    } else {
        PathBuf::from(".")
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = PerfRecord::new("fig2");
        r.wall_secs = 1.5;
        r.jobs = 4;
        r.cache = CacheStats {
            hits: 30,
            misses: 10,
            evictions: 2,
        };
        r.extra_num("speedup", 3.2);
        r.extra_str("note", "a \"quoted\"\nline");
        r.points.push(PerfPoint {
            label: "fig2a".into(),
            secs: 0.25,
        });
        r.points.push(PerfPoint {
            label: "fig2b".into(),
            secs: 1.25,
        });
        let j = r.to_json();
        assert!(j.contains("\"bin\": \"fig2\""));
        assert!(j.contains("\"wall_secs\": 1.5"));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"cache_hits\": 30"));
        assert!(j.contains("\"cache_hit_rate\": 0.75"));
        assert!(j.contains("\"shared_cache_hit_rate\": 0.75"));
        assert!(j.contains("\"shared_cache_evictions\": 2"));
        assert!(j.contains("\"speedup\": 3.2"));
        assert!(j.contains("\\\"quoted\\\"\\nline"));
        assert!(j.contains("{\"label\": \"fig2a\", \"secs\": 0.25},"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn solver_extras_are_prefixed() {
        let mut r = PerfRecord::new("x");
        r.extra_solver(
            "solver_proposed",
            SolverStats {
                bb_nodes: 7,
                dp_fallbacks: 2,
                warm_start_attempts: 4,
                warm_start_hits: 3,
                ..SolverStats::default()
            },
        );
        let j = r.to_json();
        assert!(j.contains("\"solver_proposed_bb_nodes\": 7"));
        assert!(j.contains("\"solver_proposed_dp_fallbacks\": 2"));
        assert!(j.contains("\"solver_proposed_warm_hit_rate\": 0.75"));
    }

    #[test]
    fn cert_counters_land_under_cert_keys() {
        let mut r = PerfRecord::new("x");
        r.extra_cert(&crate::certs::CertSummary {
            emitted: 5,
            checked: 40,
            rejected: 0,
            secs: 0.5,
            rejections: Vec::new(),
        });
        let j = r.to_json();
        assert!(j.contains("\"cert_emitted\": 5"));
        assert!(j.contains("\"cert_checked\": 40"));
        assert!(j.contains("\"cert_rejected\": 0"));
        assert!(j.contains("\"cert_secs\": 0.5"));
    }

    #[test]
    fn sim_counters_land_under_sim_keys() {
        let mut r = PerfRecord::new("x");
        r.extra_sim(&SimCounters {
            plans_run: 12,
            traces_validated: 9,
            refutations: 1,
            sim_secs: 0.25,
            ws_reused: 11,
        });
        let j = r.to_json();
        assert!(j.contains("\"sim_plans_run\": 12"));
        assert!(j.contains("\"sim_traces_validated\": 9"));
        assert!(j.contains("\"sim_refutations\": 1"));
        assert!(j.contains("\"sim_secs\": 0.25"));
        assert!(j.contains("\"sim_plans_per_sec\": 48"));
        assert!(j.contains("\"sim_ws_reused\": 11"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = PerfRecord::new("x");
        r.extra_num("bad", f64::NAN);
        assert!(r.to_json().contains("\"bad\": null"));
    }

    #[test]
    fn record_writes_to_repo_root() {
        let mut r = PerfRecord::new("perf_selftest");
        r.wall_secs = 0.01;
        let path = r.write().expect("writable repo root");
        let text = fs::read_to_string(&path).expect("file just written");
        assert!(text.contains("\"bin\": \"perf_selftest\""));
        assert!(path.ends_with("BENCH_perf_selftest.json"));
        let _ = fs::remove_file(&path);
    }
}
