//! Schedulability-ratio sweeps (the machinery behind Figure 2).
//!
//! [`sweep_with`] fans the `(point, task set)` grid across a worker pool
//! ([`crate::parallel`]); every item derives its RNG stream from
//! `(base_seed, point_index, set_index)` via
//! [`derive_seed`](pmcs_workload::derive_seed), so the measured ratios —
//! and the CSVs derived from them — are byte-identical for every thread
//! count and cache configuration. Each worker analyzes with its own
//! [`CachedEngine`]`<`[`ExactEngine`]`>`, memoizing delay bounds across
//! fixed-point iterations, greedy rounds, and task sets.

use std::fmt;
use std::time::Instant;

use pmcs_baselines::{NpsAnalysis, WpAnalysis};
use pmcs_core::{analyze_task_set, CacheStats, CachedEngine, DelayEngine, ExactEngine};
use pmcs_workload::{derive_seed, TaskSetConfig, TaskSetGenerator};

use crate::parallel::parallel_map_with;

/// The approaches compared in the paper's evaluation (plus the classical
/// NPS convention for reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The paper's protocol with greedy LS marking, analyzed with the
    /// exact engine.
    Proposed,
    /// Wasly-Pellizzoni \[3\], closed-form interval analysis.
    WaslyPellizzoni,
    /// Non-preemptive scheduling, carry-in convention matching the
    /// paper's analyses.
    Nps,
    /// Non-preemptive scheduling, classical critical-instant analysis
    /// (tighter than the paper's convention; reported for reference).
    NpsClassic,
}

impl Approach {
    /// All approaches, in reporting order.
    pub const ALL: [Approach; 4] = [
        Approach::Proposed,
        Approach::WaslyPellizzoni,
        Approach::Nps,
        Approach::NpsClassic,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Proposed => "proposed",
            Approach::WaslyPellizzoni => "wp",
            Approach::Nps => "nps",
            Approach::NpsClassic => "nps-classic",
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One x-axis point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X value (utilization, γ, or β depending on the figure).
    pub x: f64,
    /// Generator configuration for this point.
    pub config: TaskSetConfig,
}

/// Measured schedulability ratios at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// X value of the point.
    pub x: f64,
    /// Schedulable fraction per approach (ordered as [`Approach::ALL`]).
    pub ratios: [f64; 4],
    /// Task sets evaluated.
    pub sets: usize,
}

impl SweepRow {
    /// Ratio for one approach.
    pub fn ratio(&self, a: Approach) -> f64 {
        let idx = Approach::ALL.iter().position(|&x| x == a).expect("known");
        self.ratios[idx]
    }
}

/// Execution options of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (see [`crate::parallel::resolve_jobs`]).
    pub jobs: usize,
    /// Wrap each worker's engine in a [`CachedEngine`].
    pub cache: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            cache: true,
        }
    }
}

/// A sweep's rows plus the execution telemetry feeding `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Measured ratios, aligned with the input points.
    pub rows: Vec<SweepRow>,
    /// Aggregate compute seconds per point (summed across workers, so
    /// with `jobs > 1` this exceeds the wall-clock share).
    pub point_secs: Vec<f64>,
    /// Delay-cache statistics merged over all workers.
    pub cache: CacheStats,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
}

/// A worker's engine: the exact engine, optionally behind a delay cache.
enum WorkerEngine {
    Cached(CachedEngine<ExactEngine>),
    Plain(ExactEngine),
}

impl WorkerEngine {
    fn new(cache: bool) -> Self {
        if cache {
            WorkerEngine::Cached(CachedEngine::new(ExactEngine::default()))
        } else {
            WorkerEngine::Plain(ExactEngine::default())
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            WorkerEngine::Cached(e) => e.stats(),
            WorkerEngine::Plain(_) => CacheStats::default(),
        }
    }
}

impl DelayEngine for WorkerEngine {
    fn max_total_delay(
        &self,
        w: &pmcs_core::WindowModel,
    ) -> Result<pmcs_core::wcrt::DelayBound, pmcs_core::CoreError> {
        match self {
            WorkerEngine::Cached(e) => e.max_total_delay(w),
            WorkerEngine::Plain(e) => e.max_total_delay(w),
        }
    }
}

impl fmt::Debug for WorkerEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerEngine::Cached(_) => f.write_str("WorkerEngine::Cached"),
            WorkerEngine::Plain(_) => f.write_str("WorkerEngine::Plain"),
        }
    }
}

/// Evaluates one task set under every approach; returns schedulability
/// flags ordered as [`Approach::ALL`].
pub fn evaluate_set(set: &pmcs_model::TaskSet, engine: &impl DelayEngine) -> [bool; 4] {
    let proposed = analyze_task_set(set, engine)
        .map(|r| r.schedulable())
        .unwrap_or(false);
    let wp = WpAnalysis::default().is_schedulable(set);
    let nps = NpsAnalysis::with_carry().is_schedulable(set);
    let nps_classic = NpsAnalysis::default().is_schedulable(set);
    [proposed, wp, nps, nps_classic]
}

/// Runs a sweep: for each point, generates `sets_per_point` task sets
/// (each seeded deterministically from `(base_seed, point, set)`) and
/// measures the schedulability ratio of every approach.
///
/// The rows depend only on `(points, sets_per_point, base_seed)` — never
/// on `opts` (thread count and caching change wall-clock and telemetry,
/// not results).
pub fn sweep_with(
    points: &[SweepPoint],
    sets_per_point: usize,
    base_seed: u64,
    opts: &SweepOptions,
) -> SweepOutcome {
    let items: Vec<(usize, usize)> = (0..points.len())
        .flat_map(|pi| (0..sets_per_point).map(move |si| (pi, si)))
        .collect();
    let started = Instant::now();
    let (evaluated, engines) = parallel_map_with(
        &items,
        opts.jobs,
        || WorkerEngine::new(opts.cache),
        |engine, _, &(pi, si)| {
            let t0 = Instant::now();
            let seed = derive_seed(base_seed, pi as u64, si as u64);
            let set = TaskSetGenerator::new(points[pi].config.clone(), seed).generate();
            let flags = evaluate_set(&set, engine);
            (flags, t0.elapsed().as_secs_f64())
        },
    );
    let wall_secs = started.elapsed().as_secs_f64();

    let mut wins = vec![[0usize; 4]; points.len()];
    let mut point_secs = vec![0.0f64; points.len()];
    for (&(pi, _), (flags, secs)) in items.iter().zip(&evaluated) {
        for (w, &f) in wins[pi].iter_mut().zip(flags) {
            *w += usize::from(f);
        }
        point_secs[pi] += secs;
    }
    let rows = points
        .iter()
        .zip(wins)
        .map(|(point, w)| SweepRow {
            x: point.x,
            ratios: w.map(|w| w as f64 / sets_per_point.max(1) as f64),
            sets: sets_per_point,
        })
        .collect();
    let mut cache = CacheStats::default();
    for e in engines {
        cache.merge(e.stats());
    }
    SweepOutcome {
        rows,
        point_secs,
        cache,
        jobs: opts.jobs,
        wall_secs,
    }
}

/// Single-threaded, cached [`sweep_with`], returning only the rows.
pub fn sweep(points: &[SweepPoint], sets_per_point: usize, base_seed: u64) -> Vec<SweepRow> {
    sweep_with(points, sets_per_point, base_seed, &SweepOptions::default()).rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_set_is_consistent_with_direct_calls() {
        let mut g = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.2,
                ..TaskSetConfig::default()
            },
            7,
        );
        let set = g.generate();
        let flags = evaluate_set(&set, &ExactEngine::default());
        assert_eq!(flags[1], WpAnalysis::default().is_schedulable(&set));
    }

    fn small_points() -> Vec<SweepPoint> {
        [0.1, 0.2]
            .iter()
            .map(|&u| SweepPoint {
                x: u,
                config: TaskSetConfig {
                    n: 3,
                    utilization: u,
                    ..TaskSetConfig::default()
                },
            })
            .collect()
    }

    #[test]
    fn sweep_rows_align_with_points() {
        let rows = sweep(&small_points(), 3, 42);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x, 0.1);
        assert!(rows
            .iter()
            .all(|r| r.ratios.iter().all(|&v| (0.0..=1.0).contains(&v))));
        assert!(rows[0].ratio(Approach::Proposed) >= 0.0);
    }

    #[test]
    fn outcome_telemetry_is_populated() {
        let points = small_points();
        let out = sweep_with(
            &points,
            4,
            42,
            &SweepOptions {
                jobs: 2,
                cache: true,
            },
        );
        assert_eq!(out.rows.len(), points.len());
        assert_eq!(out.point_secs.len(), points.len());
        assert_eq!(out.jobs, 2);
        assert!(out.wall_secs >= 0.0);
        // 4 sets × 2 points: the fixed points alone guarantee lookups.
        assert!(out.cache.hits + out.cache.misses > 0);
    }

    #[test]
    fn caching_does_not_change_rows() {
        let points = small_points();
        let cached = sweep_with(&points, 5, 7, &SweepOptions::default());
        let uncached = sweep_with(
            &points,
            5,
            7,
            &SweepOptions {
                jobs: 1,
                cache: false,
            },
        );
        assert_eq!(cached.rows, uncached.rows);
        assert_eq!(uncached.cache, CacheStats::default());
    }
}
