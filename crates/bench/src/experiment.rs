//! Schedulability-ratio sweeps (the machinery behind Figure 2).

use std::fmt;

use pmcs_baselines::{NpsAnalysis, WpAnalysis};
use pmcs_core::{analyze_task_set, ExactEngine};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

/// The approaches compared in the paper's evaluation (plus the classical
/// NPS convention for reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The paper's protocol with greedy LS marking, analyzed with the
    /// exact engine.
    Proposed,
    /// Wasly-Pellizzoni \[3\], closed-form interval analysis.
    WaslyPellizzoni,
    /// Non-preemptive scheduling, carry-in convention matching the
    /// paper's analyses.
    Nps,
    /// Non-preemptive scheduling, classical critical-instant analysis
    /// (tighter than the paper's convention; reported for reference).
    NpsClassic,
}

impl Approach {
    /// All approaches, in reporting order.
    pub const ALL: [Approach; 4] = [
        Approach::Proposed,
        Approach::WaslyPellizzoni,
        Approach::Nps,
        Approach::NpsClassic,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Proposed => "proposed",
            Approach::WaslyPellizzoni => "wp",
            Approach::Nps => "nps",
            Approach::NpsClassic => "nps-classic",
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One x-axis point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X value (utilization, γ, or β depending on the figure).
    pub x: f64,
    /// Generator configuration for this point.
    pub config: TaskSetConfig,
}

/// Measured schedulability ratios at one sweep point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// X value of the point.
    pub x: f64,
    /// Schedulable fraction per approach (ordered as [`Approach::ALL`]).
    pub ratios: [f64; 4],
    /// Task sets evaluated.
    pub sets: usize,
}

impl SweepRow {
    /// Ratio for one approach.
    pub fn ratio(&self, a: Approach) -> f64 {
        let idx = Approach::ALL.iter().position(|&x| x == a).expect("known");
        self.ratios[idx]
    }
}

/// Evaluates one task set under every approach; returns schedulability
/// flags ordered as [`Approach::ALL`].
pub fn evaluate_set(set: &pmcs_model::TaskSet, engine: &ExactEngine) -> [bool; 4] {
    let proposed = analyze_task_set(set, engine)
        .map(|r| r.schedulable())
        .unwrap_or(false);
    let wp = WpAnalysis::default().is_schedulable(set);
    let nps = NpsAnalysis::with_carry().is_schedulable(set);
    let nps_classic = NpsAnalysis::default().is_schedulable(set);
    [proposed, wp, nps, nps_classic]
}

/// Runs a sweep: for each point, generates `sets_per_point` task sets
/// (seeded deterministically from `base_seed` and the point index) and
/// measures the schedulability ratio of every approach.
pub fn sweep(points: &[SweepPoint], sets_per_point: usize, base_seed: u64) -> Vec<SweepRow> {
    let engine = ExactEngine::default();
    points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let mut generator =
                TaskSetGenerator::new(point.config.clone(), base_seed ^ ((pi as u64) << 32));
            let mut wins = [0usize; 4];
            for _ in 0..sets_per_point {
                let set = generator.generate();
                let flags = evaluate_set(&set, &engine);
                for (w, f) in wins.iter_mut().zip(flags) {
                    *w += usize::from(f);
                }
            }
            SweepRow {
                x: point.x,
                ratios: wins.map(|w| w as f64 / sets_per_point as f64),
                sets: sets_per_point,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_set_is_consistent_with_direct_calls() {
        let mut g = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.2,
                ..TaskSetConfig::default()
            },
            7,
        );
        let set = g.generate();
        let flags = evaluate_set(&set, &ExactEngine::default());
        assert_eq!(flags[1], WpAnalysis::default().is_schedulable(&set));
    }

    #[test]
    fn sweep_rows_align_with_points() {
        let points: Vec<SweepPoint> = [0.1, 0.2]
            .iter()
            .map(|&u| SweepPoint {
                x: u,
                config: TaskSetConfig {
                    n: 3,
                    utilization: u,
                    ..TaskSetConfig::default()
                },
            })
            .collect();
        let rows = sweep(&points, 3, 42);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x, 0.1);
        assert!(rows
            .iter()
            .all(|r| r.ratios.iter().all(|&v| (0.0..=1.0).contains(&v))));
        assert!(rows[0].ratio(Approach::Proposed) >= 0.0);
    }
}
