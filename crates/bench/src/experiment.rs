//! Schedulability-ratio sweeps (the machinery behind Figure 2).
//!
//! [`sweep_with`] fans the `(point, task set)` grid across a worker pool
//! ([`crate::parallel`]); every item derives its RNG stream from
//! `(base_seed, point_index, set_index)` via
//! [`derive_seed`](pmcs_workload::derive_seed), so the measured ratios —
//! and the CSVs derived from them — are byte-identical for every thread
//! count and cache configuration. Each worker analyzes through its own
//! [`AnalysisContext`] (engine stack built from the [`AnalysisConfig`]),
//! memoizing delay bounds across fixed-point iterations, greedy rounds,
//! and task sets.
//!
//! The approaches under comparison come from a [`Registry`] — sweep
//! columns are whatever is registered, in registration order; nothing in
//! this module knows how many approaches exist.
//!
//! Analyses that *fail* (solver failure, audit refutation) count as
//! unschedulable in the ratios — matching the paper's pessimistic
//! convention — but are additionally tallied per approach in
//! [`SweepRow::failures`] and surfaced through
//! [`SweepOutcome::total_failures`], never silently folded away.
//!
//! With [`AnalysisConfig::cross_validate`] `> 0`, every analyzed set is
//! additionally simulated under that many adversarial release plans per
//! approach (policies resolved by name from the simulator registry), the
//! traces validated, and observed worst responses checked against the
//! analytical bounds. Counters land in [`SweepOutcome::sim`]; any
//! refutations appear as machine-readable lines in
//! [`SweepOutcome::refutations`], ordered by `(point, set, approach,
//! plan)` — byte-identical for every thread count.

use std::sync::Arc;
use std::time::Instant;

use pmcs_analysis::{
    cross_validate_report_in, AnalysisConfig, AnalysisContext, AnalysisError, ApproachReport,
    Registry, SimCounters, SimScratch,
};
use pmcs_core::{CacheStats, SharedDelayCache, SolverStats};
use pmcs_workload::{adversarial_specs, derive_seed, TaskSetConfig, TaskSetGenerator};

use crate::parallel::parallel_map_with;

/// Stream tag separating cross-validation plan seeds from the task-set
/// generation seeds derived from the same `(base_seed, point, set)` item
/// seed.
const CV_SEED_STREAM: u64 = 0xadd7_e55a;

/// Outcome of one approach on one task set: a verdict, or a *failed*
/// analysis (distinct from "analyzed fine, deadlines missed").
#[derive(Debug, Clone, PartialEq)]
pub enum SetOutcome {
    /// The analysis completed; every task meets its deadline.
    Schedulable,
    /// The analysis completed; some task misses its deadline.
    Unschedulable,
    /// The analysis itself failed.
    Failed(AnalysisError),
}

impl SetOutcome {
    /// `true` iff the set was proven schedulable.
    pub fn schedulable(&self) -> bool {
        matches!(self, SetOutcome::Schedulable)
    }

    /// `true` iff the analysis failed (as opposed to concluding).
    pub fn failed(&self) -> bool {
        matches!(self, SetOutcome::Failed(_))
    }
}

/// One x-axis point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X value (utilization, γ, or β depending on the figure).
    pub x: f64,
    /// Generator configuration for this point.
    pub config: TaskSetConfig,
}

/// Measured schedulability ratios at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// X value of the point.
    pub x: f64,
    /// Schedulable fraction per approach, in registry order.
    pub ratios: Vec<f64>,
    /// Failed analyses per approach, in registry order (failures count
    /// as unschedulable in `ratios` but are never hidden).
    pub failures: Vec<usize>,
    /// Task sets evaluated.
    pub sets: usize,
}

/// A sweep's rows plus the execution telemetry feeding `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Approach names, in registry order (the column order of `rows`).
    pub labels: Vec<String>,
    /// Measured ratios, aligned with the input points.
    pub rows: Vec<SweepRow>,
    /// Aggregate compute seconds per point (summed across workers, so
    /// with `jobs > 1` this exceeds the wall-clock share).
    pub point_secs: Vec<f64>,
    /// Delay-cache statistics merged over all workers.
    pub cache: CacheStats,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Solver effort per approach, in registry order (summed over every
    /// point and task set; all-zero for closed-form approaches).
    pub solver: Vec<SolverStats>,
    /// Simulation cross-validation counters, merged over every point, set
    /// and approach (all-zero when `cross_validate` is off).
    pub sim: SimCounters,
    /// Machine-readable refutation lines, in deterministic
    /// `(point, set, approach, plan)` order — byte-identical for every
    /// thread count. Empty when the analyses are sound (or
    /// cross-validation is off).
    pub refutations: Vec<String>,
}

impl SweepOutcome {
    /// Failed analyses summed over every point and approach.
    pub fn total_failures(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.failures.iter().sum::<usize>())
            .sum()
    }
}

/// Evaluates one task set under every registered approach; outcomes are
/// in registry order.
pub fn evaluate_set(
    set: &pmcs_model::TaskSet,
    registry: &Registry,
    ctx: &AnalysisContext,
) -> Vec<SetOutcome> {
    evaluate_set_with_stats(set, registry, ctx)
        .into_iter()
        .map(|(outcome, _)| outcome)
        .collect()
}

/// As [`evaluate_set`], additionally returning the solver effort each
/// approach's report attributed to this set (zero for failed analyses —
/// their effort is not meaningfully attributable).
pub fn evaluate_set_with_stats(
    set: &pmcs_model::TaskSet,
    registry: &Registry,
    ctx: &AnalysisContext,
) -> Vec<(SetOutcome, SolverStats)> {
    evaluate_set_with_reports(set, registry, ctx)
        .into_iter()
        .map(|(outcome, stats, _)| (outcome, stats))
        .collect()
}

/// As [`evaluate_set_with_stats`], additionally keeping each successful
/// analysis's full [`ApproachReport`] (needed downstream for simulation
/// cross-validation; `None` for failed analyses).
pub fn evaluate_set_with_reports(
    set: &pmcs_model::TaskSet,
    registry: &Registry,
    ctx: &AnalysisContext,
) -> Vec<(SetOutcome, SolverStats, Option<ApproachReport>)> {
    registry
        .iter()
        .map(|analyzer| match analyzer.analyze_with(set, ctx) {
            Ok(report) => {
                let outcome = if report.schedulable() {
                    SetOutcome::Schedulable
                } else {
                    SetOutcome::Unschedulable
                };
                let solver = report.solver;
                (outcome, solver, Some(report))
            }
            Err(e) => (SetOutcome::Failed(e), SolverStats::default(), None),
        })
        .collect()
}

/// Cross-validates every approach's report on one task set against
/// `plans` adversarial release plans, returning merged counters plus
/// formatted refutation lines (in registry/plan order).
///
/// Approaches without a registered simulator policy of the same name are
/// skipped; failed analyses (no report) are skipped. Plan seeds derive
/// from `(item_seed, CV_SEED_STREAM, approach index)`, so results are
/// independent of scheduling order.
fn cross_validate_item(
    set: &pmcs_model::TaskSet,
    registry: &Registry,
    reports: &[(SetOutcome, SolverStats, Option<ApproachReport>)],
    plans: usize,
    item_seed: u64,
    scratch: &mut SimScratch,
) -> (SimCounters, Vec<String>) {
    let sim_registry = pmcs_sim::Registry::standard();
    let mut sim = SimCounters::default();
    let mut lines = Vec::new();
    for (ai, analyzer) in registry.iter().enumerate() {
        let Some(report) = reports[ai].2.as_ref() else {
            continue;
        };
        let Some(policy) = sim_registry.get(analyzer.name()) else {
            continue;
        };
        let specs = adversarial_specs(plans, derive_seed(item_seed, CV_SEED_STREAM, ai as u64));
        match cross_validate_report_in(set, policy, report, &specs, scratch) {
            Ok((counters, refutations)) => {
                sim.merge(&counters);
                lines.extend(refutations.iter().map(|r| r.to_string()));
            }
            Err(e) => lines.push(format!(
                "ERROR approach={} cross-validation failed: {e}",
                analyzer.name()
            )),
        }
    }
    (sim, lines)
}

/// Runs a sweep: for each point, generates `sets_per_point` task sets
/// (each seeded deterministically from `(base_seed, point, set)`) and
/// measures the schedulability ratio of every registered approach.
///
/// The rows depend only on `(points, sets_per_point, base_seed,
/// registry)` — never on `cfg`'s execution knobs (thread count and
/// caching change wall-clock and telemetry, not results).
pub fn sweep_with(
    points: &[SweepPoint],
    sets_per_point: usize,
    base_seed: u64,
    registry: &Registry,
    cfg: &AnalysisConfig,
) -> SweepOutcome {
    let n_approaches = registry.len();
    let items: Vec<(usize, usize)> = (0..points.len())
        .flat_map(|pi| (0..sets_per_point).map(move |si| (pi, si)))
        .collect();
    let started = Instant::now();
    // One process-wide window cache for the whole sweep: every worker's
    // stack shares it, so a window solved on any thread is a hit for all.
    // Rows cannot change — bounds are content-addressed — and each
    // context reports only its own lookups, so the merge below counts
    // every lookup exactly once.
    let shared_cache = Arc::new(SharedDelayCache::default());
    // Each worker owns one analysis context AND one simulation scratch
    // (workspace + plan buffer): every cross-validated plan in the sweep
    // reuses the worker's buffers instead of allocating per run.
    let (evaluated, contexts) = parallel_map_with(
        &items,
        cfg.jobs,
        || {
            (
                AnalysisContext::with_shared_cache(cfg, Arc::clone(&shared_cache)),
                SimScratch::new(),
            )
        },
        |(ctx, scratch), _, &(pi, si)| {
            let t0 = Instant::now();
            let seed = derive_seed(base_seed, pi as u64, si as u64);
            let set = TaskSetGenerator::new(points[pi].config.clone(), seed).generate();
            let outcomes = evaluate_set_with_reports(&set, registry, ctx);
            let (sim, refutations) = if cfg.cross_validate > 0 {
                cross_validate_item(&set, registry, &outcomes, cfg.cross_validate, seed, scratch)
            } else {
                (SimCounters::default(), Vec::new())
            };
            (outcomes, sim, refutations, t0.elapsed().as_secs_f64())
        },
    );
    let wall_secs = started.elapsed().as_secs_f64();

    let mut wins = vec![vec![0usize; n_approaches]; points.len()];
    let mut fails = vec![vec![0usize; n_approaches]; points.len()];
    let mut point_secs = vec![0.0f64; points.len()];
    let mut solver = vec![SolverStats::default(); n_approaches];
    let mut sim = SimCounters::default();
    let mut refutations = Vec::new();
    for (&(pi, si), (outcomes, item_sim, item_refs, secs)) in items.iter().zip(&evaluated) {
        for (ai, (o, stats, _)) in outcomes.iter().enumerate() {
            wins[pi][ai] += usize::from(o.schedulable());
            fails[pi][ai] += usize::from(o.failed());
            solver[ai].merge(*stats);
        }
        sim.merge(item_sim);
        refutations.extend(
            item_refs
                .iter()
                .map(|line| format!("point={pi} set={si} {line}")),
        );
        point_secs[pi] += secs;
    }
    let rows = points
        .iter()
        .zip(wins.into_iter().zip(fails))
        .map(|(point, (w, f))| SweepRow {
            x: point.x,
            ratios: w
                .into_iter()
                .map(|w| w as f64 / sets_per_point.max(1) as f64)
                .collect(),
            failures: f,
            sets: sets_per_point,
        })
        .collect();
    let mut cache = CacheStats::default();
    for (ctx, _) in contexts {
        cache.merge(ctx.cache_stats());
    }
    SweepOutcome {
        labels: registry.labels(),
        rows,
        point_secs,
        cache,
        jobs: cfg.jobs,
        wall_secs,
        solver,
        sim,
        refutations,
    }
}

/// Single-threaded, cached [`sweep_with`] over the standard registry,
/// returning only the rows.
pub fn sweep(points: &[SweepPoint], sets_per_point: usize, base_seed: u64) -> Vec<SweepRow> {
    sweep_with(
        points,
        sets_per_point,
        base_seed,
        &Registry::standard(),
        &AnalysisConfig::default(),
    )
    .rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_analysis::{Analyzer, ApproachReport};
    use pmcs_baselines::WpAnalysis;
    use pmcs_core::CoreError;
    use pmcs_model::TaskSet;

    #[test]
    fn evaluate_set_is_consistent_with_direct_calls() {
        let mut g = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.2,
                ..TaskSetConfig::default()
            },
            7,
        );
        let set = g.generate();
        let registry = Registry::standard();
        let ctx = AnalysisContext::new(&AnalysisConfig::default());
        let outcomes = evaluate_set(&set, &registry, &ctx);
        assert_eq!(outcomes.len(), registry.len());
        assert_eq!(
            outcomes[1].schedulable(),
            WpAnalysis::default().is_schedulable(&set)
        );
        assert!(outcomes.iter().all(|o| !o.failed()));
    }

    fn small_points() -> Vec<SweepPoint> {
        [0.1, 0.2]
            .iter()
            .map(|&u| SweepPoint {
                x: u,
                config: TaskSetConfig {
                    n: 3,
                    utilization: u,
                    ..TaskSetConfig::default()
                },
            })
            .collect()
    }

    #[test]
    fn sweep_rows_align_with_points() {
        let rows = sweep(&small_points(), 3, 42);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x, 0.1);
        assert_eq!(rows[0].ratios.len(), 4);
        assert!(rows
            .iter()
            .all(|r| r.ratios.iter().all(|&v| (0.0..=1.0).contains(&v))));
        assert!(rows.iter().all(|r| r.failures.iter().all(|&f| f == 0)));
    }

    #[test]
    fn outcome_telemetry_is_populated() {
        let points = small_points();
        let out = sweep_with(
            &points,
            4,
            42,
            &Registry::standard(),
            &AnalysisConfig::default().with_jobs(2),
        );
        assert_eq!(out.labels, ["proposed", "wp", "nps", "nps-classic"]);
        assert_eq!(out.rows.len(), points.len());
        assert_eq!(out.point_secs.len(), points.len());
        assert_eq!(out.jobs, 2);
        assert!(out.wall_secs >= 0.0);
        assert_eq!(out.total_failures(), 0);
        // 4 sets × 2 points: the fixed points alone guarantee lookups.
        assert!(out.cache.hits + out.cache.misses > 0);
        // Solver effort: one entry per approach; the engine-backed
        // "proposed" column spends search nodes, closed-form columns none.
        assert_eq!(out.solver.len(), out.labels.len());
        assert!(out.solver[0].bb_nodes > 0);
        assert!(out.solver[1].is_empty());
    }

    #[test]
    fn caching_does_not_change_rows() {
        let points = small_points();
        let registry = Registry::standard();
        let cached = sweep_with(&points, 5, 7, &registry, &AnalysisConfig::default());
        let uncached = sweep_with(
            &points,
            5,
            7,
            &registry,
            &AnalysisConfig::default().with_cache(false),
        );
        assert_eq!(cached.rows, uncached.rows);
        assert_eq!(uncached.cache, CacheStats::default());
    }

    /// An analyzer whose analysis always fails, to observe the failure
    /// accounting end to end.
    struct FailingAnalyzer;

    impl Analyzer for FailingAnalyzer {
        fn name(&self) -> &str {
            "failing"
        }

        fn analyze_with(
            &self,
            _set: &TaskSet,
            _ctx: &AnalysisContext,
        ) -> Result<ApproachReport, AnalysisError> {
            Err(AnalysisError::from(CoreError::AuditFailed {
                check: "test",
                detail: "injected failure".into(),
            }))
        }
    }

    #[test]
    fn cross_validation_counts_plans_and_finds_no_refutations() {
        let points = small_points();
        let out = sweep_with(
            &points,
            2,
            42,
            &Registry::standard(),
            &AnalysisConfig::default().with_cross_validate(3),
        );
        assert_eq!(
            out.refutations,
            Vec::<String>::new(),
            "sound analyses must survive adversarial plans"
        );
        // 2 points × 2 sets × 4 approaches × 3 plans (every approach has
        // a same-named simulator policy).
        assert_eq!(out.sim.plans_run, 2 * 2 * 4 * 3);
        assert_eq!(out.sim.refutations, 0);
        assert!(out.sim.sim_secs > 0.0);
        // NPS policies have no interval structure to validate; the two
        // interval-structured approaches validate every trace.
        assert_eq!(out.sim.traces_validated, 2 * 2 * 2 * 3);
    }

    #[test]
    fn cross_validation_off_leaves_counters_zero() {
        let out = sweep_with(
            &small_points(),
            2,
            42,
            &Registry::standard(),
            &AnalysisConfig::default(),
        );
        assert_eq!(out.sim, SimCounters::default());
        assert!(out.refutations.is_empty());
    }

    /// An analyzer that claims schedulability with absurdly small bounds,
    /// forcing refutations on every plan — used to observe the refutation
    /// report path and its thread-count determinism.
    struct WeakenedProposed;

    impl Analyzer for WeakenedProposed {
        fn name(&self) -> &str {
            "proposed"
        }

        fn analyze_with(
            &self,
            set: &TaskSet,
            ctx: &AnalysisContext,
        ) -> Result<ApproachReport, AnalysisError> {
            let mut report = pmcs_analysis::ProposedAnalyzer.analyze_with(set, ctx)?;
            for task in &mut report.tasks {
                task.wcrt = pmcs_model::Time::TICK;
                task.schedulable = true;
            }
            Ok(report)
        }
    }

    #[test]
    fn refutation_reports_are_identical_for_any_thread_count() {
        let mut registry = Registry::new();
        registry.register(Box::new(WeakenedProposed));
        let points = small_points();
        let run = |jobs: usize| {
            sweep_with(
                &points,
                3,
                42,
                &registry,
                &AnalysisConfig::default()
                    .with_jobs(jobs)
                    .with_cross_validate(2),
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(
            !serial.refutations.is_empty(),
            "a one-tick bound must be refuted"
        );
        assert_eq!(serial.refutations, parallel.refutations);
        assert_eq!(serial.sim.refutations, parallel.sim.refutations);
        let first = &serial.refutations[0];
        assert!(first.starts_with("point=0 set=0 REFUTATION"), "{first}");
        assert!(first.contains("seed="), "{first}");
        assert!(first.contains("observed="), "{first}");
    }

    #[test]
    fn failed_analyses_are_counted_not_hidden() {
        let mut registry = Registry::standard();
        registry.register(Box::new(FailingAnalyzer));
        let points = small_points();
        let out = sweep_with(&points, 3, 42, &registry, &AnalysisConfig::default());
        assert_eq!(out.labels.len(), 5);
        for row in &out.rows {
            // The failing column: ratio 0 (failure counts as
            // unschedulable) and every set tallied as failed.
            assert_eq!(row.ratios[4], 0.0);
            assert_eq!(row.failures[4], 3);
            // The real approaches never fail on these sets.
            assert!(row.failures[..4].iter().all(|&f| f == 0));
        }
        assert_eq!(out.total_failures(), 3 * points.len());
    }
}
