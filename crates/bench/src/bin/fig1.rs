//! Regenerates Figure 1 of the paper: the same task set scheduled under
//! (a) the Wasly-Pellizzoni protocol — the task under analysis is blocked
//! by **two** lower-priority tasks and misses its deadline; (b) classical
//! non-preemptive scheduling — one blocking task, deadline met; and, as
//! the paper's Section IV promises, (c) the proposed protocol — the
//! latency-sensitive task cancels the in-flight copy-in, turns urgent, and
//! meets its deadline comfortably.
//!
//! The three policy simulations are independent, so they run on the
//! worker pool (`--jobs N` / `PMCS_JOBS`) and print in order afterwards;
//! a perf record goes to `BENCH_fig1.json`. With `--emit-certs` (or
//! `PMCS_EMIT_CERTS=1`) the Figure 1 task set is additionally analyzed
//! with a recorded proof transcript (outside the timed region) and the
//! emitted certificate bundle is validated by the independent
//! `pmcs-cert` checker; a rejection exits nonzero.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin fig1 -- [--jobs N]
//! [--emit-certs]`

use std::fmt::Write as _;
use std::time::Instant;

use pmcs_analysis::{AnalysisConfig, CliOverrides};
use pmcs_bench::{certify_set, fig1_task_set, parallel_map, CertSummary, PerfPoint, PerfRecord};
use pmcs_model::{TaskId, Time};
use pmcs_sim::{render_gantt, simulate, validate_trace, Policy, ReleasePlan};

fn main() {
    let mut cli = CliOverrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                cli.jobs = Some(args.next().and_then(|v| v.parse().ok()).expect("--jobs N"));
            }
            "--emit-certs" => cli.emit_certs = Some(true),
            _ => {}
        }
    }
    let cfg = AnalysisConfig::resolve(&cli);
    let jobs = cfg.jobs;

    let (set, releases) = fig1_task_set();
    let plan = ReleasePlan::from_pairs(releases);
    let horizon = Time::from_ticks(40);
    let tau_i = TaskId(0);
    let deadline = set.get(tau_i).unwrap().deadline();

    println!("Figure 1 reproduction — task set:");
    println!("{set}");
    println!(
        "τ0 (= τ_i of the paper) is released at t=4 with deadline D={deadline}; \
         two lower-priority tasks are pending and the lowest-priority task \
         τ3 (= τ_p) has executed just before, leaving a pending copy-out.\n"
    );

    let scenarios = [
        (Policy::WaslyPellizzoni, "(a) Wasly-Pellizzoni [3]"),
        (Policy::Nps, "(b) non-preemptive scheduling"),
        (
            Policy::Proposed,
            "(c) proposed protocol (τ_i latency-sensitive)",
        ),
    ];

    let started = Instant::now();
    let rendered = parallel_map(&scenarios, jobs, |_, &(policy, label)| {
        let t0 = Instant::now();
        let result = simulate(&set, &plan, policy, horizon);
        let record = result
            .jobs()
            .iter()
            .find(|j| j.job.task() == tau_i)
            .expect("τ_i released");
        let completion = record.completion.expect("τ_i completes within horizon");
        let verdict = if record.met_deadline() {
            "MEETS"
        } else {
            "MISSES"
        };
        let mut out = String::new();
        let _ = writeln!(out, "--- {label} ---");
        let _ = write!(
            out,
            "{}",
            render_gantt(&result, Time::from_ticks(26), Time::TICK)
        );
        let _ = writeln!(
            out,
            "τ_i: release={} completion={} (absolute deadline {}) → {verdict}\n",
            record.release, completion, record.absolute_deadline
        );
        if policy != Policy::Nps {
            let violations = validate_trace(&set, &result, policy == Policy::Proposed);
            assert!(violations.is_empty(), "protocol violation: {violations:?}");
        }
        (out, t0.elapsed().as_secs_f64())
    });
    for (out, _) in &rendered {
        print!("{out}");
    }
    println!(
        "As in the paper: the [3] protocol lets τ_i be blocked by two \
         lower-priority tasks and miss its deadline, plain NPS blocks it \
         only once, and the proposed protocol (rules R3-R5) rescues it with \
         a cancellation plus an urgent CPU copy-in."
    );

    let mut perf = PerfRecord::new("fig1");
    perf.jobs = jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    for ((_, label), (_, secs)) in scenarios.iter().zip(&rendered) {
        perf.points.push(PerfPoint {
            label: label.to_string(),
            secs: *secs,
        });
    }
    // One simulated plan per scenario; the interval-structured policies
    // (WP, proposed) have their traces validated, NPS has no interval
    // structure to check. Nothing here is bound-checked, so refutations
    // are structurally zero.
    perf.extra_sim(&pmcs_analysis::SimCounters {
        plans_run: scenarios.len() as u64,
        traces_validated: scenarios.iter().filter(|(p, _)| *p != Policy::Nps).count() as u64,
        refutations: 0,
        sim_secs: rendered.iter().map(|(_, secs)| secs).sum(),
        ws_reused: 0,
    });

    // Certificate pass (outside the timed region): certify the proposed
    // analysis of the Figure 1 set and validate the bundle with the
    // independent checker.
    let mut certs = CertSummary::default();
    if cfg.emit_certs {
        certs = certify_set(&set, "fig1");
        println!(
            "fig1: certificates — {} bundle(s) emitted, {} proof(s) accepted, \
             {} rejection(s) ({:.1}s)",
            certs.emitted, certs.checked, certs.rejected, certs.secs,
        );
        for line in &certs.rejections {
            eprintln!("{line}");
        }
    }
    perf.extra_cert(&certs);
    perf.extra_str("certs_enabled", if cfg.emit_certs { "yes" } else { "no" });

    let path = perf.write().expect("write perf record");
    println!("perf record: {}", path.display());
    if !certs.ok() {
        eprintln!(
            "certificate pass REJECTED {} certificate(s)",
            certs.rejected
        );
        std::process::exit(1);
    }
}
