//! Ablation study: where does the proposed approach's schedulability gain
//! come from?
//!
//! The paper (Section VIII) notes its formulation doubles as an improved
//! analysis of \[3\] when no task is latency-sensitive. This binary
//! decomposes the gap between the WP baseline and the full proposed
//! approach into:
//!
//! 1. **analysis tightening** — WP closed form → all-NLS MILP/engine
//!    (same protocol, sharper math);
//! 2. **LS support** — all-NLS → greedy LS marking (the protocol change:
//!    rules R3–R5).
//!
//! The three variants run through the `pmcs-analysis` registry: the
//! all-NLS column is the non-standard `wp-milp` analyzer, registered
//! here with one line — exactly the extension path a fifth approach
//! would take. The utilization steps are independent and run on the
//! worker pool (`--jobs N` / `PMCS_JOBS`, resolved at this CLI edge).
//! Each worker analyzes through its own engine stack with a shared
//! delay-bound cache, which pays off doubly here: the all-NLS pass and
//! the greedy pass solve many identical windows. A perf record goes to
//! `BENCH_ablation.json`.
//!
//! With `--cross-validate N` (or `PMCS_CROSS_VALIDATE`), every analyzed
//! set is simulated under `N` adversarial release plans per column whose
//! name has a simulator policy (`wp`, `proposed`; the all-NLS `wp-milp`
//! column has none and is skipped), checking observed worst responses
//! against the analytical bounds; refutations exit nonzero.
//!
//! With `--emit-certs` (or `PMCS_EMIT_CERTS=1`), every analyzed set is
//! re-certified after the measured sweep: the proposed analysis re-runs
//! with a recorded proof transcript and the bundle is validated by the
//! independent `pmcs-cert` checker; `cert_*` counters land in the perf
//! record and any rejection exits nonzero.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin ablation -- \
//!     [--sets N] [--jobs N] [--cross-validate N] [--emit-certs]`

use std::time::Instant;

use pmcs_analysis::{
    cross_validate_report, AnalysisConfig, AnalysisContext, CliOverrides, ProposedAnalyzer,
    Registry, SimCounters, WpAnalyzer, WpMilpAnalyzer,
};
use pmcs_bench::{
    certify_set, parallel_map, parallel_map_with, CertSummary, PerfPoint, PerfRecord,
};
use pmcs_core::CacheStats;
use pmcs_workload::{adversarial_specs, derive_seed, TaskSetConfig, TaskSetGenerator};

fn main() {
    let mut sets = 50usize;
    let mut cli = CliOverrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sets" => sets = args.next().and_then(|v| v.parse().ok()).expect("--sets N"),
            "--jobs" => {
                cli.jobs = Some(args.next().and_then(|v| v.parse().ok()).expect("--jobs N"));
            }
            "--cross-validate" => {
                cli.cross_validate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cross-validate N"),
                );
            }
            "--emit-certs" => cli.emit_certs = Some(true),
            _ => {}
        }
    }
    let cfg = AnalysisConfig::resolve(&cli);
    let steps: Vec<u64> = (2..=9).collect();

    // The three ablation columns, in presentation order; `wp-milp` is the
    // registry's extension point in action (not part of the standard
    // four-approach comparison).
    let mut registry = Registry::new();
    registry.register(Box::new(WpAnalyzer::new()));
    registry.register(Box::new(WpMilpAnalyzer));
    registry.register(Box::new(ProposedAnalyzer));

    let started = Instant::now();
    let (lines, contexts) = parallel_map_with(
        &steps,
        cfg.jobs,
        || AnalysisContext::new(&cfg),
        |ctx, _, &step| {
            let t0 = Instant::now();
            let u = step as f64 * 0.05;
            // Per-step generator stream: independent of worker assignment.
            let mut generator = TaskSetGenerator::new(
                TaskSetConfig {
                    n: 6,
                    utilization: u,
                    gamma: 0.3,
                    beta: 0.4,
                    ..TaskSetConfig::default()
                },
                0xAB1A ^ step,
            );
            let sim_registry = pmcs_sim::Registry::standard();
            let mut sim = SimCounters::default();
            let mut refutations: Vec<String> = Vec::new();
            let (mut closed, mut all_nls, mut greedy) = (0usize, 0usize, 0usize);
            for si in 0..sets {
                let set = generator.generate();
                let analyze = |name: &str| {
                    registry
                        .require(name)
                        .expect("registered above")
                        .analyze_with(&set, ctx)
                        .expect("analysis")
                };
                let reports = [analyze("wp"), analyze("wp-milp"), analyze("proposed")];
                closed += usize::from(reports[0].schedulable());
                all_nls += usize::from(reports[1].schedulable());
                // Identical to the proposed pipeline when all-NLS already
                // passes; the greedy adds LS promotions on top.
                greedy += usize::from(reports[2].schedulable());
                if cfg.cross_validate > 0 {
                    for (ai, report) in reports.iter().enumerate() {
                        // Columns without a same-named simulator policy
                        // (the all-NLS `wp-milp` bound) cannot be
                        // cross-validated and are skipped.
                        let Some(policy) = sim_registry.get(&report.approach) else {
                            continue;
                        };
                        let specs = adversarial_specs(
                            cfg.cross_validate,
                            derive_seed(0xAB1A ^ step, si as u64, ai as u64),
                        );
                        let (counters, refs) = cross_validate_report(&set, policy, report, &specs)
                            .expect("cross-validation");
                        sim.merge(&counters);
                        refutations.extend(refs.iter().map(|r| format!("U={u:.2} set={si} {r}")));
                    }
                }
            }
            let r = |v: usize| v as f64 / sets as f64;
            let line = format!(
                "{u:>5.2} | {:>10.2} {:>12.2} {:>12.2} | {:>+10.2} {:>+10.2}",
                r(closed),
                r(all_nls),
                r(greedy),
                r(all_nls) - r(closed),
                r(greedy) - r(all_nls),
            );
            (u, line, sim, refutations, t0.elapsed().as_secs_f64())
        },
    );

    println!(
        "{:>5} | {:>10} {:>12} {:>12} | {:>10} {:>10}",
        "U", "wp-closed", "all-NLS", "greedy-LS", "Δ analysis", "Δ LS"
    );
    for (_, line, _, _, _) in &lines {
        println!("{line}");
    }
    println!(
        "\nΔ analysis = all-NLS formulation vs WP closed form (same protocol);\n\
         Δ LS       = greedy latency-sensitive marking on top (rules R3-R5)."
    );

    let mut perf = PerfRecord::new("ablation");
    perf.jobs = cfg.jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    let mut cache = CacheStats::default();
    for ctx in contexts {
        cache.merge(ctx.cache_stats());
    }
    perf.cache = cache;
    perf.extra_num("sets_per_step", sets as f64);
    let mut sim = SimCounters::default();
    let mut refutations: Vec<String> = Vec::new();
    for (u, _, step_sim, step_refs, secs) in &lines {
        sim.merge(step_sim);
        refutations.extend(step_refs.iter().cloned());
        perf.points.push(PerfPoint {
            label: format!("U={u:.2}"),
            secs: *secs,
        });
    }
    perf.extra_sim(&sim);

    // Certificate pass: after the measured sweep, regenerate every step's
    // sets from the same per-step generator stream and certify each
    // (proposed column only — the certified pipeline), validating the
    // bundles with the independent pmcs-cert checker.
    let mut certs = CertSummary::default();
    if cfg.emit_certs {
        let step_certs = parallel_map(&steps, cfg.jobs, |_, &step| {
            let u = step as f64 * 0.05;
            let mut generator = TaskSetGenerator::new(
                TaskSetConfig {
                    n: 6,
                    utilization: u,
                    gamma: 0.3,
                    beta: 0.4,
                    ..TaskSetConfig::default()
                },
                0xAB1A ^ step,
            );
            let mut summary = CertSummary::default();
            for si in 0..sets {
                let set = generator.generate();
                summary.merge(&certify_set(&set, &format!("U={u:.2} set={si}")));
            }
            summary
        });
        for s in &step_certs {
            certs.merge(s);
        }
        println!(
            "certificates: {} bundle(s) emitted, {} proof(s) accepted, {} rejection(s) ({:.1}s)",
            certs.emitted, certs.checked, certs.rejected, certs.secs,
        );
        for line in &certs.rejections {
            eprintln!("{line}");
        }
    }
    perf.extra_cert(&certs);
    perf.extra_str("certs_enabled", if cfg.emit_certs { "yes" } else { "no" });

    let path = perf.write().expect("write perf record");
    println!("perf record: {} (cache: {})", path.display(), perf.cache);

    if !certs.ok() {
        eprintln!(
            "certificate pass REJECTED {} certificate(s)",
            certs.rejected
        );
        std::process::exit(1);
    }
    if !refutations.is_empty() {
        eprintln!(
            "cross-validation REFUTED {} analytical bound(s):",
            refutations.len()
        );
        for line in &refutations {
            eprintln!("{line}");
        }
        std::process::exit(1);
    }
}
