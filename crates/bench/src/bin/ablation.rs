//! Ablation study: where does the proposed approach's schedulability gain
//! come from?
//!
//! The paper (Section VIII) notes its formulation doubles as an improved
//! analysis of \[3\] when no task is latency-sensitive. This binary
//! decomposes the gap between the WP baseline and the full proposed
//! approach into:
//!
//! 1. **analysis tightening** — WP closed form → all-NLS MILP/engine
//!    (same protocol, sharper math);
//! 2. **LS support** — all-NLS → greedy LS marking (the protocol change:
//!    rules R3–R5).
//!
//! The utilization steps are independent and run on the worker pool
//! (`--jobs N` / `PMCS_JOBS`). Each worker analyzes through a shared
//! delay-bound cache, which pays off doubly here: the all-NLS pass and
//! the greedy pass solve many identical windows. A perf record goes to
//! `BENCH_ablation.json`.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin ablation -- [--sets N] [--jobs N]`

use std::time::Instant;

use pmcs_baselines::{wp_milp_analysis, WpAnalysis};
use pmcs_bench::{parallel_map_with, resolve_jobs, PerfPoint, PerfRecord};
use pmcs_core::schedulability::analyze_fixed_marking;
use pmcs_core::{analyze_task_set, CacheStats, CachedEngine, ExactEngine};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

fn main() {
    let mut sets = 50usize;
    let mut jobs_arg: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sets" => sets = args.next().and_then(|v| v.parse().ok()).expect("--sets N"),
            "--jobs" => {
                jobs_arg = Some(args.next().and_then(|v| v.parse().ok()).expect("--jobs N"));
            }
            _ => {}
        }
    }
    let jobs = resolve_jobs(jobs_arg);
    let steps: Vec<u64> = (2..=9).collect();

    let started = Instant::now();
    let (lines, engines) = parallel_map_with(
        &steps,
        jobs,
        || CachedEngine::new(ExactEngine::default()),
        |engine, _, &step| {
            let t0 = Instant::now();
            let u = step as f64 * 0.05;
            // Per-step generator stream: independent of worker assignment.
            let mut generator = TaskSetGenerator::new(
                TaskSetConfig {
                    n: 6,
                    utilization: u,
                    gamma: 0.3,
                    beta: 0.4,
                    ..TaskSetConfig::default()
                },
                0xAB1A ^ step,
            );
            let (mut closed, mut all_nls, mut greedy) = (0usize, 0usize, 0usize);
            for _ in 0..sets {
                let set = generator.generate();
                closed += usize::from(WpAnalysis::default().is_schedulable(&set));
                all_nls += usize::from(
                    wp_milp_analysis(&set, engine)
                        .expect("analysis")
                        .schedulable(),
                );
                // Identical to analyze_task_set when all-NLS already passes;
                // the greedy adds LS promotions on top.
                greedy += usize::from(
                    analyze_task_set(&set, engine)
                        .expect("analysis")
                        .schedulable(),
                );
                // analyze_fixed_marking is exercised in tests; keep the import
                // honest here by using it for the sanity check below.
                debug_assert!(
                    analyze_fixed_marking(&set.all_nls(), engine)
                        .map(|r| r.schedulable())
                        .unwrap_or(false)
                        == wp_milp_analysis(&set, engine)
                            .map(|r| r.schedulable())
                            .unwrap_or(false)
                );
            }
            let r = |v: usize| v as f64 / sets as f64;
            let line = format!(
                "{u:>5.2} | {:>10.2} {:>12.2} {:>12.2} | {:>+10.2} {:>+10.2}",
                r(closed),
                r(all_nls),
                r(greedy),
                r(all_nls) - r(closed),
                r(greedy) - r(all_nls),
            );
            (u, line, t0.elapsed().as_secs_f64())
        },
    );

    println!(
        "{:>5} | {:>10} {:>12} {:>12} | {:>10} {:>10}",
        "U", "wp-closed", "all-NLS", "greedy-LS", "Δ analysis", "Δ LS"
    );
    for (_, line, _) in &lines {
        println!("{line}");
    }
    println!(
        "\nΔ analysis = all-NLS formulation vs WP closed form (same protocol);\n\
         Δ LS       = greedy latency-sensitive marking on top (rules R3-R5)."
    );

    let mut perf = PerfRecord::new("ablation");
    perf.jobs = jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    let mut cache = CacheStats::default();
    for e in engines {
        cache.merge(e.stats());
    }
    perf.cache = cache;
    perf.extra_num("sets_per_step", sets as f64);
    for (u, _, secs) in &lines {
        perf.points.push(PerfPoint {
            label: format!("U={u:.2}"),
            secs: *secs,
        });
    }
    let path = perf.write().expect("write perf record");
    println!("perf record: {} (cache: {})", path.display(), perf.cache);
}
