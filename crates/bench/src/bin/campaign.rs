//! Million-plan Monte-Carlo falsification campaign over every
//! registered policy (see [`pmcs_bench::campaign`]).
//!
//! Streams `--plans` adversarial release plans per approach through the
//! workspace-reuse kernel on the single-core workload, `plans/10` per
//! approach per core on a bandwidth-regulated two-core platform, and
//! `plans/20` per approach in measured (EMA execution-time) mode. Every
//! job response folds into a log-scale histogram and is checked live
//! against the analytical WCRT bounds; any exceedance prints a
//! machine-readable refutation and the process exits nonzero.
//!
//! Writes:
//!
//! * `target/experiments/campaign_report.txt` — the deterministic report
//!   (no timings; byte-identical for every `--jobs` value);
//! * `BENCH_campaign.json` — throughput telemetry, including the
//!   fresh-allocation baseline and the workspace-reuse speedup.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin campaign --
//! [--plans N] [--jobs N] [--seed N] [--tasks N] [--util X]
//! [--report FILE]`

use std::process::ExitCode;
use std::time::Instant;

use pmcs_analysis::{AnalysisConfig, CliOverrides};
use pmcs_bench::{run_campaign, CampaignConfig, PerfPoint, PerfRecord};

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut cli = CliOverrides::default();
    let mut report_path = "target/experiments/campaign_report.txt".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--plans" => cfg.plans = take("--plans").parse().expect("--plans N"),
            "--jobs" => cli.jobs = Some(take("--jobs").parse().expect("--jobs N")),
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed N"),
            "--tasks" => cfg.tasks = take("--tasks").parse().expect("--tasks N"),
            "--util" => cfg.util = take("--util").parse().expect("--util X"),
            "--report" => report_path = take("--report"),
            "-h" | "--help" => {
                println!(
                    "campaign [--plans N] [--jobs N] [--seed N] [--tasks N] \
                     [--util X] [--report FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    cfg.analysis = AnalysisConfig::resolve(&cli);

    let started = Instant::now();
    println!(
        "campaign: {} plans/approach across {} worker(s), seed {} …",
        cfg.plans, cfg.analysis.jobs, cfg.seed
    );
    let out = match run_campaign(&cfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = out.report_text();
    print!("{report}");
    if let Some(dir) = std::path::Path::new(&report_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("error: cannot write {report_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report: {report_path}");
    println!(
        "throughput: {:.0} streamed sims/s over {} sims ({} warm-workspace reuses); \
         baseline {:.0} traced sims/s over {} sims → speedup {:.2}x",
        out.plans_per_sec(),
        out.sims_run,
        out.ws_reused,
        out.baseline_plans_per_sec(),
        out.baseline_sims,
        out.speedup(),
    );

    let mut perf = PerfRecord::new("campaign");
    perf.jobs = out.jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    perf.extra_num("campaign_plans", cfg.plans as f64);
    perf.extra_num("campaign_sims", out.sims_run as f64);
    perf.extra_num("campaign_secs", out.campaign_secs);
    perf.extra_num("campaign_plans_per_sec", out.plans_per_sec());
    perf.extra_num("campaign_ws_reused", out.ws_reused as f64);
    perf.extra_num("baseline_sims", out.baseline_sims as f64);
    perf.extra_num("baseline_secs", out.baseline_secs);
    perf.extra_num("baseline_plans_per_sec", out.baseline_plans_per_sec());
    perf.extra_num("speedup", out.speedup());
    perf.extra_num("refutations", out.refutations.len() as f64);
    for (label, h) in [("single", &out.single), ("bus", &out.bus)] {
        let plans: u64 = h.iter().map(|p| p.plans).sum();
        perf.points.push(PerfPoint {
            label: format!("{label} ({plans} sims)"),
            secs: 0.0,
        });
    }
    match perf.write() {
        Ok(path) => println!("perf record: {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write perf record: {e}");
            return ExitCode::FAILURE;
        }
    }

    if out.refutations.is_empty() {
        println!(
            "campaign PASSED: {} sims, 0 bound exceedances",
            out.sims_run
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "campaign REFUTED: {} bound exceedance(s)",
            out.refutations.len()
        );
        ExitCode::FAILURE
    }
}
