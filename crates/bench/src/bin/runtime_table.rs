//! Reproduces the analysis-runtime measurements the paper reports in
//! prose (Section VII): average and maximum time to analyze a task set
//! (greedy LS algorithm included), per configuration.
//!
//! The paper measured hundreds of seconds per task set with IBM CPLEX;
//! the specialized exact engine of this reproduction solves the same
//! optimization in milliseconds (see DESIGN.md §2 for the substitution
//! argument).
//!
//! The nine configurations run on the worker pool (`--jobs N` /
//! `PMCS_JOBS`). Per-set timings use a **fresh** delay cache per task set
//! (pass `--no-cache` for none at all), so each measurement reflects one
//! cold analysis rather than cross-set memoization. A perf record goes to
//! `BENCH_runtime_table.json`.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin runtime_table -- \
//!     [--sets N] [--jobs N] [--no-cache]`

use std::time::Instant;

use pmcs_bench::{parallel_map, resolve_jobs, PerfPoint, PerfRecord};
use pmcs_core::{analyze_task_set, CacheStats, CachedEngine, ExactEngine};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

fn main() {
    let mut sets = 25usize;
    let mut jobs_arg: Option<usize> = None;
    let mut cache = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sets" => sets = args.next().and_then(|v| v.parse().ok()).expect("--sets N"),
            "--jobs" => {
                jobs_arg = Some(args.next().and_then(|v| v.parse().ok()).expect("--jobs N"));
            }
            "--no-cache" => cache = false,
            _ => {}
        }
    }
    let jobs = resolve_jobs(jobs_arg);

    let mut configs = Vec::new();
    for n in [4usize, 6, 8] {
        for u in [0.2f64, 0.35, 0.5] {
            configs.push((n, u));
        }
    }

    let started = Instant::now();
    let measured = parallel_map(&configs, jobs, |_, &(n, u)| {
        let cfg = TaskSetConfig {
            n,
            utilization: u,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        };
        let mut generator = TaskSetGenerator::new(cfg, 99);
        let mut total = std::time::Duration::ZERO;
        let mut max = std::time::Duration::ZERO;
        let mut schedulable = 0usize;
        let mut stats = CacheStats::default();
        for _ in 0..sets {
            let set = generator.generate();
            // One cold engine per set: the timing measures a single
            // analysis, caching only within it (fixed-point iterations
            // and greedy rounds), never across sets.
            let t0 = Instant::now();
            let report = if cache {
                let engine = CachedEngine::new(ExactEngine::default());
                let r = analyze_task_set(&set, &engine).expect("analysis");
                stats.merge(engine.stats());
                r
            } else {
                analyze_task_set(&set, &ExactEngine::default()).expect("analysis")
            };
            let elapsed = t0.elapsed();
            total += elapsed;
            max = max.max(elapsed);
            schedulable += usize::from(report.schedulable());
        }
        let line = format!(
            "{n:>3} {u:>6.2} {:>6.2} {:>6.2} | {:>12?} {:>12?} {:>12.2}",
            0.3,
            0.4,
            total / sets.max(1) as u32,
            max,
            schedulable as f64 / sets.max(1) as f64
        );
        (line, total.as_secs_f64(), stats)
    });

    println!(
        "{:>3} {:>6} {:>6} {:>6} | {:>12} {:>12} {:>12}",
        "n", "U", "gamma", "beta", "avg", "max", "sched-ratio"
    );
    for (line, _, _) in &measured {
        println!("{line}");
    }
    println!(
        "\n(analysis = full greedy LS-marking schedulability test per task \
         set; the paper reports avg ≈ hundreds of seconds and max ≈ 1 h \
         with CPLEX on an i7-6700K)"
    );

    let mut perf = PerfRecord::new("runtime_table");
    perf.jobs = jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    let mut merged = CacheStats::default();
    for ((n, u), (_, secs, stats)) in configs.iter().zip(&measured) {
        merged.merge(*stats);
        perf.points.push(PerfPoint {
            label: format!("n={n},U={u:.2}"),
            secs: *secs,
        });
    }
    perf.cache = merged;
    perf.extra_num("sets_per_config", sets as f64);
    perf.extra_str("cache_enabled", if cache { "yes" } else { "no" });
    let path = perf.write().expect("write perf record");
    println!("perf record: {}", path.display());
}
