//! Reproduces the analysis-runtime measurements the paper reports in
//! prose (Section VII): average and maximum time to analyze a task set
//! (greedy LS algorithm included), per configuration.
//!
//! The paper measured hundreds of seconds per task set with IBM CPLEX;
//! the specialized exact engine of this reproduction solves the same
//! optimization in milliseconds (see DESIGN.md §2 for the substitution
//! argument).
//!
//! Usage: `cargo run --release -p pmcs-bench --bin runtime_table -- [--sets N]`

use std::time::Instant;

use pmcs_core::{analyze_task_set, ExactEngine};
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

fn main() {
    let mut sets = 25usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--sets" {
            sets = args.next().and_then(|v| v.parse().ok()).expect("--sets N");
        }
    }

    println!(
        "{:>3} {:>6} {:>6} {:>6} | {:>12} {:>12} {:>12}",
        "n", "U", "gamma", "beta", "avg", "max", "sched-ratio"
    );
    for n in [4, 6, 8] {
        for u in [0.2, 0.35, 0.5] {
            let cfg = TaskSetConfig {
                n,
                utilization: u,
                gamma: 0.3,
                beta: 0.4,
                ..TaskSetConfig::default()
            };
            let mut generator = TaskSetGenerator::new(cfg, 99);
            let engine = ExactEngine::default();
            let mut total = std::time::Duration::ZERO;
            let mut max = std::time::Duration::ZERO;
            let mut schedulable = 0usize;
            for _ in 0..sets {
                let set = generator.generate();
                let started = Instant::now();
                let report = analyze_task_set(&set, &engine).expect("analysis");
                let elapsed = started.elapsed();
                total += elapsed;
                max = max.max(elapsed);
                schedulable += usize::from(report.schedulable());
            }
            println!(
                "{n:>3} {u:>6.2} {:>6.2} {:>6.2} | {:>12?} {:>12?} {:>12.2}",
                0.3,
                0.4,
                total / sets as u32,
                max,
                schedulable as f64 / sets as f64
            );
        }
    }
    println!(
        "\n(analysis = full greedy LS-marking schedulability test per task \
         set; the paper reports avg ≈ hundreds of seconds and max ≈ 1 h \
         with CPLEX on an i7-6700K)"
    );
}
