//! Reproduces the analysis-runtime measurements the paper reports in
//! prose (Section VII): average and maximum time to analyze a task set
//! (greedy LS algorithm included), per configuration.
//!
//! The paper measured hundreds of seconds per task set with IBM CPLEX;
//! the specialized exact engine of this reproduction solves the same
//! optimization in milliseconds (see DESIGN.md §2 for the substitution
//! argument).
//!
//! The nine configurations run on the worker pool (`--jobs N` /
//! `PMCS_JOBS`, resolved at this CLI edge). Per-set timings use a
//! **fresh** engine stack per task set (pass `--no-cache` for an
//! uncached stack), so each measurement reflects one cold analysis
//! rather than cross-set memoization. A perf record goes to
//! `BENCH_runtime_table.json`.
//!
//! With `--cross-validate N` (or `PMCS_CROSS_VALIDATE`), every analyzed
//! set is additionally simulated under `N` adversarial release plans
//! (outside the timed region, so the runtime numbers are unaffected),
//! checking observed worst responses against the proposed bounds;
//! refutations exit nonzero.
//!
//! With `--emit-certs` (or `PMCS_EMIT_CERTS=1`), every analyzed set is
//! re-certified after the timed measurements (outside the timed region):
//! the proposed analysis re-runs with a recorded proof transcript and
//! the bundle is validated by the independent `pmcs-cert` checker;
//! `cert_*` counters land in the perf record and any rejection exits
//! nonzero.
//!
//! Usage: `cargo run --release -p pmcs-bench --bin runtime_table -- \
//!     [--sets N] [--n N] [--jobs N] [--bnb-jobs N] [--bnb-lp-depth N] \
//!     [--no-cache] [--cross-validate N] [--emit-certs]`
//!
//! `--n N` restricts the sweep to the configurations with exactly `N`
//! tasks per set (repeatable); the default sweeps n ∈ {4, 6, 8, 10, 12}.
//! `--bnb-jobs N` enables the exact engine's parallel branch-and-bound
//! rescue on `N` workers for windows that exhaust the memo budget.
//!
//! `--sets N` is the *base* sample count: configurations with n ≤ 6
//! analyze `N` sets each, n = 8 analyzes `max(1, N/8)`, and n ≥ 10
//! analyzes `max(1, N/25)` — one analysis of a 10–12-task set costs
//! 10³–10⁴× an n=4 one, so the sweep samples densely where sets are
//! cheap and sparsely where each set is expensive. For n ≥ 10 the
//! exact-DP memo budget also drops to a quarter, so pathological
//! windows fall back to the safe cap quickly instead of burning the
//! full search budget first. The actual per-row counts land in the
//! perf record under `sets_schedule` / `max_states_schedule`.

use std::time::Instant;

use pmcs_analysis::{
    cross_validate_report, AnalysisConfig, AnalysisContext, Analyzer, CliOverrides,
    ProposedAnalyzer, SimCounters,
};
use pmcs_bench::{certify_set, parallel_map, CertSummary, PerfPoint, PerfRecord};
use pmcs_core::{CacheStats, SolverStats};
use pmcs_workload::{adversarial_specs, derive_seed, TaskSetConfig, TaskSetGenerator};

/// Per-configuration sample count: the full base for small n, scaled
/// down where a single analysis is orders of magnitude more expensive.
fn sets_for(base: usize, n: usize) -> usize {
    let div = match n {
        0..=6 => 1,
        7 | 8 => 8,
        _ => 25,
    };
    (base / div).max(1)
}

/// Per-configuration exact-DP memo budget: the full base for n ≤ 8; at
/// n ≥ 10 a single window can legitimately demand tens of millions of
/// search nodes, so the budget shrinks (to a quarter) to keep one cold analysis
/// bounded — exhausted solves fall back to the safe cap and are counted
/// in `dp_fallbacks` (the hopeless-state pre-gate also trips earlier,
/// skipping most such windows without burning nodes at all).
fn max_states_for(base: usize, n: usize) -> usize {
    if n >= 10 {
        (base / 4).max(1)
    } else {
        base
    }
}

fn main() {
    let mut sets = 25usize;
    let mut only_n: Vec<usize> = Vec::new();
    let mut cli = CliOverrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sets" => sets = args.next().and_then(|v| v.parse().ok()).expect("--sets N"),
            "--n" => only_n.push(args.next().and_then(|v| v.parse().ok()).expect("--n N")),
            "--jobs" => {
                cli.jobs = Some(args.next().and_then(|v| v.parse().ok()).expect("--jobs N"));
            }
            "--bnb-jobs" => {
                cli.bnb_jobs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--bnb-jobs N"),
                );
            }
            "--bnb-lp-depth" => {
                cli.bnb_lp_depth = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--bnb-lp-depth N"),
                );
            }
            "--no-cache" => cli.cache = Some(false),
            "--cross-validate" => {
                cli.cross_validate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cross-validate N"),
                );
            }
            "--emit-certs" => cli.emit_certs = Some(true),
            _ => {}
        }
    }
    let cfg = AnalysisConfig::resolve(&cli);

    let mut configs = Vec::new();
    for n in [4usize, 6, 8, 10, 12] {
        if !only_n.is_empty() && !only_n.contains(&n) {
            continue;
        }
        for u in [0.2f64, 0.35, 0.5] {
            configs.push((n, u));
        }
    }

    let started = Instant::now();
    let measured = parallel_map(&configs, cfg.jobs, |ci, &(n, u)| {
        let sets = sets_for(sets, n);
        let mut cfg = cfg.clone();
        cfg.max_states = max_states_for(cfg.max_states, n);
        let ts_cfg = TaskSetConfig {
            n,
            utilization: u,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        };
        let mut generator = TaskSetGenerator::new(ts_cfg, 99);
        let mut total = std::time::Duration::ZERO;
        let mut max = std::time::Duration::ZERO;
        let mut schedulable = 0usize;
        let mut failures = 0usize;
        let mut stats = CacheStats::default();
        let mut solver = SolverStats::default();
        let sim_registry = pmcs_sim::Registry::standard();
        let mut sim = SimCounters::default();
        let mut refutations: Vec<String> = Vec::new();
        for si in 0..sets {
            let set = generator.generate();
            // One cold engine stack per set: the timing measures a single
            // analysis, caching only within it (fixed-point iterations
            // and greedy rounds), never across sets.
            let t0 = Instant::now();
            let ctx = AnalysisContext::new(&cfg);
            let report = ProposedAnalyzer.analyze_with(&set, &ctx);
            let elapsed = t0.elapsed();
            stats.merge(ctx.cache_stats());
            solver.merge(ctx.solver_stats());
            total += elapsed;
            max = max.max(elapsed);
            match report {
                Ok(r) => {
                    schedulable += usize::from(r.schedulable());
                    // Cross-validation runs outside the timed region so
                    // the runtime numbers stay comparable.
                    if cfg.cross_validate > 0 {
                        let policy = sim_registry
                            .get(&r.approach)
                            .expect("proposed policy is registered");
                        let specs = adversarial_specs(
                            cfg.cross_validate,
                            derive_seed(99, ci as u64, si as u64),
                        );
                        let (counters, refs) = cross_validate_report(&set, policy, &r, &specs)
                            .expect("cross-validation");
                        sim.merge(&counters);
                        refutations
                            .extend(refs.iter().map(|r| format!("n={n} U={u:.2} set={si} {r}")));
                    }
                }
                Err(_) => failures += 1,
            }
        }
        let line = format!(
            "{n:>3} {u:>6.2} {:>6.2} {:>6.2} | {:>12?} {:>12?} {:>12.2}",
            0.3,
            0.4,
            total / sets.max(1) as u32,
            max,
            schedulable as f64 / sets.max(1) as f64
        );
        (
            line,
            total.as_secs_f64(),
            stats,
            solver,
            failures,
            sim,
            refutations,
        )
    });

    println!(
        "{:>3} {:>6} {:>6} {:>6} | {:>12} {:>12} {:>12}",
        "n", "U", "gamma", "beta", "avg", "max", "sched-ratio"
    );
    for (line, ..) in &measured {
        println!("{line}");
    }
    println!(
        "\n(analysis = full greedy LS-marking schedulability test per task \
         set; the paper reports avg ≈ hundreds of seconds and max ≈ 1 h \
         with CPLEX on an i7-6700K)"
    );

    let mut perf = PerfRecord::new("runtime_table");
    perf.jobs = cfg.jobs;
    perf.wall_secs = started.elapsed().as_secs_f64();
    let mut merged = CacheStats::default();
    let mut solver = SolverStats::default();
    let mut failures = 0usize;
    let mut sim = SimCounters::default();
    let mut refutations: Vec<String> = Vec::new();
    for ((n, u), (_, secs, stats, cfg_solver, fails, cfg_sim, cfg_refs)) in
        configs.iter().zip(&measured)
    {
        merged.merge(*stats);
        solver.merge(*cfg_solver);
        failures += fails;
        sim.merge(cfg_sim);
        refutations.extend(cfg_refs.iter().cloned());
        perf.points.push(PerfPoint {
            label: format!("n={n},U={u:.2}"),
            secs: *secs,
        });
    }
    if failures > 0 {
        eprintln!("{failures} analyses FAILED (excluded from the schedulable count)");
    }
    perf.cache = merged;
    perf.extra_solver("solver", solver);
    perf.extra_num("sets_per_config", sets as f64);
    let schedule = configs
        .iter()
        .map(|&(n, u)| format!("n={n},U={u:.2}:{}", sets_for(sets, n)))
        .collect::<Vec<_>>()
        .join(" ");
    perf.extra_str("sets_schedule", &schedule);
    let memo_schedule = configs
        .iter()
        .map(|&(n, u)| format!("n={n},U={u:.2}:{}", max_states_for(cfg.max_states, n)))
        .collect::<Vec<_>>()
        .join(" ");
    perf.extra_str("max_states_schedule", &memo_schedule);
    perf.extra_num("bnb_jobs", cfg.bnb_jobs as f64);
    perf.extra_num("analysis_failures", failures as f64);
    perf.extra_str("cache_enabled", if cfg.cache { "yes" } else { "no" });
    perf.extra_sim(&sim);

    // Certificate pass: after the timed measurements, regenerate every
    // configuration's sets from the same generator stream and certify
    // each, validating the bundles with the independent checker.
    let mut certs = CertSummary::default();
    if cfg.emit_certs {
        let config_certs = parallel_map(&configs, cfg.jobs, |_, &(n, u)| {
            let sets = sets_for(sets, n);
            let mut generator = TaskSetGenerator::new(
                TaskSetConfig {
                    n,
                    utilization: u,
                    gamma: 0.3,
                    beta: 0.4,
                    ..TaskSetConfig::default()
                },
                99,
            );
            let mut summary = CertSummary::default();
            for si in 0..sets {
                let set = generator.generate();
                summary.merge(&certify_set(&set, &format!("n={n} U={u:.2} set={si}")));
            }
            summary
        });
        for s in &config_certs {
            certs.merge(s);
        }
        println!(
            "certificates: {} bundle(s) emitted, {} proof(s) accepted, {} rejection(s) ({:.1}s)",
            certs.emitted, certs.checked, certs.rejected, certs.secs,
        );
        for line in &certs.rejections {
            eprintln!("{line}");
        }
    }
    perf.extra_cert(&certs);
    perf.extra_str("certs_enabled", if cfg.emit_certs { "yes" } else { "no" });

    let path = perf.write().expect("write perf record");
    println!("perf record: {}", path.display());

    if !certs.ok() {
        eprintln!(
            "certificate pass REJECTED {} certificate(s)",
            certs.rejected
        );
        std::process::exit(1);
    }
    if !refutations.is_empty() {
        eprintln!(
            "cross-validation REFUTED {} analytical bound(s):",
            refutations.len()
        );
        for line in &refutations {
            eprintln!("{line}");
        }
        std::process::exit(1);
    }
}
