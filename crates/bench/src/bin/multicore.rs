//! Multi-core schedulability sweep under shared-bus bandwidth regulation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmcs-bench --bin multicore -- \
//!     [--cores M] [--sets N] [--seed S] [--period TICKS] \
//!     [--util U] [--gamma G] [--jobs N] [--no-cache] \
//!     [--lp-backend dense|revised] [--cross-validate N]
//! ```
//!
//! Sweeps per-core regulation budgets (fractions of the fair share
//! `P / cores`) against all partitioning heuristics on randomly generated
//! workloads: each task set is packed onto the `M`-core regulated
//! platform with contention-aware admission and the schedulability ratio
//! per heuristic is reported. Every schedulable first-fit partition is
//! additionally multi-core cross-validated — per-core adversarial plans
//! on the inflated sets *plus* a coupled replay of all DMA transfers
//! through the shared-bus arbiter, checking observed service times
//! against the analytical inflation bound. `--cross-validate N` sets the
//! adversarial plans per partition (default 2; `0` disables the check).
//!
//! Results go to `target/experiments/multicore.csv` and a perf record
//! (including bus-replay counters) to `BENCH_multicore.json` at the
//! repository root. Any refutation prints a machine-readable line —
//! byte-identical for every `--jobs` value — and makes the binary exit
//! nonzero.

use std::path::PathBuf;

use pmcs_analysis::{AnalysisConfig, CliOverrides};
use pmcs_bench::report::text_table;
use pmcs_bench::{
    ascii_chart, sweep_multicore, write_csv, MulticoreConfig, PerfPoint, PerfRecord, SweepRow,
};
use pmcs_core::BackendKind;
use pmcs_model::Time;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cores = 4usize;
    let mut sets: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut period: Option<i64> = None;
    let mut util: Option<f64> = None;
    let mut gamma: Option<f64> = None;
    let mut cli = CliOverrides::default();
    let mut plans_flag: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cores" => {
                cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&m| m >= 1)
                    .expect("--cores needs a positive number");
            }
            "--sets" => {
                sets = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sets needs a number"),
                );
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number"),
                );
            }
            "--period" => {
                period = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t| t > 0)
                        .expect("--period needs a positive tick count"),
                );
            }
            "--util" => {
                util = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--util needs a per-core utilization"),
                );
            }
            "--gamma" => {
                gamma = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--gamma needs a memory-intensity factor"),
                );
            }
            "--jobs" => {
                cli.jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a number"),
                );
            }
            "--no-cache" => cli.cache = Some(false),
            "--lp-backend" => {
                let v = it.next().expect("--lp-backend needs dense|revised");
                cli.lp_backend = Some(
                    BackendKind::parse(v)
                        .unwrap_or_else(|| panic!("unknown LP backend '{v}'; use dense|revised")),
                );
            }
            "--cross-validate" => {
                plans_flag = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cross-validate needs a number of plans"),
                );
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Workload defaults (memory intensity in particular) scale with the
    // core count, so the base config is built only after parsing.
    let mut mc = MulticoreConfig::for_cores(cores);
    if let Some(v) = sets {
        mc.sets = v;
    }
    if let Some(v) = seed {
        mc.seed = v;
    }
    if let Some(v) = period {
        mc.period = Time::from_ticks(v);
    }
    if let Some(v) = util {
        mc.util_per_core = v;
    }
    if let Some(v) = gamma {
        mc.gamma = v;
    }
    mc.analysis = AnalysisConfig::resolve(&cli);
    if let Some(plans) = plans_flag {
        mc.plans = plans;
    }

    println!(
        "=== Multi-core sweep — {} cores, bus period {}, {} sets/level, seed {}, \
         {} jobs, {} plan(s)/partition ===",
        mc.cores, mc.period, mc.sets, mc.seed, mc.analysis.jobs, mc.plans,
    );
    let out = sweep_multicore(&mc);

    // Reuse the single-core reporting helpers via the shared row shape
    // (x = budget fraction of the fair share).
    let rows: Vec<SweepRow> = out
        .rows
        .iter()
        .map(|r| SweepRow {
            x: r.fraction,
            ratios: r.ratios.clone(),
            failures: vec![r.failures as usize],
            sets: r.sets,
        })
        .collect();
    println!("{}", text_table(&rows, &out.labels, "Q/share"));
    println!("{}", ascii_chart(&rows, &out.labels, "Q/share"));
    let path = PathBuf::from("target/experiments/multicore.csv");
    write_csv(&path, "Q/share", &out.labels, &rows).expect("write csv");
    println!("wrote {} ({:.1}s wall)", path.display(), out.wall_secs);
    let failures: u64 = out.rows.iter().map(|r| r.failures).sum();
    if failures > 0 {
        eprintln!("multicore: {failures} analyses FAILED (counted as unschedulable)");
    }
    if mc.plans > 0 {
        println!(
            "cross-validation: {} plans simulated, {} traces validated, \
             {} bus transfers replayed, {} refutations",
            out.sim.plans_run, out.sim.traces_validated, out.transfers, out.sim.refutations,
        );
    }

    let mut perf = PerfRecord::new("multicore");
    perf.jobs = out.jobs;
    perf.wall_secs = out.wall_secs;
    perf.cache = out.cache;
    for (label, secs) in &out.point_secs {
        perf.points.push(PerfPoint {
            label: format!("multicore:{label}"),
            secs: *secs,
        });
    }
    perf.extra_num("cores", mc.cores as f64);
    perf.extra_num("period_ticks", mc.period.as_ticks() as f64);
    perf.extra_num("sets_per_level", mc.sets as f64);
    perf.extra_num("analysis_failures", failures as f64);
    perf.extra_num("bus_transfers_checked", out.transfers as f64);
    perf.extra_str(
        "cache_enabled",
        if mc.analysis.cache { "yes" } else { "no" },
    );
    perf.extra_str(
        "engine",
        match mc.analysis.lp_backend {
            Some(kind) => kind.name(),
            None => "exact",
        },
    );
    perf.extra_solver("solver_total", out.solver);
    perf.extra_sim(&out.sim);
    let path = perf.write().expect("write perf record");
    println!("perf record: {}", path.display());

    if !out.refutations.is_empty() {
        eprintln!(
            "cross-validation REFUTED {} analytical bound(s):",
            out.refutations.len()
        );
        for line in &out.refutations {
            eprintln!("{line}");
        }
        std::process::exit(1);
    }
}
