//! Regenerates one inset of Figure 2 (schedulability-ratio comparison).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmcs-bench --bin fig2 -- <a|b|c|d|e|f|all> [--sets N] [--seed S]
//! ```
//!
//! Results are printed as a table plus an ASCII chart and written to
//! `target/experiments/fig2<inset>.csv`.

use std::path::PathBuf;
use std::time::Instant;

use pmcs_bench::report::text_table;
use pmcs_bench::{ascii_chart, fig2_inset, sweep, write_csv, Fig2Inset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut insets: Vec<Fig2Inset> = Vec::new();
    let mut sets_per_point = 100usize;
    let mut seed = 0xDAC2020u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sets" => {
                sets_per_point = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sets needs a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "all" => insets.extend(Fig2Inset::ALL),
            other => match Fig2Inset::parse(other) {
                Some(i) => insets.push(i),
                None => {
                    eprintln!("unknown inset '{other}'; use a..f or 'all'");
                    std::process::exit(2);
                }
            },
        }
    }
    if insets.is_empty() {
        insets.extend(Fig2Inset::ALL);
    }

    for inset in insets {
        let started = Instant::now();
        let points = fig2_inset(inset);
        println!(
            "=== Figure 2({}) — {} [{} sets/point, seed {seed}] ===",
            inset.letter(),
            inset.description(),
            sets_per_point,
        );
        let rows = sweep(&points, sets_per_point, seed);
        println!("{}", text_table(&rows, inset.x_label()));
        println!("{}", ascii_chart(&rows, inset.x_label()));
        let path = PathBuf::from(format!("target/experiments/fig2{}.csv", inset.letter()));
        write_csv(&path, inset.x_label(), &rows).expect("write csv");
        println!(
            "wrote {} ({:.1}s)\n",
            path.display(),
            started.elapsed().as_secs_f64()
        );
    }
}
