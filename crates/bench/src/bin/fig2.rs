//! Regenerates one inset of Figure 2 (schedulability-ratio comparison).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmcs-bench --bin fig2 -- <a|b|c|d|e|f|all> \
//!     [--sets N] [--seed S] [--jobs N] [--no-cache] [--audit] \
//!     [--lp-backend dense|revised] [--cross-validate N] [--baseline] \
//!     [--emit-certs]
//! ```
//!
//! Execution knobs resolve through `AnalysisConfig::resolve` at this CLI
//! edge (flag > environment > default): `--jobs N` beats `PMCS_JOBS`
//! beats all cores, `--audit` beats `PMCS_AUDIT`, `--lp-backend` beats
//! `PMCS_LP_BACKEND`; results are byte-identical for every thread count.
//! `--no-cache` disables the window-level delay-bound cache.
//! `--lp-backend` swaps the engine-stack base from the exact
//! combinatorial engine to the MILP engine on the named LP backend;
//! `revised` additionally reruns every inset on the dense reference
//! backend, asserts the rows are identical, and records the dense vs.
//! revised wall-clock comparison plus warm-start statistics in
//! `BENCH_fig2.json`. `--cross-validate N` (or `PMCS_CROSS_VALIDATE`)
//! simulates every analyzed set under `N` adversarial release plans per
//! approach, validates the traces, and checks observed worst responses
//! against the analytical WCRT bounds; any refutation is printed as a
//! machine-readable line (identical for every thread count) and makes
//! the binary exit nonzero. `--baseline` additionally reruns everything
//! single-threaded and uncached to measure the parallel speedup.
//! `--emit-certs` (or `PMCS_EMIT_CERTS=1`) re-certifies every analyzed
//! set *after* the timed sweep — the proposed analysis re-runs with its
//! proof transcript recorded and the bundle is validated by the
//! independent `pmcs-cert` checker; `cert_emitted`/`cert_checked`/
//! `cert_rejected` counters land in `BENCH_fig2.json`, the CSV rows are
//! byte-identical with the flag on or off, and any rejected certificate
//! makes the binary exit nonzero.
//!
//! Results are printed as a table plus an ASCII chart and written to
//! `target/experiments/fig2<inset>.csv`; a machine-readable perf record
//! (including the analysis-failure count) goes to `BENCH_fig2.json` at
//! the repository root.

use std::path::PathBuf;
use std::time::Instant;

use pmcs_analysis::{AnalysisConfig, CliOverrides, Registry};
use pmcs_bench::report::text_table;
use pmcs_bench::{
    ascii_chart, certify_sweep, fig2_inset, sweep_with, write_csv, CertSummary, Fig2Inset,
    PerfPoint, PerfRecord,
};
use pmcs_core::{BackendKind, CacheStats, SolverStats};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut insets: Vec<Fig2Inset> = Vec::new();
    let mut sets_per_point = 100usize;
    let mut seed = 0xDAC2020u64;
    let mut cli = CliOverrides::default();
    let mut baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sets" => {
                sets_per_point = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sets needs a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--jobs" => {
                cli.jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a number"),
                );
            }
            "--no-cache" => cli.cache = Some(false),
            "--audit" => cli.audit = Some(true),
            "--lp-backend" => {
                let v = it.next().expect("--lp-backend needs dense|revised");
                cli.lp_backend = Some(
                    BackendKind::parse(v)
                        .unwrap_or_else(|| panic!("unknown LP backend '{v}'; use dense|revised")),
                );
            }
            "--cross-validate" => {
                cli.cross_validate = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cross-validate needs a number of plans"),
                );
            }
            "--baseline" => baseline = true,
            "--emit-certs" => cli.emit_certs = Some(true),
            "all" => insets.extend(Fig2Inset::ALL),
            other => match Fig2Inset::parse(other) {
                Some(i) => insets.push(i),
                None => {
                    eprintln!("unknown inset '{other}'; use a..f or 'all'");
                    std::process::exit(2);
                }
            },
        }
    }
    if insets.is_empty() {
        insets.extend(Fig2Inset::ALL);
    }
    let cfg = AnalysisConfig::resolve(&cli);
    let registry = Registry::standard();

    let mut perf = PerfRecord::new("fig2");
    perf.jobs = cfg.jobs;
    let mut cache_stats = CacheStats::default();
    let mut failures = 0usize;
    let mut sim = pmcs_analysis::SimCounters::default();
    let mut refutations: Vec<String> = Vec::new();
    let mut rows_by_inset = Vec::new();
    let mut solver_by_label: Vec<(String, SolverStats)> = Vec::new();
    let started = Instant::now();
    for &inset in &insets {
        let inset_started = Instant::now();
        let points = fig2_inset(inset);
        println!(
            "=== Figure 2({}) — {} [{} sets/point, seed {seed}, {} jobs, cache {}, engine {}] ===",
            inset.letter(),
            inset.description(),
            sets_per_point,
            cfg.jobs,
            if cfg.cache { "on" } else { "off" },
            match cfg.lp_backend {
                Some(kind) => kind.name(),
                None => "exact",
            },
        );
        let outcome = sweep_with(&points, sets_per_point, seed, &registry, &cfg);
        println!(
            "{}",
            text_table(&outcome.rows, &outcome.labels, inset.x_label())
        );
        println!(
            "{}",
            ascii_chart(&outcome.rows, &outcome.labels, inset.x_label())
        );
        let path = PathBuf::from(format!("target/experiments/fig2{}.csv", inset.letter()));
        write_csv(&path, inset.x_label(), &outcome.labels, &outcome.rows).expect("write csv");
        println!(
            "wrote {} ({:.1}s wall, cache: {})\n",
            path.display(),
            inset_started.elapsed().as_secs_f64(),
            outcome.cache,
        );
        if outcome.total_failures() > 0 {
            eprintln!(
                "fig2{}: {} analyses FAILED (counted as unschedulable in the ratios)",
                inset.letter(),
                outcome.total_failures()
            );
        }
        if cfg.cross_validate > 0 {
            println!(
                "cross-validation: {} plans simulated, {} traces validated, {} refutations",
                outcome.sim.plans_run, outcome.sim.traces_validated, outcome.sim.refutations
            );
        }
        sim.merge(&outcome.sim);
        refutations.extend(
            outcome
                .refutations
                .iter()
                .map(|line| format!("fig2{} {line}", inset.letter())),
        );
        cache_stats.merge(outcome.cache);
        failures += outcome.total_failures();
        for (label, stats) in outcome.labels.iter().zip(&outcome.solver) {
            match solver_by_label.iter_mut().find(|(l, _)| l == label) {
                Some((_, agg)) => agg.merge(*stats),
                None => solver_by_label.push((label.clone(), *stats)),
            }
        }
        for (p, secs) in points.iter().zip(&outcome.point_secs) {
            perf.points.push(PerfPoint {
                label: format!("fig2{}:{}={:.2}", inset.letter(), inset.x_label(), p.x),
                secs: *secs,
            });
        }
        rows_by_inset.push((inset, outcome.rows));
    }
    perf.wall_secs = started.elapsed().as_secs_f64();
    perf.cache = cache_stats;
    perf.extra_num("sets_per_point", sets_per_point as f64);
    perf.extra_num("analysis_failures", failures as f64);
    perf.extra_str("cache_enabled", if cfg.cache { "yes" } else { "no" });
    perf.extra_str(
        "engine",
        match cfg.lp_backend {
            Some(kind) => kind.name(),
            None => "exact",
        },
    );
    for (label, stats) in &solver_by_label {
        perf.extra_solver(&format!("solver_{label}"), *stats);
    }
    perf.extra_sim(&sim);

    if cfg.lp_backend == Some(BackendKind::Revised) {
        // Differential rerun on the dense reference backend: the revised
        // pipeline (presolve + warm starts) must not change a single row,
        // and the wall-clock comparison goes into the perf record.
        let dense_cfg = cfg.clone().with_lp_backend(Some(BackendKind::Dense));
        let dense_started = Instant::now();
        let mut dense_solver = SolverStats::default();
        for (inset, rows) in &rows_by_inset {
            let points = fig2_inset(*inset);
            let dense = sweep_with(&points, sets_per_point, seed, &registry, &dense_cfg);
            assert_eq!(
                &dense.rows,
                rows,
                "fig2{}: dense and revised LP backends must produce identical rows",
                inset.letter()
            );
            for stats in &dense.solver {
                dense_solver.merge(*stats);
            }
        }
        let dense_secs = dense_started.elapsed().as_secs_f64();
        let revised_secs = perf.wall_secs;
        let revised_total =
            solver_by_label
                .iter()
                .fold(SolverStats::default(), |mut acc, (_, s)| {
                    acc.merge(*s);
                    acc
                });
        perf.extra_num("dense_secs", dense_secs);
        perf.extra_num("revised_secs", revised_secs);
        perf.extra_num(
            "dense_vs_revised_speedup",
            dense_secs / revised_secs.max(1e-9),
        );
        perf.extra_solver("solver_dense_total", dense_solver);
        perf.extra_solver("solver_revised_total", revised_total);
        println!(
            "dense backend rerun: {dense_secs:.1}s vs revised {revised_secs:.1}s \
             ({:.2}× speedup, warm-start hit rate {:.0}%, rows identical)",
            dense_secs / revised_secs.max(1e-9),
            revised_total.warm_hit_rate() * 100.0,
        );
    }

    if baseline {
        // Rerun single-threaded and uncached for the speedup record, and
        // check the determinism contract on the way.
        let base_started = Instant::now();
        let base_cfg = cfg.clone().with_jobs(1).with_cache(false);
        for (inset, rows) in &rows_by_inset {
            let points = fig2_inset(*inset);
            let base = sweep_with(&points, sets_per_point, seed, &registry, &base_cfg);
            assert_eq!(
                &base.rows,
                rows,
                "fig2{}: single-threaded uncached rows diverged",
                inset.letter()
            );
        }
        let baseline_secs = base_started.elapsed().as_secs_f64();
        let speedup = baseline_secs / perf.wall_secs.max(1e-9);
        perf.extra_num("baseline_secs", baseline_secs);
        perf.extra_num("speedup_vs_serial_uncached", speedup);
        println!(
            "baseline (1 job, no cache): {baseline_secs:.1}s → speedup {speedup:.2}× \
             (rows byte-identical)"
        );
    }

    // Certificate pass: outside every timed region and after the CSVs
    // are written, so measured rows are byte-identical with the flag on
    // or off. Each analyzed set is regenerated from the same seeds,
    // re-analyzed with a recorded proof transcript, and the bundle is
    // validated by the independent pmcs-cert checker.
    let mut certs = CertSummary::default();
    if cfg.emit_certs {
        for &inset in &insets {
            let points = fig2_inset(inset);
            let inset_certs = certify_sweep(&points, sets_per_point, seed, cfg.jobs);
            println!(
                "fig2{}: certificates — {} bundle(s) emitted, {} proof(s) accepted, \
                 {} rejection(s) ({:.1}s)",
                inset.letter(),
                inset_certs.emitted,
                inset_certs.checked,
                inset_certs.rejected,
                inset_certs.secs,
            );
            for line in &inset_certs.rejections {
                eprintln!("fig2{} {line}", inset.letter());
            }
            certs.merge(&inset_certs);
        }
    }
    perf.extra_cert(&certs);
    perf.extra_str("certs_enabled", if cfg.emit_certs { "yes" } else { "no" });

    let path = perf.write().expect("write perf record");
    println!("perf record: {}", path.display());

    if !certs.ok() {
        eprintln!(
            "certificate pass REJECTED {} certificate(s)",
            certs.rejected
        );
        std::process::exit(1);
    }
    if !refutations.is_empty() {
        eprintln!(
            "cross-validation REFUTED {} analytical bound(s):",
            refutations.len()
        );
        for line in &refutations {
            eprintln!("{line}");
        }
        std::process::exit(1);
    }
}
