//! Post-sweep certificate pass: proof-carrying verdicts for bench runs.
//!
//! With `--emit-certs` (or `PMCS_EMIT_CERTS=1`), every bench binary
//! re-runs the proposed analysis over the same deterministically
//! regenerated task sets **after** the timed sweep, this time with the
//! proof transcript recorded ([`pmcs_core::certify_task_set`]), and
//! validates each emitted bundle with the independent `pmcs-cert`
//! checker. The pass never touches the measured rows or CSVs — the
//! sweep's outputs are byte-identical with the flag on or off — it only
//! adds `cert_emitted` / `cert_checked` / `cert_rejected` counters to
//! `BENCH_<bin>.json` and makes the binary exit non-zero when any
//! certificate is rejected (or cannot be emitted).
//!
//! Task sets are regenerated from the same `(base_seed, point, set)`
//! seed derivation the sweep used, so the certified sets are exactly the
//! measured ones; the items fan out over the worker pool and the
//! rejection lines are merged in deterministic `(point, set)` order,
//! byte-identical for every thread count.

use pmcs_cert::check_certificate_set;
use pmcs_core::{certify_task_set, ExactEngine};
use pmcs_workload::{derive_seed, TaskSetGenerator};

use crate::experiment::SweepPoint;
use crate::parallel::parallel_map;

/// Counters and rejection lines accumulated by a certificate pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CertSummary {
    /// Certificate bundles successfully emitted (one per task set).
    pub emitted: u64,
    /// Individual certificates the independent checker accepted
    /// (windows + WCRT fixed points + set-level transcripts).
    pub checked: u64,
    /// Rejections: checker refusals plus emission failures.
    pub rejected: u64,
    /// Wall-clock seconds spent emitting and checking (outside every
    /// timed region).
    pub secs: f64,
    /// Machine-readable rejection lines, in deterministic item order.
    pub rejections: Vec<String>,
}

impl CertSummary {
    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &CertSummary) {
        self.emitted += other.emitted;
        self.checked += other.checked;
        self.rejected += other.rejected;
        self.secs += other.secs;
        self.rejections.extend(other.rejections.iter().cloned());
    }

    /// `true` iff every bundle was emitted and accepted.
    pub fn ok(&self) -> bool {
        self.rejected == 0
    }
}

/// Certifies one task set and validates the bundle, labelling any
/// rejection lines with `label`.
pub fn certify_set(set: &pmcs_model::TaskSet, label: &str) -> CertSummary {
    let t0 = std::time::Instant::now();
    let mut summary = CertSummary::default();
    match certify_task_set(set, &ExactEngine::default()) {
        Ok((_, bundle)) => {
            summary.emitted += 1;
            let report = check_certificate_set(&bundle);
            summary.checked += report.checked as u64;
            summary.rejected += report.rejections.len() as u64;
            summary.rejections.extend(
                report
                    .rejections
                    .iter()
                    .map(|r| format!("{label} REJECTED code={} detail={}", r.code, r.detail)),
            );
        }
        Err(e) => {
            summary.rejected += 1;
            summary
                .rejections
                .push(format!("{label} REJECTED code=emit.failed detail={e}"));
        }
    }
    summary.secs = t0.elapsed().as_secs_f64();
    summary
}

/// Runs the certificate pass over the same `(point, set)` grid a sweep
/// analyzed: regenerates every task set from `(base_seed, point, set)`
/// via [`derive_seed`] and certifies it, fanning the items across `jobs`
/// workers.
pub fn certify_sweep(
    points: &[SweepPoint],
    sets_per_point: usize,
    base_seed: u64,
    jobs: usize,
) -> CertSummary {
    let items: Vec<(usize, usize)> = (0..points.len())
        .flat_map(|pi| (0..sets_per_point).map(move |si| (pi, si)))
        .collect();
    let summaries = parallel_map(&items, jobs, |_, &(pi, si)| {
        let seed = derive_seed(base_seed, pi as u64, si as u64);
        let set = TaskSetGenerator::new(points[pi].config.clone(), seed).generate();
        certify_set(&set, &format!("point={pi} set={si}"))
    });
    let mut total = CertSummary::default();
    for s in &summaries {
        total.merge(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_workload::TaskSetConfig;

    fn points() -> Vec<SweepPoint> {
        [0.1, 0.3]
            .iter()
            .map(|&u| SweepPoint {
                x: u,
                config: TaskSetConfig {
                    n: 3,
                    utilization: u,
                    ..TaskSetConfig::default()
                },
            })
            .collect()
    }

    #[test]
    fn sweep_certificates_are_accepted() {
        let summary = certify_sweep(&points(), 2, 42, 2);
        assert_eq!(summary.emitted, 4);
        assert!(summary.checked > 0);
        assert!(summary.ok(), "rejections: {:?}", summary.rejections);
    }

    #[test]
    fn pass_is_deterministic_across_thread_counts() {
        let serial = certify_sweep(&points(), 2, 42, 1);
        let parallel = certify_sweep(&points(), 2, 42, 4);
        assert_eq!(serial.emitted, parallel.emitted);
        assert_eq!(serial.checked, parallel.checked);
        assert_eq!(serial.rejections, parallel.rejections);
    }

    #[test]
    fn single_set_certification_counts_once() {
        let set = TaskSetGenerator::new(
            TaskSetConfig {
                n: 3,
                utilization: 0.2,
                ..TaskSetConfig::default()
            },
            7,
        )
        .generate();
        let summary = certify_set(&set, "demo");
        assert_eq!(summary.emitted, 1);
        assert!(summary.ok(), "rejections: {:?}", summary.rejections);
    }
}
