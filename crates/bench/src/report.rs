//! CSV output and ASCII charts for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::experiment::{Approach, SweepRow};

/// Renders sweep rows as CSV text (header + one row per point). The
/// rendering is a pure function of its inputs, which is what the
/// determinism tests compare byte-for-byte across thread counts.
pub fn csv_string(x_label: &str, rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for a in Approach::ALL {
        let _ = write!(out, ",{}", a.label());
    }
    let _ = writeln!(out, ",sets");
    for r in rows {
        let _ = write!(out, "{:.3}", r.x);
        for v in r.ratios {
            let _ = write!(out, ",{v:.4}");
        }
        let _ = writeln!(out, ",{}", r.sets);
    }
    out
}

/// Writes sweep rows as CSV (header + one row per point).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, x_label: &str, rows: &[SweepRow]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, csv_string(x_label, rows))
}

/// Renders sweep rows as a fixed-height ASCII line chart, one glyph per
/// approach (`P` proposed, `W` WP, `N` NPS-carry, `n` NPS-classic);
/// overlapping points print the higher-priority glyph.
pub fn ascii_chart(rows: &[SweepRow], x_label: &str) -> String {
    const HEIGHT: usize = 12;
    let glyphs = ['P', 'W', 'N', 'n'];
    let width = rows.len();
    let mut grid = vec![vec![' '; width]; HEIGHT + 1];
    for (col, r) in rows.iter().enumerate() {
        // Draw lowest-priority glyphs first so P wins collisions.
        for ai in (0..4).rev() {
            let v = r.ratios[ai].clamp(0.0, 1.0);
            let row = HEIGHT - (v * HEIGHT as f64).round() as usize;
            grid[row][col] = glyphs[ai];
        }
    }
    let mut out = String::new();
    for (i, line) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / HEIGHT as f64;
        let _ = writeln!(out, "{y:>5.2} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    let xs: Vec<String> = rows.iter().map(|r| format!("{:.2}", r.x)).collect();
    let _ = writeln!(out, "      {x_label}: {}", xs.join(" "));
    let _ = writeln!(out, "      P=proposed W=wp N=nps(carry) n=nps(classic)");
    out
}

/// Formats rows as an aligned text table.
pub fn text_table(rows: &[SweepRow], x_label: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for a in Approach::ALL {
        let _ = write!(out, "{:>12}", a.label());
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:>12.3}", r.x);
        for v in r.ratios {
            let _ = write!(out, "{v:>12.3}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SweepRow> {
        vec![
            SweepRow {
                x: 0.1,
                ratios: [1.0, 0.9, 0.8, 0.9],
                sets: 10,
            },
            SweepRow {
                x: 0.2,
                ratios: [0.7, 0.4, 0.5, 0.6],
                sets: 10,
            },
        ]
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("pmcs-bench-test");
        let path = dir.join("out.csv");
        write_csv(&path, "utilization", &rows()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("utilization,proposed,wp,nps,nps-classic,sets"));
        assert!(text.contains("0.100,1.0000,0.9000,0.8000,0.9000,10"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chart_contains_glyphs_and_axis() {
        let chart = ascii_chart(&rows(), "U");
        assert!(chart.contains('P'));
        assert!(chart.contains("U: 0.10 0.20"));
        assert!(chart.contains("1.00 |"));
    }

    #[test]
    fn table_is_aligned() {
        let t = text_table(&rows(), "U");
        assert!(t.contains("proposed"));
        assert_eq!(t.lines().count(), 3);
    }
}
