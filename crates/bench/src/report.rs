//! CSV output and ASCII charts for experiment results.
//!
//! Everything here is label-driven: columns come from the sweep's
//! [`SweepOutcome::labels`](crate::SweepOutcome) (registry order), so a
//! newly registered approach shows up in CSVs, tables, and charts
//! without touching this module.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::experiment::SweepRow;

/// Renders sweep rows as CSV text (header + one row per point). The
/// rendering is a pure function of its inputs, which is what the
/// determinism tests compare byte-for-byte across thread counts.
pub fn csv_string(x_label: &str, labels: &[String], rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for label in labels {
        let _ = write!(out, ",{label}");
    }
    let _ = writeln!(out, ",sets");
    for r in rows {
        let _ = write!(out, "{:.3}", r.x);
        for v in &r.ratios {
            let _ = write!(out, ",{v:.4}");
        }
        let _ = writeln!(out, ",{}", r.sets);
    }
    out
}

/// Writes sweep rows as CSV (header + one row per point).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: &Path,
    x_label: &str,
    labels: &[String],
    rows: &[SweepRow],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, csv_string(x_label, labels, rows))
}

/// Assigns one chart glyph per label: the uppercased first letter, the
/// lowercased one when that is taken, then a digit. For the standard
/// registry this reproduces the historical `P`/`W`/`N`/`n` glyphs.
fn chart_glyphs(labels: &[String]) -> Vec<char> {
    let mut used: Vec<char> = Vec::with_capacity(labels.len());
    for label in labels {
        let first = label.chars().next().unwrap_or('?');
        let g = [first.to_ascii_uppercase(), first.to_ascii_lowercase()]
            .into_iter()
            .find(|c| !used.contains(c))
            .unwrap_or_else(|| ('0'..='9').find(|c| !used.contains(c)).unwrap_or('?'));
        used.push(g);
    }
    used
}

/// Renders sweep rows as a fixed-height ASCII line chart, one glyph per
/// approach (see [`chart_glyphs`]; for the standard registry `P`
/// proposed, `W` WP, `N` NPS-carry, `n` NPS-classic); overlapping points
/// print the earlier-registered glyph.
pub fn ascii_chart(rows: &[SweepRow], labels: &[String], x_label: &str) -> String {
    const HEIGHT: usize = 12;
    let glyphs = chart_glyphs(labels);
    let width = rows.len();
    let mut grid = vec![vec![' '; width]; HEIGHT + 1];
    for (col, r) in rows.iter().enumerate() {
        // Draw later-registered glyphs first so earlier ones (the
        // proposed approach leads the standard registry) win collisions.
        for ai in (0..r.ratios.len().min(glyphs.len())).rev() {
            let v = r.ratios[ai].clamp(0.0, 1.0);
            let row = HEIGHT - (v * HEIGHT as f64).round() as usize;
            grid[row][col] = glyphs[ai];
        }
    }
    let mut out = String::new();
    for (i, line) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / HEIGHT as f64;
        let _ = writeln!(out, "{y:>5.2} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    let xs: Vec<String> = rows.iter().map(|r| format!("{:.2}", r.x)).collect();
    let _ = writeln!(out, "      {x_label}: {}", xs.join(" "));
    let legend: Vec<String> = glyphs
        .iter()
        .zip(labels)
        .map(|(g, label)| format!("{g}={label}"))
        .collect();
    let _ = writeln!(out, "      {}", legend.join(" "));
    out
}

/// Formats rows as an aligned text table.
pub fn text_table(rows: &[SweepRow], labels: &[String], x_label: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for label in labels {
        let _ = write!(out, "{label:>12}");
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:>12.3}", r.x);
        for v in &r.ratios {
            let _ = write!(out, "{v:>12.3}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<String> {
        ["proposed", "wp", "nps", "nps-classic"]
            .map(String::from)
            .to_vec()
    }

    fn rows() -> Vec<SweepRow> {
        vec![
            SweepRow {
                x: 0.1,
                ratios: vec![1.0, 0.9, 0.8, 0.9],
                failures: vec![0; 4],
                sets: 10,
            },
            SweepRow {
                x: 0.2,
                ratios: vec![0.7, 0.4, 0.5, 0.6],
                failures: vec![0; 4],
                sets: 10,
            },
        ]
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("pmcs-bench-test");
        let path = dir.join("out.csv");
        write_csv(&path, "utilization", &labels(), &rows()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("utilization,proposed,wp,nps,nps-classic,sets"));
        assert!(text.contains("0.100,1.0000,0.9000,0.8000,0.9000,10"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn glyphs_reproduce_the_historical_assignment() {
        assert_eq!(chart_glyphs(&labels()), ['P', 'W', 'N', 'n']);
        // A clashing fifth label degrades to a digit, never panics.
        let mut five = labels();
        five.push("np-extra".into());
        assert_eq!(chart_glyphs(&five), ['P', 'W', 'N', 'n', '0']);
    }

    #[test]
    fn chart_contains_glyphs_and_axis() {
        let chart = ascii_chart(&rows(), &labels(), "U");
        assert!(chart.contains('P'));
        assert!(chart.contains("U: 0.10 0.20"));
        assert!(chart.contains("1.00 |"));
        assert!(chart.contains("P=proposed"));
        assert!(chart.contains("n=nps-classic"));
    }

    #[test]
    fn table_is_aligned() {
        let t = text_table(&rows(), &labels(), "U");
        assert!(t.contains("proposed"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn a_fifth_column_needs_no_code_change() {
        let mut labels = labels();
        labels.push("wp-milp".into());
        let rows = vec![SweepRow {
            x: 0.1,
            ratios: vec![1.0, 0.9, 0.8, 0.9, 0.95],
            failures: vec![0; 5],
            sets: 10,
        }];
        let csv = csv_string("U", &labels, &rows);
        assert!(csv.starts_with("U,proposed,wp,nps,nps-classic,wp-milp,sets"));
        assert!(csv.contains("0.100,1.0000,0.9000,0.8000,0.9000,0.9500,10"));
        assert!(text_table(&rows, &labels, "U").contains("wp-milp"));
    }
}
