//! # pmcs-bench
//!
//! Experiment harness regenerating the evaluation of Section VII:
//!
//! * [`experiment`] — schedulability-ratio sweeps over utilization `U`,
//!   memory-intensity `γ` and deadline-tightness `β`, comparing whatever
//!   approaches a [`pmcs_analysis::Registry`] holds (by default the
//!   proposed protocol, the Wasly-Pellizzoni baseline, and the two
//!   non-preemptive variants);
//! * [`figures`] — the concrete configurations of Figure 2 insets (a)–(f)
//!   and the Figure 1 scenario;
//! * [`report`] — CSV output and ASCII line charts for terminal viewing.
//!
//! Binaries:
//!
//! * `fig1` — regenerates the Figure 1 example schedules (WP miss,
//!   NPS meet, plus the proposed protocol rescuing the task);
//! * `fig2 <a..f>` — regenerates one inset of Figure 2;
//! * `runtime_table` — the analysis-runtime measurements reported in
//!   prose in Section VII.
//!
//! All binaries resolve their execution knobs through
//! [`pmcs_analysis::AnalysisConfig::resolve`] at the CLI edge — `--jobs N`
//! beats the `PMCS_JOBS` environment variable beats the machine default,
//! and likewise for `PMCS_AUDIT` — then write a machine-readable
//! `BENCH_<bin>.json` perf record ([`perf`]); results are byte-identical
//! for every thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod certs;
pub mod experiment;
pub mod figures;
pub mod multicore;
pub mod parallel;
pub mod perf;
pub mod report;

pub use campaign::{
    bin_of, run_campaign, CampaignConfig, CampaignOutcome, MeasuredRow, PolicyHist, BINS,
};
pub use certs::{certify_set, certify_sweep, CertSummary};
pub use experiment::{
    evaluate_set, evaluate_set_with_reports, evaluate_set_with_stats, sweep, sweep_with,
    SetOutcome, SweepOutcome, SweepPoint, SweepRow,
};
pub use figures::{fig1_task_set, fig2_inset, Fig2Inset};
pub use multicore::{sweep_multicore, MulticoreConfig, MulticoreOutcome, MulticoreRow};
pub use parallel::{parallel_map, parallel_map_with};
pub use perf::{PerfPoint, PerfRecord};
pub use report::{ascii_chart, csv_string, write_csv};
