//! # pmcs-bench
//!
//! Experiment harness regenerating the evaluation of Section VII:
//!
//! * [`experiment`] — schedulability-ratio sweeps over utilization `U`,
//!   memory-intensity `γ` and deadline-tightness `β`, comparing the
//!   proposed protocol, the Wasly-Pellizzoni baseline, and non-preemptive
//!   scheduling;
//! * [`figures`] — the concrete configurations of Figure 2 insets (a)–(f)
//!   and the Figure 1 scenario;
//! * [`report`] — CSV output and ASCII line charts for terminal viewing.
//!
//! Binaries:
//!
//! * `fig1` — regenerates the Figure 1 example schedules (WP miss,
//!   NPS meet, plus the proposed protocol rescuing the task);
//! * `fig2 <a..f>` — regenerates one inset of Figure 2;
//! * `runtime_table` — the analysis-runtime measurements reported in
//!   prose in Section VII.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod figures;
pub mod report;

pub use experiment::{evaluate_set, sweep, Approach, SweepPoint, SweepRow};
pub use figures::{fig1_task_set, fig2_inset, Fig2Inset};
pub use report::{ascii_chart, write_csv};
