//! Fleet-scale Monte-Carlo campaigns: million-plan falsification sweeps
//! over every registered policy.
//!
//! A campaign takes one generated workload, computes the analytical WCRT
//! bounds of every registered approach once, then streams `plans`
//! adversarial release plans per approach through the workspace-reuse
//! kernel ([`pmcs_sim::kernel` `run_streaming`]) — no trace is ever
//! materialized; each job's response folds into a fixed log-scale
//! response-time histogram and is checked live against the analytical
//! bound. Any exceedance is a machine-readable refutation and the
//! campaign exits nonzero.
//!
//! Three sections:
//!
//! 1. **single-core** — the full `plans` budget per approach on the
//!    generated set;
//! 2. **regulated-bus** — the workload partitioned onto `cores` cores
//!    sharing a bandwidth-regulated bus, each core's contention-inflated
//!    set streamed under `plans / 10` plans per approach;
//! 3. **measured (EMA)** — the set's execution times replaced by EMA
//!    predictions over simulated history
//!    ([`pmcs_workload::measured_set`]), `plans / 20` plans per
//!    approach, reporting how far measured worst responses sit below the
//!    declared-WCET analytical bounds (the sensitivity column).
//!
//! Plans are sharded across `jobs` workers in fixed-size slices; every
//! worker owns one [`SimScratch`] (pooled workspace + plan buffer), plan
//! seeds are position-derived ([`adversarial_spec`]), and shard results
//! merge in shard order — the outcome, including
//! [`CampaignOutcome::report_text`], is byte-identical for every thread
//! count.
//!
//! The campaign also times a **baseline**: the pre-refactor
//! fresh-allocation loop (allocating plan generation, traced simulation,
//! per-task trace scans) over a bounded subsample, so
//! `BENCH_campaign.json` records the workspace-reuse speedup next to the
//! campaign throughput.

use std::fmt::Write as _;
use std::time::Instant;

use pmcs_analysis::{
    plan_horizon, AnalysisConfig, AnalysisContext, AnalysisError, Registry, SimScratch,
};
use pmcs_core::{partition_regulated, Heuristic, Inflation};
use pmcs_model::{BusModel, Sensitivity, TaskSet, Time};
use pmcs_sim::kernel::run_streaming;
use pmcs_workload::ema::DEFAULT_ALPHA;
use pmcs_workload::{
    adversarial_plan, adversarial_plan_into, adversarial_spec, derive_seed, measured_set,
    MeasuredTask, TaskSetConfig, TaskSetGenerator,
};

use crate::parallel::parallel_map_with;

/// Histogram resolution: one bin per power of two of the response in
/// ticks (bin 0 = zero-tick responses, bin `k` = `[2^(k-1), 2^k)`).
pub const BINS: usize = 64;

/// Seed-stream tags separating the three campaign sections (and the
/// EMA history stream) from each other.
const SINGLE_STREAM: u64 = 0xca3_0001;
const BUS_STREAM: u64 = 0xca3_0002;
const MEASURED_STREAM: u64 = 0xca3_0003;

/// The log-scale bin a response falls into.
pub fn bin_of(response: Time) -> usize {
    let ticks = response.as_ticks();
    if ticks <= 0 {
        0
    } else {
        ((64 - (ticks as u64).leading_zeros()) as usize).min(BINS - 1)
    }
}

/// Configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Plans per approach in the single-core section (the regulated-bus
    /// section runs `plans / 10` per approach per core, the measured
    /// section `plans / 20` per approach).
    pub plans: usize,
    /// Tasks in the generated workload.
    pub tasks: usize,
    /// Total utilization of the generated workload.
    pub util: f64,
    /// Base seed; all plan seeds and the EMA history derive from it.
    pub seed: u64,
    /// Cores sharing the regulated bus in section 2.
    pub cores: usize,
    /// Plans per worker shard — fixed (never derived from `jobs`) so
    /// shard boundaries, and with them the merged refutation order, are
    /// thread-count independent.
    pub shard: usize,
    /// Simulated execution samples fed to the EMA predictor per task.
    pub history: usize,
    /// Upper bound on fresh-allocation baseline simulations.
    pub baseline_cap: usize,
    /// Engine-stack configuration (jobs, cache, LP backend, …).
    pub analysis: AnalysisConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        // util 0.25: the regime where the proposed analysis and both NPS
        // conventions certify the generated set (their WCRT bounds are
        // then live-checked on every plan); WP's pessimistic verdict at
        // this level is itself a paper-faithful data point.
        CampaignConfig {
            plans: 1_000_000,
            tasks: 5,
            util: 0.25,
            seed: 42,
            cores: 2,
            shard: 4096,
            history: 64,
            baseline_cap: 20_000,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// Merged per-policy streaming statistics of one campaign section.
#[derive(Debug, Clone)]
pub struct PolicyHist {
    /// Approach / policy name.
    pub label: String,
    /// Plans streamed.
    pub plans: u64,
    /// Job responses folded into the histogram.
    pub responses: u64,
    /// Worst response observed across all plans.
    pub worst: Option<Time>,
    /// Worst response per task (by task index of the marked set).
    pub worst_by_task: Vec<Option<Time>>,
    /// Largest analytical WCRT bound (`None` when the approach reported
    /// the set unschedulable — bounds are then not operational and are
    /// not checked, matching `cross_validate_report`).
    pub bound: Option<Time>,
    /// Deadline misses observed (counted, never hidden; a miss alone is
    /// not a refutation unless a checked bound is exceeded).
    pub misses: u64,
    /// Log-scale response histogram ([`bin_of`]).
    pub bins: Vec<u64>,
}

impl PolicyHist {
    fn new(label: &str, n_tasks: usize, bound: Option<Time>) -> Self {
        PolicyHist {
            label: label.to_string(),
            plans: 0,
            responses: 0,
            worst: None,
            worst_by_task: vec![None; n_tasks],
            bound,
            misses: 0,
            bins: vec![0; BINS],
        }
    }

    fn merge(&mut self, other: &PolicyHist) {
        self.plans += other.plans;
        self.responses += other.responses;
        self.worst = max_opt(self.worst, other.worst);
        for (a, &b) in self.worst_by_task.iter_mut().zip(&other.worst_by_task) {
            *a = max_opt(*a, b);
        }
        self.misses += other.misses;
        for (a, &b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    /// Renders the non-empty bins as `[lo,hi):count` pairs.
    pub fn hist_line(&self) -> String {
        let mut out = String::new();
        for (k, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if k == 0 {
                let _ = write!(out, "[0,1):{n}");
            } else {
                let _ = write!(out, "[{},{}):{n}", 1u64 << (k - 1), 1u128 << k);
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

fn max_opt(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Measured-vs-declared sensitivity of one approach (section 3).
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Approach name.
    pub label: String,
    /// Worst response observed on the measured (EMA) set.
    pub worst: Option<Time>,
    /// Largest declared-WCET analytical bound of the approach.
    pub declared_bound: Option<Time>,
    /// `max_i observed_i / bound_i` over tasks with both numbers: how
    /// much of the declared-WCET budget measured execution actually
    /// uses. `None` when the approach had no checked bounds.
    pub sensitivity: Option<f64>,
}

/// Result of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Approach names, in registry order (row order of every section).
    pub labels: Vec<String>,
    /// Single-core section, one row per approach.
    pub single: Vec<PolicyHist>,
    /// Regulated-bus section, one row per approach (merged over cores);
    /// empty when the workload could not be partitioned.
    pub bus: Vec<PolicyHist>,
    /// Deterministic description of the bus section (cores, bus, plans
    /// per core) for the report.
    pub bus_desc: String,
    /// Measured-mode sensitivity, one row per approach.
    pub measured: Vec<MeasuredRow>,
    /// Per-task EMA predictions and execution classes.
    pub classes: Vec<MeasuredTask>,
    /// Machine-readable refutation lines, in deterministic
    /// (section, shard, approach, plan) order. Must be empty.
    pub refutations: Vec<String>,
    /// Streaming simulations run across all sections.
    pub sims_run: u64,
    /// Wall-clock seconds spent in the sharded streaming sections.
    pub campaign_secs: f64,
    /// Simulations that reused a warm workspace.
    pub ws_reused: u64,
    /// Fresh-allocation baseline simulations run.
    pub baseline_sims: u64,
    /// Wall-clock seconds of the baseline loop.
    pub baseline_secs: f64,
    /// End-to-end wall-clock seconds (analysis + campaign + baseline).
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Configuration echo for the report header.
    pub config_line: String,
}

impl CampaignOutcome {
    /// Streaming simulations per wall-clock second.
    pub fn plans_per_sec(&self) -> f64 {
        rate(self.sims_run, self.campaign_secs)
    }

    /// Baseline (fresh-allocation, traced) simulations per second.
    pub fn baseline_plans_per_sec(&self) -> f64 {
        rate(self.baseline_sims, self.baseline_secs)
    }

    /// Campaign throughput over baseline throughput.
    pub fn speedup(&self) -> f64 {
        let base = self.baseline_plans_per_sec();
        if base > 0.0 {
            self.plans_per_sec() / base
        } else {
            0.0
        }
    }

    /// The deterministic campaign report: configuration, per-section
    /// per-policy statistics and histograms, the sensitivity column, and
    /// every refutation line. Contains no timings, so two runs with
    /// different `--jobs` produce byte-identical files.
    pub fn report_text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "campaign {}", self.config_line);
        let _ = writeln!(o, "single-core:");
        for h in &self.single {
            render_policy(&mut o, h);
        }
        let _ = writeln!(o, "regulated-bus: {}", self.bus_desc);
        for h in &self.bus {
            render_policy(&mut o, h);
        }
        let _ = writeln!(o, "measured (ema alpha={DEFAULT_ALPHA}):");
        let mut classes = String::new();
        for mt in &self.classes {
            if !classes.is_empty() {
                classes.push(' ');
            }
            let _ = write!(
                classes,
                "{}={}(declared={} predicted={})",
                mt.task,
                mt.class.name(),
                mt.declared,
                mt.predicted
            );
        }
        let _ = writeln!(o, "  classes: {classes}");
        for m in &self.measured {
            let _ = writeln!(
                o,
                "  {}: worst={} declared-bound={} sensitivity={}",
                m.label,
                fmt_opt(m.worst),
                fmt_opt(m.declared_bound),
                m.sensitivity
                    .map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
            );
        }
        let _ = writeln!(o, "refutations: {}", self.refutations.len());
        for r in &self.refutations {
            let _ = writeln!(o, "  {r}");
        }
        o
    }
}

fn render_policy(o: &mut String, h: &PolicyHist) {
    let _ = writeln!(
        o,
        "  {}: plans={} responses={} worst={} bound={} misses={}",
        h.label,
        h.plans,
        h.responses,
        fmt_opt(h.worst),
        fmt_opt(h.bound),
        h.misses,
    );
    let _ = writeln!(o, "    hist: {}", h.hist_line());
}

fn fmt_opt(t: Option<Time>) -> String {
    t.map_or_else(|| "-".to_string(), |t| t.to_string())
}

fn rate(count: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// One approach prepared for streaming: the LS-marked set the analysis
/// actually bounded, per-task bounds (by task index; `None` when not
/// checked), and the horizons.
struct Prep {
    name: String,
    marked: TaskSet,
    bounds: Vec<Option<Time>>,
    release_horizon: Time,
    horizon: Time,
}

/// Analyzes `set` under every registered approach and builds the
/// streaming preps. Bounds are kept only for schedulable reports
/// (matching `cross_validate_report`'s convention).
fn prep_approaches(
    set: &TaskSet,
    registry: &Registry,
    ctx: &AnalysisContext,
) -> Result<Vec<Prep>, AnalysisError> {
    let mut preps = Vec::with_capacity(registry.len());
    for analyzer in registry.iter() {
        let report = analyzer.analyze_with(set, ctx)?;
        let mut marked = set.clone();
        for t in &report.tasks {
            if let Some(s) = t.sensitivity {
                marked = marked
                    .with_sensitivity(t.task, s)
                    .map_err(|e| AnalysisError::Core(pmcs_core::CoreError::Model(e)))?;
            }
        }
        let bounds: Vec<Option<Time>> = marked
            .tasks()
            .iter()
            .map(|task| {
                if report.schedulable() {
                    report
                        .tasks
                        .iter()
                        .find(|t| t.task == task.id())
                        .map(|t| t.wcrt)
                } else {
                    None
                }
            })
            .collect();
        let release_horizon = plan_horizon(&marked);
        let max_d = marked
            .iter()
            .map(|t| t.deadline())
            .max()
            .unwrap_or(Time::ZERO);
        let tail: i64 = marked.iter().map(|t| t.wcet_serialized().as_ticks()).sum();
        preps.push(Prep {
            name: analyzer.name().to_string(),
            marked,
            bounds,
            release_horizon,
            horizon: release_horizon + max_d + Time::from_ticks(2 * tail),
        });
    }
    Ok(preps)
}

/// Per-shard accumulator (one per approach).
struct ShardStats {
    plans: u64,
    responses: u64,
    worst: Option<Time>,
    worst_by_task: Vec<Option<Time>>,
    misses: u64,
    bins: Vec<u64>,
    refutations: Vec<String>,
}

/// Streams `plans` plans per prep across the worker pool in fixed-size
/// shards, folding histograms and checking bounds live. Returns the
/// merged per-prep statistics, the refutation lines (shard order), and
/// the simulation / workspace-reuse counters.
fn run_sharded(
    preps: &[Prep],
    plans: usize,
    base_seed: u64,
    shard: usize,
    jobs: usize,
) -> (Vec<PolicyHist>, Vec<String>, u64, u64) {
    let shard = shard.max(1);
    let shards: Vec<(usize, usize)> = (0..plans)
        .step_by(shard)
        .map(|s| (s, (s + shard).min(plans)))
        .collect();
    let (shard_outs, scratches) = parallel_map_with(
        &shards,
        jobs,
        SimScratch::new,
        |scratch, _, &(start, end)| {
            let sims = pmcs_sim::Registry::standard();
            let mut out: Vec<ShardStats> = preps
                .iter()
                .map(|p| ShardStats {
                    plans: 0,
                    responses: 0,
                    worst: None,
                    worst_by_task: vec![None; p.marked.len()],
                    misses: 0,
                    bins: vec![0; BINS],
                    refutations: Vec::new(),
                })
                .collect();
            for (pi, prep) in preps.iter().enumerate() {
                let policy = sims
                    .get(&prep.name)
                    .expect("analyzer and simulator registries are aligned");
                for i in start..end {
                    let spec = adversarial_spec(i, base_seed);
                    adversarial_plan_into(
                        &prep.marked,
                        prep.release_horizon,
                        spec,
                        &mut scratch.plan,
                    );
                    let s = &mut out[pi];
                    let stats = run_streaming(
                        &prep.marked,
                        &scratch.plan,
                        policy,
                        prep.horizon,
                        &mut scratch.ws,
                        |_, r| {
                            s.bins[bin_of(r)] += 1;
                            s.responses += 1;
                            s.worst = max_opt(s.worst, Some(r));
                        },
                    );
                    let s = &mut out[pi];
                    s.plans += 1;
                    s.misses += stats.total_misses();
                    for ti in 0..prep.marked.len() {
                        s.worst_by_task[ti] =
                            max_opt(s.worst_by_task[ti], stats.worst_response(ti));
                    }
                    for (ti, bound) in prep.bounds.iter().enumerate() {
                        if let (Some(b), Some(w)) = (*bound, stats.worst_response(ti)) {
                            if w > b {
                                s.refutations.push(format!(
                                    "REFUTATION approach={} plan={} kind=bound-exceeded \
                                     task={} observed={} bound={}",
                                    prep.name,
                                    spec,
                                    prep.marked.tasks()[ti].id(),
                                    w,
                                    b,
                                ));
                            }
                        }
                    }
                }
            }
            out
        },
    );

    let mut hists: Vec<PolicyHist> = preps
        .iter()
        .map(|p| {
            let bound = p.bounds.iter().filter_map(|&b| b).max();
            PolicyHist::new(&p.name, p.marked.len(), bound)
        })
        .collect();
    let mut refutations = Vec::new();
    let mut sims_run = 0u64;
    for shard_out in &shard_outs {
        for (h, s) in hists.iter_mut().zip(shard_out) {
            h.plans += s.plans;
            h.responses += s.responses;
            h.worst = max_opt(h.worst, s.worst);
            for (a, &b) in h.worst_by_task.iter_mut().zip(&s.worst_by_task) {
                *a = max_opt(*a, b);
            }
            h.misses += s.misses;
            for (a, &b) in h.bins.iter_mut().zip(&s.bins) {
                *a += b;
            }
            sims_run += s.plans;
            refutations.extend(s.refutations.iter().cloned());
        }
    }
    let ws_reused: u64 = scratches.iter().map(|s| s.ws.reuses()).sum();
    (hists, refutations, sims_run, ws_reused)
}

/// Runs the full campaign described in the module docs.
///
/// # Errors
///
/// Propagates analysis failures (a campaign with no analytical bounds to
/// falsify is meaningless).
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, AnalysisError> {
    let started = Instant::now();
    let registry = Registry::standard();
    let ctx = AnalysisContext::new(&cfg.analysis);
    let jobs = cfg.analysis.jobs;

    // The single-core workload: `tasks` tasks at `util`, lowest priority
    // marked latency-sensitive so the LS rules (R3, R4) are exercised.
    let set = {
        let config = TaskSetConfig {
            n: cfg.tasks,
            utilization: cfg.util,
            ..TaskSetConfig::default()
        };
        let set = TaskSetGenerator::new(config, cfg.seed).generate();
        let lowest = set
            .iter()
            .max_by_key(|t| t.priority().0)
            .map(|t| t.id())
            .expect("generated set is non-empty");
        set.with_sensitivity(lowest, Sensitivity::Ls)
            .map_err(|e| AnalysisError::Core(pmcs_core::CoreError::Model(e)))?
    };
    let preps = prep_approaches(&set, &registry, &ctx)?;

    let mut refutations = Vec::new();
    let mut sims_run = 0u64;
    let mut ws_reused = 0u64;
    let campaign_started = Instant::now();

    // Section 1: single-core, the full plan budget.
    let single_seed = derive_seed(cfg.seed, SINGLE_STREAM, 0);
    let (single, refs, sims, reused) = run_sharded(&preps, cfg.plans, single_seed, cfg.shard, jobs);
    refutations.extend(refs.into_iter().map(|r| format!("section=single {r}")));
    sims_run += sims;
    ws_reused += reused;

    // Section 2: the regulated-bus platform. A separate workload sized
    // like the multicore sweeps (memory intensity scaled to the fair
    // share) is partitioned first-fit; each core's contention-inflated
    // set streams plans/10 per approach.
    let bus_plans = (cfg.plans / 10).max(1);
    let cores = cfg.cores.max(1);
    let period = Time::from_ticks(200);
    let budget = Time::from_ticks((period.as_ticks() / cores as i64).max(1));
    let bus_workload = TaskSetConfig {
        n: 2 * cores,
        utilization: 0.25 * cores as f64,
        gamma: 0.3 / cores as f64,
        ..TaskSetConfig::default()
    };
    let bus_tasks = TaskSetGenerator::new(bus_workload, derive_seed(cfg.seed, BUS_STREAM, 0))
        .generate()
        .tasks()
        .to_vec();
    let bus = BusModel::uniform(period, cores, budget)
        .map_err(|e| AnalysisError::Core(pmcs_core::CoreError::Model(e)))?;
    let mut bus_hists: Vec<PolicyHist> = Vec::new();
    let bus_desc;
    match partition_regulated(bus_tasks, cores, &bus, Heuristic::FirstFit, ctx.engine()) {
        Ok(Ok(partitioning)) => {
            bus_desc = format!("cores={cores} P={period} Q={budget} plans-per-core={bus_plans}");
            for (core, core_set) in partitioning.platform.iter() {
                let inflated = Inflation::for_core(&bus, core)
                    .inflate_set(core_set)
                    .map_err(AnalysisError::Core)?;
                let core_preps = prep_approaches(&inflated, &registry, &ctx)?;
                let core_seed = derive_seed(cfg.seed, BUS_STREAM, 1 + u64::from(core.0));
                let (hists, refs, sims, reused) =
                    run_sharded(&core_preps, bus_plans, core_seed, cfg.shard, jobs);
                refutations.extend(
                    refs.into_iter()
                        .map(|r| format!("section=bus core={core} {r}")),
                );
                sims_run += sims;
                ws_reused += reused;
                if bus_hists.is_empty() {
                    bus_hists = hists;
                } else {
                    for (a, b) in bus_hists.iter_mut().zip(&hists) {
                        a.merge(b);
                    }
                }
            }
        }
        Ok(Err(unplaced)) => {
            bus_desc = format!(
                "skipped: {} fits on none of the {} core(s)",
                unplaced.task, unplaced.cores
            );
        }
        Err(e) => return Err(AnalysisError::Core(e)),
    }

    // Section 3: measured mode. Each approach's marked set gets its
    // execution times replaced by EMA predictions over simulated
    // history; plans/20 per approach, no bound checks (the bounds were
    // derived for the declared WCETs — the point is the headroom).
    let ema_plans = (cfg.plans / 20).max(1);
    let history_seed = derive_seed(cfg.seed, MEASURED_STREAM, 0);
    let mut classes = Vec::new();
    let mut measured_preps = Vec::with_capacity(preps.len());
    for prep in &preps {
        let (mset, info) = measured_set(&prep.marked, cfg.history, DEFAULT_ALPHA, history_seed);
        if classes.is_empty() {
            classes = info;
        }
        let release_horizon = plan_horizon(&mset);
        let max_d = mset
            .iter()
            .map(|t| t.deadline())
            .max()
            .unwrap_or(Time::ZERO);
        let tail: i64 = mset.iter().map(|t| t.wcet_serialized().as_ticks()).sum();
        measured_preps.push(Prep {
            name: prep.name.clone(),
            marked: mset,
            bounds: vec![None; prep.marked.len()],
            release_horizon,
            horizon: release_horizon + max_d + Time::from_ticks(2 * tail),
        });
    }
    let measured_seed = derive_seed(cfg.seed, MEASURED_STREAM, 1);
    let (measured_hists, refs, sims, reused) =
        run_sharded(&measured_preps, ema_plans, measured_seed, cfg.shard, jobs);
    refutations.extend(refs.into_iter().map(|r| format!("section=measured {r}")));
    sims_run += sims;
    ws_reused += reused;
    let measured: Vec<MeasuredRow> = preps
        .iter()
        .zip(&measured_hists)
        .map(|(prep, h)| {
            let declared_bound = prep.bounds.iter().filter_map(|&b| b).max();
            let sensitivity = prep
                .bounds
                .iter()
                .zip(&h.worst_by_task)
                .filter_map(|(&b, &w)| match (b, w) {
                    (Some(b), Some(w)) if b > Time::ZERO => {
                        Some(w.as_ticks() as f64 / b.as_ticks() as f64)
                    }
                    _ => None,
                })
                .fold(None, |acc: Option<f64>, r| {
                    Some(acc.map_or(r, |a| a.max(r)))
                });
            MeasuredRow {
                label: prep.name.clone(),
                worst: h.worst,
                declared_bound,
                sensitivity,
            }
        })
        .collect();
    let campaign_secs = campaign_started.elapsed().as_secs_f64();

    // Baseline: the pre-refactor per-plan work — an allocating plan, a
    // traced simulation, and per-task trace scans — on a bounded
    // subsample under the first approach's policy.
    let baseline_sims = cfg.plans.min(cfg.baseline_cap) as u64;
    let baseline_started = Instant::now();
    {
        let prep = &preps[0];
        let sims_reg = pmcs_sim::Registry::standard();
        let policy = sims_reg.get(&prep.name).expect("registries aligned");
        let mut sink = Time::ZERO;
        for i in 0..baseline_sims {
            let spec = adversarial_spec(i as usize, single_seed);
            let plan = adversarial_plan(&prep.marked, prep.release_horizon, spec);
            let result = pmcs_sim::simulate_with(&prep.marked, &plan, policy, prep.horizon);
            for task in prep.marked.iter() {
                if let Some(w) = result.worst_response(task.id()) {
                    sink = sink.max(w);
                }
            }
        }
        // Keep the loop's result observable so it cannot be optimized out.
        assert!(baseline_sims == 0 || sink > Time::ZERO);
    }
    let baseline_secs = baseline_started.elapsed().as_secs_f64();

    let config_line = format!(
        "plans={} tasks={} util={} seed={} cores={} shard={} history={} policies=[{}]",
        cfg.plans,
        cfg.tasks,
        cfg.util,
        cfg.seed,
        cfg.cores,
        cfg.shard,
        cfg.history,
        registry.labels().join(","),
    );
    Ok(CampaignOutcome {
        labels: registry.labels(),
        single,
        bus: bus_hists,
        bus_desc,
        measured,
        classes,
        refutations,
        sims_run,
        campaign_secs,
        ws_reused,
        baseline_sims,
        baseline_secs,
        wall_secs: started.elapsed().as_secs_f64(),
        jobs,
        config_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> CampaignConfig {
        CampaignConfig {
            plans: 60,
            shard: 16,
            baseline_cap: 10,
            analysis: AnalysisConfig::default().with_jobs(jobs),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn bins_are_log_scale() {
        assert_eq!(bin_of(Time::ZERO), 0);
        assert_eq!(bin_of(Time::from_ticks(1)), 1);
        assert_eq!(bin_of(Time::from_ticks(2)), 2);
        assert_eq!(bin_of(Time::from_ticks(3)), 2);
        assert_eq!(bin_of(Time::from_ticks(4)), 3);
        assert_eq!(bin_of(Time::from_ticks(i64::MAX)), BINS - 1);
    }

    #[test]
    fn campaign_finds_no_refutations_and_fills_histograms() {
        let out = run_campaign(&tiny(1)).expect("campaign runs");
        assert_eq!(out.labels, ["proposed", "wp", "nps", "nps-classic"]);
        assert_eq!(out.refutations, Vec::<String>::new());
        for h in &out.single {
            assert_eq!(h.plans, 60, "{}", h.label);
            assert!(h.responses > 0, "{}", h.label);
            assert!(h.worst.is_some(), "{}", h.label);
            assert_eq!(h.bins.iter().sum::<u64>(), h.responses);
        }
        // Streaming reuses warm workspaces for all but the first run of
        // each worker.
        assert!(out.ws_reused > 0);
        assert!(out.sims_run >= 4 * 60);
        // Measured mode: predictions shrink execution, so measured worst
        // responses stay at or below the declared bounds.
        for m in &out.measured {
            if let (Some(s), Some(w), Some(b)) = (m.sensitivity, m.worst, m.declared_bound) {
                assert!(s <= 1.0 + 1e-9, "{}: sensitivity {s}", m.label);
                assert!(w <= b, "{}: {w} > {b}", m.label);
            }
        }
        assert_eq!(out.classes.len(), 5);
    }

    #[test]
    fn report_is_byte_identical_for_any_thread_count() {
        let serial = run_campaign(&tiny(1)).expect("campaign runs");
        let parallel = run_campaign(&tiny(4)).expect("campaign runs");
        assert_eq!(serial.report_text(), parallel.report_text());
    }

    #[test]
    fn weakened_bounds_are_refuted() {
        // Stream a handful of plans against a one-tick bound: every plan
        // must produce a refutation naming the task and the observation.
        let set = TaskSet::new(vec![pmcs_core::window::test_task(
            0, 10, 2, 2, 1_000, 0, false,
        )])
        .unwrap();
        let preps = vec![Prep {
            name: "proposed".to_string(),
            marked: set.clone(),
            bounds: vec![Some(Time::TICK)],
            release_horizon: plan_horizon(&set),
            horizon: plan_horizon(&set) + Time::from_ticks(100),
        }];
        let (hists, refutations, sims, _) = run_sharded(&preps, 6, 7, 2, 2);
        assert_eq!(sims, 6);
        assert_eq!(hists[0].plans, 6);
        assert_eq!(refutations.len(), 6, "{refutations:?}");
        assert!(refutations[0].contains("kind=bound-exceeded task=τ0"));
        assert!(refutations[0].contains("seed="));
    }
}
