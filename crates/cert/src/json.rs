//! Minimal self-contained JSON encoding of certificate bundles.
//!
//! The wire format is ordinary JSON with two conventions that keep the
//! encoding exact (certificates must survive a round trip bit-for-bit):
//!
//! * every `f64` is written as a *string* holding Rust's shortest
//!   round-trip `{:?}` rendering (`"1.5"`, `"inf"`), never as a JSON
//!   number, so no decimal-to-binary conversion can perturb a proof;
//! * every [`Rational`] is written as a `"num/den"` string in reduced
//!   form.
//!
//! Bare JSON numbers are always integers and are parsed as `i128`.

use crate::types::{
    rational_from_wire, rational_to_wire, CertArrival, CertCase, CertChoice, CertRound,
    CertRoundEntry, CertTask, CertTaskSet, CertWcrtStep, CertWindow, CertWindowTask,
    CertificateSet, DelayCertificate, DpEntry, SchedCertificate, UpperProof, WcrtCertificate,
};
use pmcs_milp::{BbNode, BbTree, Cmp, InfeasibilityCertificate, LinExpr, Problem, Rational, Var};

// ---------------------------------------------------------------------------
// Value tree
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A bare JSON number (always an integer in this format).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn req<'a>(&'a self, key: &str) -> Result<&'a Value, String> {
        self.get(key)
            .ok_or_else(|| format!("json: missing field `{key}`"))
    }

    fn as_int(&self) -> Result<i128, String> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(format!("json: expected integer, got {other:?}")),
        }
    }

    fn as_i64(&self) -> Result<i64, String> {
        i64::try_from(self.as_int()?).map_err(|_| "json: integer out of i64 range".to_string())
    }

    fn as_u64(&self) -> Result<u64, String> {
        u64::try_from(self.as_int()?).map_err(|_| "json: integer out of u64 range".to_string())
    }

    fn as_u32(&self) -> Result<u32, String> {
        u32::try_from(self.as_int()?).map_err(|_| "json: integer out of u32 range".to_string())
    }

    fn as_usize(&self) -> Result<usize, String> {
        usize::try_from(self.as_int()?).map_err(|_| "json: integer out of usize range".to_string())
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("json: expected bool, got {other:?}")),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("json: expected string, got {other:?}")),
        }
    }

    fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(a) => Ok(a),
            other => Err(format!("json: expected array, got {other:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        let s = self.as_str()?;
        s.parse::<f64>()
            .map_err(|e| format!("json: bad float string {s:?}: {e}"))
    }

    fn as_rational(&self) -> Result<Rational, String> {
        let s = self.as_str()?;
        rational_from_wire(s).ok_or_else(|| format!("json: bad rational string {s:?}"))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a [`Value`] tree to compact JSON.
pub fn write_value(v: &Value) -> String {
    let mut out = String::new();
    write_into(&mut out, v);
    out
}

fn write_into(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_into(out, val);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "json: expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("json: bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("json: unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "json: non-integer number at byte {start} (floats travel as strings)"
            ));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "json: invalid utf-8 in number".to_string())?;
        s.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("json: bad integer {s:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("json: unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("json: truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "json: bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "json: bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "json: bad \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("json: bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "json: invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("json: expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("json: expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("json: trailing data at byte {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn int(v: impl Into<i128>) -> Value {
    Value::Int(v.into())
}

fn float_str(v: f64) -> Value {
    Value::Str(format!("{v:?}"))
}

fn rational_str(r: Rational) -> Value {
    Value::Str(rational_to_wire(r))
}

fn encode_arrival(a: &CertArrival) -> Value {
    match a {
        CertArrival::Sporadic { min_inter_arrival } => obj(vec![
            ("kind", Value::Str("sporadic".into())),
            ("t", int(*min_inter_arrival)),
        ]),
        CertArrival::PeriodicJitter { period, jitter } => obj(vec![
            ("kind", Value::Str("periodic_jitter".into())),
            ("t", int(*period)),
            ("j", int(*jitter)),
        ]),
        CertArrival::Staircase { steps, tail_period } => obj(vec![
            ("kind", Value::Str("staircase".into())),
            (
                "steps",
                Value::Arr(
                    steps
                        .iter()
                        .map(|&(d, n)| Value::Arr(vec![int(d), int(n)]))
                        .collect(),
                ),
            ),
            ("tail", int(*tail_period)),
        ]),
    }
}

fn decode_arrival(v: &Value) -> Result<CertArrival, String> {
    match v.req("kind")?.as_str()? {
        "sporadic" => Ok(CertArrival::Sporadic {
            min_inter_arrival: v.req("t")?.as_i64()?,
        }),
        "periodic_jitter" => Ok(CertArrival::PeriodicJitter {
            period: v.req("t")?.as_i64()?,
            jitter: v.req("j")?.as_i64()?,
        }),
        "staircase" => {
            let mut steps = Vec::new();
            for s in v.req("steps")?.as_arr()? {
                let pair = s.as_arr()?;
                if pair.len() != 2 {
                    return Err("json: staircase step must be a pair".to_string());
                }
                steps.push((pair[0].as_i64()?, pair[1].as_u64()?));
            }
            Ok(CertArrival::Staircase {
                steps,
                tail_period: v.req("tail")?.as_i64()?,
            })
        }
        other => Err(format!("json: unknown arrival kind {other:?}")),
    }
}

fn encode_task_set(set: &CertTaskSet) -> Value {
    Value::Arr(
        set.tasks
            .iter()
            .map(|t| {
                obj(vec![
                    ("id", int(t.id)),
                    ("exec", int(t.exec)),
                    ("copy_in", int(t.copy_in)),
                    ("copy_out", int(t.copy_out)),
                    ("deadline", int(t.deadline)),
                    ("priority", int(t.priority)),
                    ("arrival", encode_arrival(&t.arrival)),
                ])
            })
            .collect(),
    )
}

fn decode_task_set(v: &Value) -> Result<CertTaskSet, String> {
    let mut tasks = Vec::new();
    for t in v.as_arr()? {
        tasks.push(CertTask {
            id: t.req("id")?.as_u32()?,
            exec: t.req("exec")?.as_i64()?,
            copy_in: t.req("copy_in")?.as_i64()?,
            copy_out: t.req("copy_out")?.as_i64()?,
            deadline: t.req("deadline")?.as_i64()?,
            priority: t.req("priority")?.as_u32()?,
            arrival: decode_arrival(t.req("arrival")?)?,
        });
    }
    Ok(CertTaskSet { tasks })
}

fn encode_window(w: &CertWindow) -> Value {
    obj(vec![
        ("case", int(w.case.code())),
        ("n", int(w.n_intervals)),
        (
            "tasks",
            Value::Arr(
                w.tasks
                    .iter()
                    .map(|t| {
                        obj(vec![
                            ("exec", int(t.exec)),
                            ("copy_in", int(t.copy_in)),
                            ("copy_out", int(t.copy_out)),
                            ("ls", Value::Bool(t.ls)),
                            ("hp", Value::Bool(t.hp)),
                            ("priority", int(t.priority)),
                            ("budget", int(t.budget)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("exec_i", int(w.exec_i)),
        ("copy_in_i", int(w.copy_in_i)),
        ("copy_out_i", int(w.copy_out_i)),
        ("priority_i", int(w.priority_i)),
        ("max_l", int(w.max_l)),
        ("max_u", int(w.max_u)),
    ])
}

fn decode_window(v: &Value) -> Result<CertWindow, String> {
    let mut tasks = Vec::new();
    for t in v.req("tasks")?.as_arr()? {
        tasks.push(CertWindowTask {
            exec: t.req("exec")?.as_i64()?,
            copy_in: t.req("copy_in")?.as_i64()?,
            copy_out: t.req("copy_out")?.as_i64()?,
            ls: t.req("ls")?.as_bool()?,
            hp: t.req("hp")?.as_bool()?,
            priority: t.req("priority")?.as_u32()?,
            budget: t.req("budget")?.as_u64()?,
        });
    }
    Ok(CertWindow {
        case: CertCase::from_code(v.req("case")?.as_u64()?)
            .ok_or_else(|| "json: unknown window case".to_string())?,
        n_intervals: v.req("n")?.as_u64()?,
        tasks,
        exec_i: v.req("exec_i")?.as_i64()?,
        copy_in_i: v.req("copy_in_i")?.as_i64()?,
        copy_out_i: v.req("copy_out_i")?.as_i64()?,
        priority_i: v.req("priority_i")?.as_u32()?,
        max_l: v.req("max_l")?.as_i64()?,
        max_u: v.req("max_u")?.as_i64()?,
    })
}

fn encode_problem(p: &Problem) -> Value {
    let vars: Vec<Value> = p
        .vars()
        .map(|v| {
            let (lo, hi) = p.var_bounds(v);
            obj(vec![
                ("int", Value::Bool(p.var_kind(v).is_integral())),
                ("lo", float_str(lo)),
                ("hi", float_str(hi)),
            ])
        })
        .collect();
    let encode_expr = |e: &LinExpr| -> Value {
        obj(vec![
            (
                "terms",
                Value::Arr(
                    e.iter()
                        .map(|(v, c)| Value::Arr(vec![int(v.index() as u64), float_str(c)]))
                        .collect(),
                ),
            ),
            ("const", float_str(e.constant())),
        ])
    };
    let constraints: Vec<Value> = p
        .constraints()
        .map(|c| {
            let cmp = match c.cmp() {
                Cmp::Le => 0u64,
                Cmp::Eq => 1,
                Cmp::Ge => 2,
            };
            obj(vec![
                ("expr", encode_expr(c.expr())),
                ("cmp", int(cmp)),
                ("rhs", float_str(c.rhs())),
            ])
        })
        .collect();
    obj(vec![
        ("vars", Value::Arr(vars)),
        ("constraints", Value::Arr(constraints)),
        ("obj", encode_expr(p.objective())),
    ])
}

fn decode_expr(v: &Value, handles: &[Var]) -> Result<LinExpr, String> {
    let mut e = LinExpr::zero();
    for term in v.req("terms")?.as_arr()? {
        let pair = term.as_arr()?;
        if pair.len() != 2 {
            return Err("json: expression term must be a pair".to_string());
        }
        let j = pair[0].as_usize()?;
        let var = *handles
            .get(j)
            .ok_or_else(|| format!("json: term references unknown variable {j}"))?;
        e.add_term(var, pair[1].as_f64()?);
    }
    e.add_constant(v.req("const")?.as_f64()?);
    Ok(e)
}

fn decode_problem(v: &Value) -> Result<Problem, String> {
    let mut p = Problem::maximize();
    let vars = v.req("vars")?.as_arr()?;
    let mut handles = Vec::with_capacity(vars.len());
    for (j, var) in vars.iter().enumerate() {
        let lo = var.req("lo")?.as_f64()?;
        let hi = var.req("hi")?.as_f64()?;
        handles.push(if var.req("int")?.as_bool()? {
            p.integer(format!("x{j}"), lo, hi)
        } else {
            p.continuous(format!("x{j}"), lo, hi)
        });
    }
    for c in v.req("constraints")?.as_arr()? {
        let expr = decode_expr(c.req("expr")?, &handles)?;
        let cmp = match c.req("cmp")?.as_u64()? {
            0 => Cmp::Le,
            1 => Cmp::Eq,
            2 => Cmp::Ge,
            other => return Err(format!("json: unknown cmp code {other}")),
        };
        p.constrain(expr, cmp, c.req("rhs")?.as_f64()?);
    }
    p.set_objective(decode_expr(v.req("obj")?, &handles)?);
    Ok(p)
}

fn encode_bb_tree(t: &BbTree) -> Value {
    Value::Arr(
        t.nodes
            .iter()
            .map(|n| match n {
                BbNode::Branch {
                    var,
                    floor,
                    down,
                    up,
                } => obj(vec![
                    ("t", Value::Str("branch".into())),
                    ("var", int(*var as u64)),
                    ("floor", Value::Int(*floor)),
                    ("down", int(*down as u64)),
                    ("up", int(*up as u64)),
                ]),
                BbNode::Bounded { multipliers } => obj(vec![
                    ("t", Value::Str("bounded".into())),
                    (
                        "mults",
                        Value::Arr(multipliers.iter().map(|&m| rational_str(m)).collect()),
                    ),
                ]),
                BbNode::Infeasible { certificate } => {
                    let cert = match certificate {
                        InfeasibilityCertificate::EmptyBounds { var } => obj(vec![
                            ("t", Value::Str("empty".into())),
                            ("var", int(*var as u64)),
                        ]),
                        InfeasibilityCertificate::Farkas { multipliers } => obj(vec![
                            ("t", Value::Str("farkas".into())),
                            (
                                "mults",
                                Value::Arr(multipliers.iter().map(|&m| rational_str(m)).collect()),
                            ),
                        ]),
                    };
                    obj(vec![("t", Value::Str("infeasible".into())), ("cert", cert)])
                }
            })
            .collect(),
    )
}

fn decode_rationals(v: &Value) -> Result<Vec<Rational>, String> {
    v.as_arr()?.iter().map(|m| m.as_rational()).collect()
}

fn decode_bb_tree(v: &Value) -> Result<BbTree, String> {
    let mut nodes = Vec::new();
    for n in v.as_arr()? {
        nodes.push(match n.req("t")?.as_str()? {
            "branch" => BbNode::Branch {
                var: n.req("var")?.as_usize()?,
                floor: n.req("floor")?.as_int()?,
                down: n.req("down")?.as_usize()?,
                up: n.req("up")?.as_usize()?,
            },
            "bounded" => BbNode::Bounded {
                multipliers: decode_rationals(n.req("mults")?)?,
            },
            "infeasible" => {
                let cert = n.req("cert")?;
                let certificate = match cert.req("t")?.as_str()? {
                    "empty" => InfeasibilityCertificate::EmptyBounds {
                        var: cert.req("var")?.as_usize()?,
                    },
                    "farkas" => InfeasibilityCertificate::Farkas {
                        multipliers: decode_rationals(cert.req("mults")?)?,
                    },
                    other => return Err(format!("json: unknown infeasibility kind {other:?}")),
                };
                BbNode::Infeasible { certificate }
            }
            other => return Err(format!("json: unknown bb node kind {other:?}")),
        });
    }
    Ok(BbTree { nodes })
}

fn encode_upper(u: &UpperProof) -> Value {
    match u {
        UpperProof::DpTable(entries) => obj(vec![
            ("kind", Value::Str("dp".into())),
            (
                "entries",
                Value::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            let mut row = vec![
                                int(e.k),
                                int(e.prev.code()),
                                int(e.prev2.code()),
                                int(e.value),
                            ];
                            row.extend(e.budgets.iter().map(|&b| int(b)));
                            Value::Arr(row)
                        })
                        .collect(),
                ),
            ),
        ]),
        UpperProof::SafeCap => obj(vec![("kind", Value::Str("safe_cap".into()))]),
        UpperProof::MilpCap => obj(vec![("kind", Value::Str("milp_cap".into()))]),
        UpperProof::BbTree { problem, tree } => obj(vec![
            ("kind", Value::Str("bb_tree".into())),
            ("problem", encode_problem(problem)),
            ("tree", encode_bb_tree(tree)),
        ]),
    }
}

fn decode_upper(v: &Value, num_tasks: usize) -> Result<UpperProof, String> {
    match v.req("kind")?.as_str()? {
        "dp" => {
            let mut entries = Vec::new();
            for e in v.req("entries")?.as_arr()? {
                let row = e.as_arr()?;
                if row.len() != 4 + num_tasks {
                    return Err(format!(
                        "json: dp entry has {} fields, expected {}",
                        row.len(),
                        4 + num_tasks
                    ));
                }
                entries.push(DpEntry {
                    k: row[0].as_u64()?,
                    prev: CertChoice::from_code(row[1].as_u64()?),
                    prev2: CertChoice::from_code(row[2].as_u64()?),
                    value: row[3].as_i64()?,
                    budgets: row[4..]
                        .iter()
                        .map(|b| b.as_u64())
                        .collect::<Result<_, _>>()?,
                });
            }
            Ok(UpperProof::DpTable(entries))
        }
        "safe_cap" => Ok(UpperProof::SafeCap),
        "milp_cap" => Ok(UpperProof::MilpCap),
        "bb_tree" => Ok(UpperProof::BbTree {
            problem: decode_problem(v.req("problem")?)?,
            tree: decode_bb_tree(v.req("tree")?)?,
        }),
        other => Err(format!("json: unknown upper-proof kind {other:?}")),
    }
}

fn encode_delay_cert(c: &DelayCertificate) -> Value {
    obj(vec![
        ("window", encode_window(&c.window)),
        ("window_hash", int(c.window_hash)),
        ("claimed", int(c.claimed)),
        ("exact", Value::Bool(c.exact)),
        (
            "witness",
            match &c.witness {
                None => Value::Null,
                Some(w) => Value::Arr(w.iter().map(|c| int(c.code())).collect()),
            },
        ),
        ("upper", encode_upper(&c.upper)),
    ])
}

fn decode_delay_cert(v: &Value) -> Result<DelayCertificate, String> {
    let window = decode_window(v.req("window")?)?;
    let num_tasks = window.tasks.len();
    let witness = match v.req("witness")? {
        Value::Null => None,
        arr => Some(
            arr.as_arr()?
                .iter()
                .map(|c| c.as_u64().map(CertChoice::from_code))
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    Ok(DelayCertificate {
        window,
        window_hash: v.req("window_hash")?.as_u64()?,
        claimed: v.req("claimed")?.as_i64()?,
        exact: v.req("exact")?.as_bool()?,
        witness,
        upper: decode_upper(v.req("upper")?, num_tasks)?,
    })
}

fn encode_wcrt_cert(c: &WcrtCertificate) -> Value {
    obj(vec![
        ("task", int(c.task)),
        (
            "marking",
            Value::Arr(c.marking.iter().map(|&t| int(t)).collect()),
        ),
        ("case", int(c.case.code())),
        (
            "steps",
            Value::Arr(
                c.steps
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("t", int(s.window_len)),
                            ("delay", int(s.delay)),
                            ("exact", Value::Bool(s.exact)),
                            ("window", int(s.window_hash)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("case_b", c.case_b.map(int).unwrap_or(Value::Null)),
        ("wcrt", int(c.wcrt)),
        ("schedulable", Value::Bool(c.schedulable)),
    ])
}

fn decode_wcrt_cert(v: &Value) -> Result<WcrtCertificate, String> {
    let mut steps = Vec::new();
    for s in v.req("steps")?.as_arr()? {
        steps.push(CertWcrtStep {
            window_len: s.req("t")?.as_i64()?,
            delay: s.req("delay")?.as_i64()?,
            exact: s.req("exact")?.as_bool()?,
            window_hash: s.req("window")?.as_u64()?,
        });
    }
    Ok(WcrtCertificate {
        task: v.req("task")?.as_u32()?,
        marking: v
            .req("marking")?
            .as_arr()?
            .iter()
            .map(|t| t.as_u32())
            .collect::<Result<_, _>>()?,
        case: CertCase::from_code(v.req("case")?.as_u64()?)
            .ok_or_else(|| "json: unknown wcrt case".to_string())?,
        steps,
        case_b: match v.req("case_b")? {
            Value::Null => None,
            other => Some(other.as_i64()?),
        },
        wcrt: v.req("wcrt")?.as_i64()?,
        schedulable: v.req("schedulable")?.as_bool()?,
    })
}

fn encode_sched_cert(c: &SchedCertificate) -> Value {
    obj(vec![
        (
            "rounds",
            Value::Arr(
                c.rounds
                    .iter()
                    .map(|r| {
                        Value::Arr(
                            r.entries
                                .iter()
                                .map(|e| {
                                    obj(vec![
                                        ("task", int(e.task)),
                                        ("wcrt", int(e.wcrt)),
                                        ("schedulable", Value::Bool(e.schedulable)),
                                        ("fresh", Value::Bool(e.fresh)),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "promoted",
            Value::Arr(c.promoted.iter().map(|&t| int(t)).collect()),
        ),
        ("schedulable", Value::Bool(c.schedulable)),
    ])
}

fn decode_sched_cert(v: &Value) -> Result<SchedCertificate, String> {
    let mut rounds = Vec::new();
    for r in v.req("rounds")?.as_arr()? {
        let mut entries = Vec::new();
        for e in r.as_arr()? {
            entries.push(CertRoundEntry {
                task: e.req("task")?.as_u32()?,
                wcrt: e.req("wcrt")?.as_i64()?,
                schedulable: e.req("schedulable")?.as_bool()?,
                fresh: e.req("fresh")?.as_bool()?,
            });
        }
        rounds.push(CertRound { entries });
    }
    Ok(SchedCertificate {
        rounds,
        promoted: v
            .req("promoted")?
            .as_arr()?
            .iter()
            .map(|t| t.as_u32())
            .collect::<Result<_, _>>()?,
        schedulable: v.req("schedulable")?.as_bool()?,
    })
}

/// Serializes a certificate bundle to a single JSON document.
pub fn encode_certificate_set(set: &CertificateSet) -> String {
    let v = obj(vec![
        ("version", int(set.version)),
        ("task_set", encode_task_set(&set.task_set)),
        (
            "windows",
            Value::Arr(set.windows.iter().map(encode_delay_cert).collect()),
        ),
        (
            "wcrts",
            Value::Arr(set.wcrts.iter().map(encode_wcrt_cert).collect()),
        ),
        (
            "sched",
            match &set.sched {
                None => Value::Null,
                Some(s) => encode_sched_cert(s),
            },
        ),
    ]);
    write_value(&v)
}

/// Parses a certificate bundle from its JSON document.
///
/// # Errors
///
/// Returns a `json:`-prefixed message on any syntactic or structural
/// mismatch. Semantic validity is the checker's job, not the parser's.
pub fn decode_certificate_set(text: &str) -> Result<CertificateSet, String> {
    let v = parse_value(text)?;
    let mut windows = Vec::new();
    for w in v.req("windows")?.as_arr()? {
        windows.push(decode_delay_cert(w)?);
    }
    let mut wcrts = Vec::new();
    for w in v.req("wcrts")?.as_arr()? {
        wcrts.push(decode_wcrt_cert(w)?);
    }
    Ok(CertificateSet {
        version: v.req("version")?.as_u32()?,
        task_set: decode_task_set(v.req("task_set")?)?,
        windows,
        wcrts,
        sched: match v.req("sched")? {
            Value::Null => None,
            s => Some(decode_sched_cert(s)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = obj(vec![
            ("a", int(1u64)),
            ("b", Value::Str("x\"\\\n".into())),
            ("c", Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("f", float_str(1.5)),
            ("inf", float_str(f64::INFINITY)),
        ]);
        let text = write_value(&v);
        assert_eq!(parse_value(&text).expect("round trip"), v);
    }

    #[test]
    fn float_strings_round_trip_exactly() {
        for f in [0.1, 1e300, -3.25, f64::INFINITY, f64::NEG_INFINITY] {
            let v = float_str(f);
            assert_eq!(v.as_f64().expect("parse"), f);
        }
    }

    #[test]
    fn rejects_bare_floats_and_trailing_data() {
        assert!(parse_value("1.5").is_err());
        assert!(parse_value("1e3").is_err());
        assert!(parse_value("{} {}").is_err());
        assert!(parse_value("[1,]").is_err());
    }

    #[test]
    fn problem_round_trips() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.integer("y", 0.0, f64::INFINITY);
        p.constrain(x + 2.5 * y, Cmp::Le, 4.0);
        p.constrain(x + y, Cmp::Ge, 1.0);
        p.set_objective(3.0 * x + 2.0 * y);
        let v = encode_problem(&p);
        let q = decode_problem(&parse_value(&write_value(&v)).expect("parse")).expect("decode");
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.num_constraints(), 2);
        let qv: Vec<Var> = q.vars().collect();
        assert_eq!(q.var_bounds(qv[1]), (0.0, f64::INFINITY));
        assert!(q.var_kind(qv[1]).is_integral());
        assert_eq!(q.objective().coefficient(qv[0]), 3.0);
    }

    #[test]
    fn bb_tree_round_trips() {
        let tree = BbTree {
            nodes: vec![
                BbNode::Branch {
                    var: 0,
                    floor: 1,
                    down: 1,
                    up: 2,
                },
                BbNode::Bounded {
                    multipliers: vec![Rational::new(1, 2).expect("valid")],
                },
                BbNode::Infeasible {
                    certificate: InfeasibilityCertificate::Farkas {
                        multipliers: vec![Rational::ONE],
                    },
                },
            ],
        };
        let text = write_value(&encode_bb_tree(&tree));
        let back = decode_bb_tree(&parse_value(&text).expect("parse")).expect("decode");
        assert_eq!(back.nodes.len(), 3);
        assert!(matches!(
            back.nodes[0],
            BbNode::Branch {
                var: 0,
                floor: 1,
                down: 1,
                up: 2
            }
        ));
    }
}
