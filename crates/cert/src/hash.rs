//! Content addressing for certificate objects.
//!
//! Certificates reference windows by a 64-bit FNV-1a hash over a
//! canonical field-by-field encoding. The hash is *not* cryptographic —
//! it detects accidental corruption and mismatched references, while the
//! checker re-derives every semantic fact from the hashed content itself.

/// Incremental FNV-1a 64-bit hasher over a canonical encoding.
///
/// Every write is length-prefixed by construction (fixed-width
/// little-endian integers; collections hash their length first), so two
/// different field sequences cannot collide by concatenation.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `i64` as 8 little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_order_matters() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
