//! `pmcs-cert` — independent checker for proof-carrying WCRT analysis.
//!
//! The analysis crates emit, alongside every verdict, a machine-checkable
//! certificate: window-level delay bounds ship a concrete placement
//! witness plus an upper-bound proof (an exact DP value table, a
//! VIPR-style branch-and-bound tree with exact-rational dual
//! certificates, or a closed-form safe cap), task-level WCRT values ship
//! the monotone fixed-point trace, and set-level verdicts ship the greedy
//! LS-marking transcript. This crate re-checks all of it **without
//! depending on any engine code**: windows are rebuilt from the task set
//! via this crate's own η and Theorem 1 implementation, DP tables are
//! re-validated state by state against the Bellman recurrence in `i128`,
//! and branch-and-bound trees are replayed in exact rational arithmetic
//! by `pmcs-milp`'s audit layer (the one shared component, itself
//! engine-independent).
//!
//! The trusted boundary is deliberately thin: the checker trusts the
//! window→MILP encoding of a [`UpperProof::BbTree`] problem (the MPS
//! analogue in the VIPR workflow) and the semantics of the interval
//! model itself; everything downstream of those is re-derived.
//!
//! Entry points:
//! - [`check_certificate_set`] — check a full bundle, returning a
//!   [`CheckReport`] whose [`Rejection`]s carry stable machine-readable
//!   codes (`dp.bellman-mismatch`, `wcrt.unproven-window`, …).
//! - [`encode_certificate_set`] / [`decode_certificate_set`] — the JSON
//!   wire format (integers and exact-value float strings only; no lossy
//!   floating-point literals).
//! - [`corrupt`] — deterministic tampering helpers for negative tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hash;

pub mod check;
pub mod corrupt;
pub mod dp;
pub mod json;
pub mod types;
pub mod window;

pub use check::{check_certificate_set, CheckReport, Rejection, MAX_WCRT_STEPS};
pub use json::{decode_certificate_set, encode_certificate_set};
pub use types::{
    CertArrival, CertCase, CertChoice, CertRound, CertRoundEntry, CertTask, CertTaskSet,
    CertWcrtStep, CertWindow, CertWindowTask, CertificateSet, DelayCertificate, DpEntry,
    SchedCertificate, UpperProof, WcrtCertificate, CERT_FORMAT_VERSION,
};
pub use window::{build_window, eta, ls_case_b, promotion_affects};
