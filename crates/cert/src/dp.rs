//! Independent verification of window-level delay claims.
//!
//! Re-implements — from the paper's rules R1–R6 and Constraints 1–15,
//! not from the production engine — the semantics of interval lengths
//! for a fixed placement, and uses it three ways:
//!
//! * [`replay_witness`] evaluates a concrete placement witness, giving a
//!   *lower* bound on the true optimum;
//! * [`verify_dp_table`] re-derives every Bellman equation of the
//!   producing DP's memo table over the dominance-pruned choice sets,
//!   establishing the claim as an *upper* bound;
//! * [`safe_cap`] / [`milp_cap`] recompute the closed-form caps used by
//!   the inexact fallback paths.
//!
//! All sums are evaluated in `i128`, so no intermediate can wrap even
//! for adversarial tick values near `i64::MAX`.
//!
//! Every error string starts with a stable machine-readable code
//! (`dp.bellman-mismatch`, `witness.budget`, …) followed by `": "` and a
//! human-readable detail.

use std::collections::HashMap;

use crate::types::{CertCase, CertChoice, CertWindow, DpEntry};

/// Hard cap on DP-table sizes the checker will process (mirrors the
/// production engine's default memo budget).
pub const MAX_TABLE_ENTRIES: usize = 4_000_000;

/// Hard cap on window-task counts (far above anything the workloads
/// produce; bounds checker work on adversarial input).
const MAX_TASKS: usize = 256;

/// Hard cap on interval counts (bounds checker work on adversarial
/// input).
const MAX_INTERVALS: u64 = 1 << 20;

/// Derived per-window semantics: the checker's own re-derivation of
/// every quantity the engine precomputes, straight from the window
/// content.
#[derive(Debug)]
pub struct WindowSem {
    n: usize,
    m: usize,
    exec: Vec<i128>,
    cin: Vec<i128>,
    cout: Vec<i128>,
    /// LS flags after the inertness canonicalization (a marked task with
    /// zero copy-in and no cancellation victim behaves exactly as NLS).
    ls: Vec<bool>,
    hp: Vec<bool>,
    budget: Vec<u64>,
    max_cancel_hp: i128,
    max_cancel_i0: i128,
    max_lower_hp: Vec<Option<i128>>,
    max_lower_i0: Vec<Option<i128>>,
    max_l: i128,
    max_u: i128,
    l_i: i128,
    c_i: i128,
    last_lp_exec: usize,
    /// Nearest lower-indexed task of the same interchangeability class
    /// (identical shape and protocol flags; for LS tasks also identical
    /// cancellation-victim maxima). Mirrors the engine's symmetry
    /// breaking: a task is only placeable once every lower-indexed
    /// classmate's budget is exhausted.
    class_prev: Vec<Option<usize>>,
}

impl WindowSem {
    /// Derives the semantics of a window, validating its shape.
    ///
    /// # Errors
    ///
    /// `window.malformed` for negative phase durations,
    /// `window.too-large` for sizes beyond the checker's caps.
    pub fn new(w: &CertWindow) -> Result<WindowSem, String> {
        if w.n_intervals > MAX_INTERVALS {
            return Err(format!(
                "window.too-large: {} intervals exceeds the checker cap {MAX_INTERVALS}",
                w.n_intervals
            ));
        }
        if w.tasks.len() > MAX_TASKS {
            return Err(format!(
                "window.too-large: {} tasks exceeds the checker cap {MAX_TASKS}",
                w.tasks.len()
            ));
        }
        let neg = |v: i64| v < 0;
        if neg(w.exec_i) || neg(w.copy_in_i) || neg(w.copy_out_i) || neg(w.max_l) || neg(w.max_u) {
            return Err("window.malformed: negative phase duration for τ_i".to_string());
        }
        let m = w.tasks.len();
        let n = w.n_intervals as usize;
        let mut sem = WindowSem {
            n,
            m,
            exec: Vec::with_capacity(m),
            cin: Vec::with_capacity(m),
            cout: Vec::with_capacity(m),
            ls: Vec::with_capacity(m),
            hp: Vec::with_capacity(m),
            budget: Vec::with_capacity(m),
            max_cancel_hp: 0,
            max_cancel_i0: 0,
            max_lower_hp: vec![None; m],
            max_lower_i0: vec![None; m],
            max_l: i128::from(w.max_l),
            max_u: i128::from(w.max_u),
            l_i: i128::from(w.copy_in_i),
            c_i: i128::from(w.exec_i),
            last_lp_exec: match w.case {
                CertCase::Nls => 1,
                CertCase::LsCaseA => 0,
            },
            class_prev: Vec::with_capacity(m),
        };
        for t in &w.tasks {
            if neg(t.exec) || neg(t.copy_in) || neg(t.copy_out) {
                return Err("window.malformed: negative phase duration".to_string());
            }
            sem.exec.push(i128::from(t.exec));
            sem.cin.push(i128::from(t.copy_in));
            sem.cout.push(i128::from(t.copy_out));
            sem.ls.push(t.ls);
            sem.hp.push(t.hp);
            sem.budget.push(t.budget);
        }

        // Rule R3: a copy-in of `victim` can only be canceled by the
        // release of a *higher-priority LS task* — one of the window's LS
        // tasks or, in case (a), τ_i itself. Computed over the window's
        // *recorded* LS flags (the canonicalization below only concerns
        // marked tasks' own urgent states, mirroring the engine's order
        // of operations).
        let triggerable = |victim: usize| -> bool {
            let vp = w.tasks[victim].priority;
            if matches!(w.case, CertCase::LsCaseA) && w.priority_i < vp {
                return true;
            }
            w.tasks.iter().any(|t| t.ls && t.priority < vp)
        };
        sem.max_cancel_hp = (0..m)
            .filter(|&j| sem.hp[j] && triggerable(j))
            .map(|j| sem.cin[j])
            .max()
            .unwrap_or(0);
        sem.max_cancel_i0 = (0..m)
            .filter(|&j| triggerable(j))
            .map(|j| sem.cin[j])
            .max()
            .unwrap_or(0);

        // Constraint 8: an urgent execution of `j` requires canceling the
        // copy-in of a strictly lower-priority task.
        for j in 0..m {
            for k in 0..m {
                if k == j || w.tasks[j].priority >= w.tasks[k].priority {
                    continue;
                }
                if sem.hp[k] {
                    sem.max_lower_hp[j] = Some(sem.max_lower_hp[j].unwrap_or(0).max(sem.cin[k]));
                }
                sem.max_lower_i0[j] = Some(sem.max_lower_i0[j].unwrap_or(0).max(sem.cin[k]));
            }
        }

        // Inertness canonicalization: an LS marking that can never be
        // exercised (zero copy-in, no victim) is dropped.
        for j in 0..m {
            if sem.ls[j] && sem.cin[j] == 0 && sem.max_lower_i0[j].is_none() {
                sem.ls[j] = false;
            }
        }

        // Interchangeability classes, computed after the inertness pass so
        // demoted tasks can join NLS classes (mirroring the engine).
        for j in 0..m {
            let prev = (0..j).rev().find(|&p| {
                sem.exec[p] == sem.exec[j]
                    && sem.cin[p] == sem.cin[j]
                    && sem.cout[p] == sem.cout[j]
                    && sem.hp[p] == sem.hp[j]
                    && sem.ls[p] == sem.ls[j]
                    && (!sem.ls[j]
                        || (sem.max_lower_hp[p] == sem.max_lower_hp[j]
                            && sem.max_lower_i0[p] == sem.max_lower_i0[j]))
            });
            sem.class_prev.push(prev);
        }
        Ok(sem)
    }

    /// Closed-form value for degenerate windows with fewer than two
    /// intervals.
    pub fn small_value(&self) -> i128 {
        self.c_i.max(self.max_l + self.max_u)
    }

    /// Number of intervals `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of window tasks.
    pub fn num_tasks(&self) -> usize {
        self.m
    }

    fn cpu(&self, c: CertChoice) -> i128 {
        match c {
            CertChoice::Idle => 0,
            CertChoice::Run { task, urgent } => {
                if urgent {
                    self.cin[task] + self.exec[task]
                } else {
                    self.exec[task]
                }
            }
        }
    }

    fn out_of(&self, c: CertChoice) -> i128 {
        match c {
            CertChoice::Idle => 0,
            CertChoice::Run { task, .. } => self.cout[task],
        }
    }

    /// Copy-out of interval `k`: the copy-out of the task executed in
    /// `I_{k-1}`; `max_u` at the window boundary (Constraint 12).
    fn out_at(&self, k: usize, before: CertChoice) -> i128 {
        if k == 0 {
            self.max_u
        } else {
            self.out_of(before)
        }
    }

    /// Best free cancellation (no urgent execution following) in `slot`;
    /// lower-priority victims only in `I_0` (Constraint 3).
    fn free_cancel(&self, slot: usize) -> i128 {
        if slot == 0 {
            self.max_cancel_i0
        } else {
            self.max_cancel_hp
        }
    }

    /// Mandatory cancellation enabling an urgent execution of `task`
    /// (Constraint 8); `None` if no lower-priority victim exists.
    fn urgent_cancel(&self, slot: usize, task: usize) -> Option<i128> {
        if slot == 0 {
            self.max_lower_i0[task]
        } else {
            self.max_lower_hp[task]
        }
    }

    /// DMA copy-in time of slot `k` given the next slot's choice; `None`
    /// when the combination is infeasible.
    fn in_at(&self, k: usize, next: CertChoice) -> Option<i128> {
        match next {
            CertChoice::Run {
                task,
                urgent: false,
            } => Some(self.cin[task]),
            CertChoice::Run { task, urgent: true } => self.urgent_cancel(k, task),
            CertChoice::Idle => Some(self.free_cancel(k)),
        }
    }

    /// Placement legality of running `task` in slot `k` (Constraints 3,
    /// 4, 8, 14).
    fn placement_ok(&self, k: usize, task: usize, urgent: bool) -> bool {
        if !self.hp[task] && k > self.last_lp_exec {
            return false;
        }
        if urgent && !self.ls[task] {
            return false;
        }
        if urgent && k > 0 && self.urgent_cancel(k - 1, task).is_none() {
            return false;
        }
        true
    }

    /// Contribution of `Δ_{k-1}` once slot `k`'s choice is fixed; `None`
    /// if the choice is infeasible, `0` at the window start.
    fn score(
        &self,
        k: usize,
        prev: CertChoice,
        prev2: CertChoice,
        cand: CertChoice,
    ) -> Option<i128> {
        if k == 0 {
            return Some(0);
        }
        let input = self.in_at(k - 1, cand)?;
        Some(self.cpu(prev).max(input + self.out_at(k - 1, prev2)))
    }

    /// `Δ_{N-2} + Δ_{N-1}` given the choices of slots `N−2` (`prev`) and
    /// `N−3` (`prev2`): τ_i's copy-in rides `I_{N-2}`'s DMA, τ_i executes
    /// in `I_{N-1}` (Constraints 12, 15).
    fn terminal(&self, prev: CertChoice, prev2: CertChoice) -> i128 {
        let d_nm2 = self
            .cpu(prev)
            .max(self.l_i + self.out_at(self.n - 2, prev2));
        let d_nm1 = self.c_i.max(self.max_l + self.out_of(prev));
        d_nm2 + d_nm1
    }

    /// Canonical form of a remaining-budget vector at slot `k1` — the
    /// engine's memo coordinate. Two reductions merge states with
    /// provably equal suffix optima: lower-priority budgets evaporate
    /// once their placement region is past (Constraints 3/14), and every
    /// budget is capped by the number of placements that can still
    /// happen. Both reductions commute with the DP transition, so
    /// canonicalizing the decremented parent vector reproduces the
    /// engine's child key.
    fn canon_budgets(&self, b: &[u64], k1: usize) -> Vec<u64> {
        (0..self.m)
            .map(|j| {
                if !self.hp[j] && k1 > self.last_lp_exec {
                    0
                } else {
                    b[j].min((self.n - 1 - k1) as u64)
                }
            })
            .collect()
    }

    /// Symmetry-breaking admission (mirrors the engine): within an
    /// interchangeability class, jobs are consumed in canonical index
    /// order, so a task is blocked while a lower-indexed classmate still
    /// has budget.
    fn class_blocked(&self, task: usize, budgets: &[u64]) -> bool {
        self.class_prev[task].is_some_and(|p| budgets[p] > 0)
    }
}

/// Validates a [`CertChoice`] against the window's task count.
fn check_choice(sem: &WindowSem, c: CertChoice, what: &str) -> Result<(), String> {
    if let CertChoice::Run { task, .. } = c {
        if task >= sem.m {
            return Err(format!(
                "{what}: task index {task} out of range (window has {} tasks)",
                sem.m
            ));
        }
    }
    Ok(())
}

/// Replays a placement witness, checking the legality of every choice,
/// and returns its total interference — a machine-checked *lower* bound
/// on the window's true optimum.
///
/// # Errors
///
/// `witness.length`, `witness.task-range`, `witness.budget`,
/// `witness.placement`, `witness.infeasible` — each naming the offending
/// slot.
pub fn replay_witness(sem: &WindowSem, witness: &[CertChoice]) -> Result<i128, String> {
    if sem.n < 2 {
        return Err("witness.length: degenerate window needs no witness".to_string());
    }
    if witness.len() != sem.n - 1 {
        return Err(format!(
            "witness.length: {} choices for {} slots",
            witness.len(),
            sem.n - 1
        ));
    }
    let mut budget = sem.budget.clone();
    let mut total: i128 = 0;
    let at = |k: usize| -> CertChoice {
        // Choices before the window start are idle by convention.
        if k < witness.len() {
            witness[k]
        } else {
            CertChoice::Idle
        }
    };
    for (k, &cand) in witness.iter().enumerate() {
        check_choice(sem, cand, "witness.task-range")?;
        if let CertChoice::Run { task, urgent } = cand {
            if budget[task] == 0 {
                return Err(format!(
                    "witness.budget: slot {k} runs task {task} beyond its job budget"
                ));
            }
            if !sem.placement_ok(k, task, urgent) {
                return Err(format!(
                    "witness.placement: slot {k} placement of task {task} (urgent={urgent}) \
                     violates the placement constraints"
                ));
            }
            budget[task] -= 1;
        }
        let prev = if k >= 1 { at(k - 1) } else { CertChoice::Idle };
        let prev2 = if k >= 2 { at(k - 2) } else { CertChoice::Idle };
        let d = sem
            .score(k, prev, prev2, cand)
            .ok_or_else(|| format!("witness.infeasible: slot {k} has no feasible DMA copy-in"))?;
        total += d;
    }
    let prev = witness[sem.n - 2];
    let prev2 = if sem.n >= 3 {
        witness[sem.n - 3]
    } else {
        CertChoice::Idle
    };
    Ok(total + sem.terminal(prev, prev2))
}

type StateKey = (u64, u64, u64, Vec<u64>);

/// Re-derives every Bellman equation of a producing DP memo table and
/// checks that the root state's value equals the claim.
///
/// Soundness argument: by induction on decreasing slot index, every
/// table entry whose equation verifies holds the *true* optimum of its
/// state — entries at slot `N−2` are checked against closed-form
/// terminal values only, and each earlier entry against already-forced
/// child entries (a missing child is an immediate rejection). The root
/// `(0, idle, idle, full budgets)` therefore holds the true optimum, and
/// it must equal the claimed bound.
///
/// # Errors
///
/// `dp.table-too-large`, `dp.malformed-entry`, `dp.duplicate-state`,
/// `dp.missing-state`, `dp.bellman-mismatch`, `dp.root-mismatch`.
pub fn verify_dp_table(sem: &WindowSem, entries: &[DpEntry], claimed: i128) -> Result<(), String> {
    if sem.n < 2 {
        return Err("dp.malformed-entry: degenerate window needs no DP table".to_string());
    }
    if entries.len() > MAX_TABLE_ENTRIES {
        return Err(format!(
            "dp.table-too-large: {} entries exceeds the checker cap {MAX_TABLE_ENTRIES}",
            entries.len()
        ));
    }
    let mut table: HashMap<StateKey, i128> = HashMap::with_capacity(entries.len());
    for e in entries {
        if e.budgets.len() != sem.m {
            return Err(format!(
                "dp.malformed-entry: entry at slot {} has {} budgets for {} tasks",
                e.k,
                e.budgets.len(),
                sem.m
            ));
        }
        if e.k as usize >= sem.n - 1 {
            return Err(format!(
                "dp.malformed-entry: slot {} is terminal in an {}-interval window",
                e.k, sem.n
            ));
        }
        check_choice(sem, e.prev, "dp.malformed-entry")?;
        check_choice(sem, e.prev2, "dp.malformed-entry")?;
        let key = (e.k, e.prev.code(), e.prev2.code(), e.budgets.clone());
        if table.insert(key, i128::from(e.value)).is_some() {
            return Err(format!(
                "dp.duplicate-state: slot {} state recorded twice",
                e.k
            ));
        }
    }

    // Value of a child state: closed-form terminal at slot N−1, table
    // entry (under the canonical budget key) otherwise.
    let child_value =
        |k1: usize, prev: CertChoice, prev2: CertChoice, budgets: &[u64]| -> Result<i128, String> {
            if k1 == sem.n - 1 {
                return Ok(sem.terminal(prev, prev2));
            }
            table
                .get(&(
                    k1 as u64,
                    prev.code(),
                    prev2.code(),
                    sem.canon_budgets(budgets, k1),
                ))
                .copied()
                .ok_or_else(|| {
                    format!("dp.missing-state: slot {k1} successor state absent from the table")
                })
        };

    for e in entries {
        let k = e.k as usize;
        let prev = e.prev;
        let prev2 = e.prev2;
        let mut best: Option<i128> = None;
        let mut any_candidate = false;
        let mut budgets = e.budgets.clone();
        for task in 0..sem.m {
            if budgets[task] == 0 {
                continue;
            }
            for urgent in [false, true] {
                if urgent && !sem.ls[task] {
                    continue;
                }
                if !sem.placement_ok(k, task, urgent) {
                    continue;
                }
                if sem.class_blocked(task, &budgets) {
                    continue;
                }
                let cand = CertChoice::Run { task, urgent };
                let Some(d) = sem.score(k, prev, prev2, cand) else {
                    continue;
                };
                any_candidate = true;
                budgets[task] -= 1;
                let v = d + child_value(k + 1, cand, prev, &budgets)?;
                budgets[task] += 1;
                best = Some(best.map_or(v, |b: i128| b.max(v)));
            }
        }
        // The engine explores idling only when it is not dominated by
        // placing a job: a free cancellation can charge the preceding
        // DMA slot, or the window has more slots left than *spendable*
        // jobs (lower-priority budgets stop counting past their
        // placement region). The checker re-derives the same gate, so a
        // table produced under a *different* (unsound) dominance rule
        // fails the equation.
        let idle_useful = k >= 1 && sem.free_cancel(k - 1) > 0;
        let usable: u64 = (0..sem.m)
            .filter(|&j| sem.hp[j] || k <= sem.last_lp_exec)
            .map(|j| budgets[j])
            .sum();
        let surplus_slot = (sem.n - 1 - k) as u64 > usable;
        if !any_candidate || idle_useful || surplus_slot {
            if let Some(d) = sem.score(k, prev, prev2, CertChoice::Idle) {
                let v = d + child_value(k + 1, CertChoice::Idle, prev, &budgets)?;
                best = Some(best.map_or(v, |b: i128| b.max(v)));
            }
        }
        let best = best.ok_or_else(|| {
            format!("dp.bellman-mismatch: slot {k} state has no legal choice at all")
        })?;
        if best != i128::from(e.value) {
            return Err(format!(
                "dp.bellman-mismatch: slot {k} state claims {} but the choice set yields {best}",
                e.value
            ));
        }
    }

    let root = (
        0u64,
        CertChoice::Idle.code(),
        CertChoice::Idle.code(),
        sem.canon_budgets(&sem.budget, 0),
    );
    let root_value = table.get(&root).copied().ok_or_else(|| {
        "dp.missing-state: root state (slot 0, idle, idle, full budgets) absent".to_string()
    })?;
    if root_value != claimed {
        return Err(format!(
            "dp.root-mismatch: root proves {root_value} but the certificate claims {claimed}"
        ));
    }
    Ok(())
}

/// Recomputes the closed-form safe cap the engine falls back to on
/// search-budget exhaustion: the tighter of a per-slot cap and a
/// decoupled CPU/DMA sum.
pub fn safe_cap(sem: &WindowSem) -> i128 {
    let max_demand = (0..sem.m)
        .map(|j| {
            if sem.ls[j] {
                sem.cin[j] + sem.exec[j]
            } else {
                sem.exec[j]
            }
        })
        .max()
        .unwrap_or(0);
    let slot_cap = max_demand.max(sem.max_l + sem.max_u);
    let last2_cap = max_demand.max(sem.l_i + sem.max_u) + sem.c_i.max(sem.max_l + sem.max_u);
    let per_slot = slot_cap * (sem.n as i128 - 2).max(0) + last2_cap;

    let total_jobs: u64 = sem.budget.iter().sum();
    let slots = sem.n as i128 - 1;
    let mut cpu_sum: i128 = 0;
    let mut dma_sum: i128 = 0;
    for j in 0..sem.m {
        let b = i128::from(sem.budget[j]);
        cpu_sum += b * if sem.ls[j] {
            sem.cin[j] + sem.exec[j]
        } else {
            sem.exec[j]
        };
        dma_sum += b * (sem.cin[j] + sem.cout[j]);
    }
    let ls_jobs: i128 = (0..sem.m)
        .filter(|&j| sem.ls[j])
        .map(|j| i128::from(sem.budget[j]))
        .sum();
    let free_slots = (slots - i128::from(total_jobs)).max(0) + ls_jobs;
    let cancel_extra = free_slots * sem.max_cancel_i0;
    let decoupled = cpu_sum + sem.c_i + dma_sum + cancel_extra + sem.l_i + sem.max_l + sem.max_u;

    per_slot.min(decoupled)
}

/// Recomputes the MILP formulation's deterministic `Σ_k Δcap_k` delay
/// cap (its effort-gated fallback bound): one per-slot interval cap —
/// `max(dcpu, din + dout)` over the placement variables that
/// structurally exist at the slot — summed over every interval. Derived
/// from the window's *recorded* LS flags; the MILP path applies no
/// canonicalization. Mirrors `SlotCaps` of the production formulation
/// in exact integer arithmetic.
pub fn milp_cap(w: &CertWindow) -> i128 {
    let n = w.n_intervals as usize;
    let last_lp = match w.case {
        CertCase::Nls => 1,
        CertCase::LsCaseA => 0,
    };
    let lp_copy_in_allowed = matches!(w.case, CertCase::Nls);
    // Rule R3: can some higher-priority LS release cancel `victim`'s
    // copy-in? (Same derivation as `WindowSem::new`, from recorded
    // flags.)
    let triggerable = |victim: usize| -> bool {
        let vp = w.tasks[victim].priority;
        if matches!(w.case, CertCase::LsCaseA) && w.priority_i < vp {
            return true;
        }
        w.tasks.iter().any(|t| t.ls && t.priority < vp)
    };
    let placeable = |k: usize| w.tasks.iter().filter(move |t| t.hp || k <= last_lp);
    let mut total: i128 = 0;
    for k in 0..n {
        let dcpu: i128 = if k + 1 == n {
            i128::from(w.exec_i)
        } else {
            placeable(k)
                .map(|t| {
                    if t.ls {
                        i128::from(t.copy_in) + i128::from(t.exec)
                    } else {
                        i128::from(t.exec)
                    }
                })
                .max()
                .unwrap_or(0)
        };
        let din: i128 = if k + 2 == n {
            i128::from(w.copy_in_i)
        } else if k + 1 == n {
            i128::from(w.max_l)
        } else {
            // Slots 0 … N−3: the copy-in of the next slot's execution
            // (`L_j^k`) or a canceled copy-in (`CL_j^k`).
            w.tasks
                .iter()
                .enumerate()
                .filter(|&(j, t)| {
                    let load = (t.hp || (k < last_lp && k == 0 && lp_copy_in_allowed)) && k + 2 < n;
                    let cancel = (t.hp || k == 0) && triggerable(j);
                    load || cancel
                })
                .map(|(_, t)| i128::from(t.copy_in))
                .max()
                .unwrap_or(0)
        };
        let dout: i128 = if k == 0 {
            i128::from(w.max_u)
        } else {
            placeable(k - 1)
                .map(|t| i128::from(t.copy_out))
                .max()
                .unwrap_or(0)
        };
        total += dcpu.max(din + dout);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CertWindowTask;

    fn empty_window() -> CertWindow {
        // One task alone: N = 2 (copy-in interval, then execution).
        CertWindow {
            case: CertCase::Nls,
            n_intervals: 2,
            tasks: vec![],
            exec_i: 10,
            copy_in_i: 3,
            copy_out_i: 2,
            priority_i: 0,
            max_l: 3,
            max_u: 2,
        }
    }

    fn lp_blocking_window() -> CertWindow {
        // One lp competitor with a huge execution: N = 3, blocking fills
        // I_0 (standalone copy-in) and I_1 (execution).
        CertWindow {
            case: CertCase::Nls,
            n_intervals: 3,
            tasks: vec![CertWindowTask {
                exec: 500,
                copy_in: 1,
                copy_out: 1,
                ls: false,
                hp: false,
                priority: 1,
                budget: 1,
            }],
            exec_i: 10,
            copy_in_i: 1,
            copy_out_i: 1,
            priority_i: 0,
            max_l: 1,
            max_u: 1,
        }
    }

    fn run(task: usize) -> CertChoice {
        CertChoice::Run {
            task,
            urgent: false,
        }
    }

    #[test]
    fn witness_replays_empty_window() {
        let sem = WindowSem::new(&empty_window()).expect("valid window");
        // Δ_0 = max(0, l_i + max_u) = 5; Δ_1 = max(10, max_l) = 10.
        assert_eq!(
            replay_witness(&sem, &[CertChoice::Idle]).expect("legal witness"),
            15
        );
        assert!(replay_witness(&sem, &[]).is_err());
    }

    #[test]
    fn witness_replays_lp_blocking() {
        let sem = WindowSem::new(&lp_blocking_window()).expect("valid window");
        // Slot 0 idle (standalone copy-in of the blocker), slot 1 runs it:
        // Δ_0 = l_lp + max_u = 2; Δ_1 = C_lp = 500; Δ_2 = 10. Total 512.
        let total = replay_witness(&sem, &[CertChoice::Idle, run(0)]).expect("legal witness");
        assert_eq!(total, 512);
        // Running it in slot 0 instead pairs differently but peaks the
        // same here.
        let total2 = replay_witness(&sem, &[run(0), CertChoice::Idle]).expect("legal witness");
        assert_eq!(total2, 512);
    }

    #[test]
    fn witness_rejects_illegal_placements() {
        let sem = WindowSem::new(&lp_blocking_window()).expect("valid window");
        // Budget overrun.
        let err = replay_witness(&sem, &[run(0), run(0)]).expect_err("budget overrun");
        assert!(err.starts_with("witness.budget"), "{err}");
        // Task index out of range.
        let err = replay_witness(&sem, &[run(7), CertChoice::Idle]).expect_err("range");
        assert!(err.starts_with("witness.task-range"), "{err}");
        // Urgent execution of an NLS task.
        let err = replay_witness(
            &sem,
            &[
                CertChoice::Run {
                    task: 0,
                    urgent: true,
                },
                CertChoice::Idle,
            ],
        )
        .expect_err("urgent NLS");
        assert!(err.starts_with("witness.placement"), "{err}");
    }

    #[test]
    fn lp_stranded_past_exec_region() {
        // An lp placement after `last_lp_exec` must be rejected.
        let mut w = lp_blocking_window();
        w.n_intervals = 4;
        let sem = WindowSem::new(&w).expect("valid window");
        let err = replay_witness(&sem, &[CertChoice::Idle, CertChoice::Idle, run(0)])
            .expect_err("stranded lp");
        assert!(err.starts_with("witness.placement"), "{err}");
    }

    #[test]
    fn dp_table_verifies_empty_window() {
        let sem = WindowSem::new(&empty_window()).expect("valid window");
        let root = DpEntry {
            k: 0,
            prev: CertChoice::Idle,
            prev2: CertChoice::Idle,
            budgets: vec![],
            value: 15,
        };
        verify_dp_table(&sem, &[root.clone()], 15).expect("table verifies");
        // Wrong claim.
        let err = verify_dp_table(&sem, &[root.clone()], 14).expect_err("wrong claim");
        assert!(err.starts_with("dp.root-mismatch"), "{err}");
        // Wrong entry value: the Bellman equation itself fails.
        let bad = DpEntry { value: 14, ..root };
        let err = verify_dp_table(&sem, &[bad], 14).expect_err("wrong value");
        assert!(err.starts_with("dp.bellman-mismatch"), "{err}");
        // Empty table: root missing.
        let err = verify_dp_table(&sem, &[], 15).expect_err("missing root");
        assert!(err.starts_with("dp.missing-state"), "{err}");
    }

    #[test]
    fn dp_table_verifies_lp_blocking() {
        let sem = WindowSem::new(&lp_blocking_window()).expect("valid window");
        let root = DpEntry {
            k: 0,
            prev: CertChoice::Idle,
            prev2: CertChoice::Idle,
            budgets: vec![1],
            value: 512,
        };
        // Reachable interior states: slot 1 after running the blocker in
        // slot 0, and slot 1 after idling (surplus-slot gate).
        let after_run = DpEntry {
            k: 1,
            prev: run(0),
            prev2: CertChoice::Idle,
            budgets: vec![0],
            value: 512,
        };
        let after_idle = DpEntry {
            k: 1,
            prev: CertChoice::Idle,
            prev2: CertChoice::Idle,
            budgets: vec![1],
            value: 512,
        };
        let table = vec![root, after_run.clone(), after_idle];
        verify_dp_table(&sem, &table, 512).expect("table verifies");
        // Dropping a reachable successor is rejected.
        let truncated = vec![table[0].clone(), after_run];
        let err = verify_dp_table(&sem, &truncated, 512).expect_err("missing state");
        assert!(err.starts_with("dp.missing-state"), "{err}");
        // Duplicate state.
        let dup = vec![table[0].clone(), table[0].clone()];
        let err = verify_dp_table(&sem, &dup, 512).expect_err("duplicate");
        assert!(err.starts_with("dp.duplicate-state"), "{err}");
    }

    #[test]
    fn safe_cap_dominates_exact_values() {
        for w in [empty_window(), lp_blocking_window()] {
            let sem = WindowSem::new(&w).expect("valid window");
            let cap = safe_cap(&sem);
            // The caps must dominate the hand-computed exact optima.
            let exact = if w.tasks.is_empty() { 15 } else { 512 };
            assert!(cap >= exact, "cap {cap} < exact {exact}");
        }
    }

    #[test]
    fn milp_cap_matches_formulation() {
        let w = lp_blocking_window();
        // Per-slot caps (N = 3, one lp blocker placeable in I_0/I_1):
        // Δcap_0 = max(dcpu 500, din 1 + dout 1) = 500,
        // Δcap_1 = max(500, copy_in_i 1 + cout 1) = 500,
        // Δcap_2 = max(exec_i 10, max_l 1 + cout 1) = 10.
        assert_eq!(milp_cap(&w), 500 + 500 + 10);
    }

    #[test]
    fn canonicalization_drops_inert_ls() {
        let mut w = lp_blocking_window();
        // Mark the blocker LS with zero copy-in and no victim below it:
        // the flag must be dropped, so an urgent placement stays illegal.
        w.tasks[0].ls = true;
        w.tasks[0].copy_in = 0;
        w.max_l = 1;
        let sem = WindowSem::new(&w).expect("valid window");
        assert!(!sem.ls[0]);
        // With a victim (τ_i is not a victim; add a second, lower-priority
        // task) the flag survives.
        w.tasks.push(CertWindowTask {
            exec: 5,
            copy_in: 4,
            copy_out: 1,
            ls: false,
            hp: false,
            priority: 2,
            budget: 1,
        });
        let sem2 = WindowSem::new(&w).expect("valid window");
        assert!(sem2.ls[0]);
        assert_eq!(sem2.max_lower_i0[0], Some(4));
    }

    #[test]
    fn malformed_windows_rejected() {
        let mut w = empty_window();
        w.exec_i = -1;
        assert!(WindowSem::new(&w)
            .unwrap_err()
            .starts_with("window.malformed"));
        let mut w2 = empty_window();
        w2.n_intervals = MAX_INTERVALS + 1;
        assert!(WindowSem::new(&w2)
            .unwrap_err()
            .starts_with("window.too-large"));
    }
}
