//! Independent re-derivation of analysis windows from first principles.
//!
//! This module re-implements — from the paper, not from `pmcs-core` —
//! the arrival curve η, the window construction of Theorem 1 /
//! Corollary 1, the LS case (b) closed form, and the promotion-inertness
//! predicate used by the greedy marking. A [`WcrtCertificate`] does not
//! get to *describe* its windows; the checker rebuilds each one from the
//! task set and the claimed marking and compares content hashes, so a
//! certificate for the wrong window is rejected outright.
//!
//! [`WcrtCertificate`]: crate::types::WcrtCertificate

use crate::types::{CertArrival, CertCase, CertTask, CertTaskSet, CertWindow, CertWindowTask};

/// Ceiling division for positive divisors (`a` may be any sign).
fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil: divisor must be positive");
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

/// Floor division for positive divisors.
fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor: divisor must be positive");
    a.div_euclid(b)
}

/// Maximum number of releases of a task in any half-open window of
/// length `delta` ticks (the paper's η).
///
/// # Errors
///
/// Rejects non-positive periods and negative window lengths — a
/// certificate carrying such an arrival model is malformed, not merely
/// unschedulable.
pub fn eta(arrival: &CertArrival, delta: i64) -> Result<u64, String> {
    if delta < 0 {
        return Err("window.eta: negative window length".to_string());
    }
    if delta == 0 {
        return Ok(0);
    }
    match arrival {
        CertArrival::Sporadic { min_inter_arrival } => {
            if *min_inter_arrival <= 0 {
                return Err("window.eta: non-positive inter-arrival time".to_string());
            }
            Ok(div_ceil(delta, *min_inter_arrival) as u64)
        }
        CertArrival::PeriodicJitter { period, jitter } => {
            if *period <= 0 {
                return Err("window.eta: non-positive period".to_string());
            }
            if *jitter < 0 {
                return Err("window.eta: negative jitter".to_string());
            }
            Ok(div_ceil(delta + *jitter, *period) as u64)
        }
        CertArrival::Staircase { steps, tail_period } => {
            if *tail_period <= 0 {
                return Err("window.eta: non-positive tail period".to_string());
            }
            match steps.last() {
                None => Ok(div_ceil(delta, *tail_period) as u64),
                Some(&(last_delta, last_count)) => {
                    if delta <= last_delta {
                        // Largest step with δ_k ≤ δ; a single event fits
                        // any positive window, so the floor is 1.
                        let mut count = 1;
                        for &(d, n) in steps {
                            if d <= delta {
                                count = n;
                            } else {
                                break;
                            }
                        }
                        Ok(count)
                    } else {
                        Ok(last_count + div_floor(delta - last_delta, *tail_period) as u64)
                    }
                }
            }
        }
    }
}

/// `true` iff `a` is strictly higher priority than `b` (lower value).
fn higher(a: u32, b: u32) -> bool {
    a < b
}

/// Rebuilds the Theorem 1 / Corollary 1 analysis window for `task_id`
/// under the given LS `marking` (sorted task ids), case, and window
/// length `t` ticks.
///
/// # Errors
///
/// Rejects unknown task ids and malformed arrival models.
pub fn build_window(
    set: &CertTaskSet,
    task_id: u32,
    marking: &[u32],
    case: CertCase,
    t: i64,
) -> Result<CertWindow, String> {
    let tua = set
        .tasks
        .iter()
        .find(|tk| tk.id == task_id)
        .ok_or_else(|| format!("window.build: unknown task id {task_id}"))?;
    let mut tasks = Vec::with_capacity(set.tasks.len().saturating_sub(1));
    let mut hp_jobs: u64 = 0;
    let mut lp_count: u64 = 0;
    for task in &set.tasks {
        if task.id == task_id {
            continue;
        }
        let hp = higher(task.priority, tua.priority);
        let budget = if hp {
            let b = eta(&task.arrival, t)? + 1;
            hp_jobs += b;
            b
        } else {
            lp_count += 1;
            1
        };
        tasks.push(CertWindowTask {
            exec: task.exec,
            copy_in: task.copy_in,
            copy_out: task.copy_out,
            ls: marking.contains(&task.id),
            hp,
            priority: task.priority,
            budget,
        });
    }
    // Blocking intervals: two as soon as one lower-priority task exists
    // (copy-in-then-execute chain of a single lp job) for the NLS case,
    // at most one for LS case (a); at least two intervals total.
    let blocking = match case {
        CertCase::Nls => {
            if lp_count == 0 {
                0
            } else {
                2
            }
        }
        CertCase::LsCaseA => lp_count.min(1),
    };
    let n_intervals = (hp_jobs + blocking + 1).max(2);
    let max_l = set.tasks.iter().map(|tk| tk.copy_in).max().unwrap_or(0);
    let max_u = set.tasks.iter().map(|tk| tk.copy_out).max().unwrap_or(0);
    Ok(CertWindow {
        case,
        n_intervals,
        tasks,
        exec_i: tua.exec,
        copy_in_i: tua.copy_in,
        copy_out_i: tua.copy_out,
        priority_i: tua.priority,
        max_l,
        max_u,
    })
}

/// LS case (b) closed-form response bound (Corollary 1's second case):
/// τ_i arrives during another task's interval, executes urgently in the
/// next, and suffers at most one full competitor demand plus boundary
/// transfers.
pub fn ls_case_b(w: &CertWindow) -> i64 {
    let dma0 = w.max_l + w.max_u;
    let own = w.copy_in_i + w.exec_i;
    let mut best = dma0.max(own.max(w.max_l));
    for t in &w.tasks {
        let demand = if t.ls { t.copy_in + t.exec } else { t.exec };
        let d0 = demand.max(dma0);
        let d1 = own.max(w.max_l + t.copy_out);
        best = best.max(d0 + d1);
    }
    best = best.max(dma0 + own.max(w.max_l));
    best + w.copy_out_i
}

/// Whether promoting `promoted` to LS can change the analysis of
/// `analyzed` (the reuse-soundness predicate of the greedy marking).
///
/// Promotion is *inert* for `analyzed` unless the promoted task is the
/// analyzed task itself, has a nonzero copy-in (its window demand
/// changes), or is higher priority than some third task (its urgency can
/// reshape that task's windows transitively).
pub fn promotion_affects(set: &CertTaskSet, promoted: u32, analyzed: u32) -> bool {
    if promoted == analyzed {
        return true;
    }
    let pj: &CertTask = match set.tasks.iter().find(|t| t.id == promoted) {
        Some(t) => t,
        // Unknown promoted task: conservatively affected (the production
        // side treats this identically; the sched checker separately
        // rejects promotions of unknown tasks).
        None => return true,
    };
    if pj.copy_in > 0 {
        return true;
    }
    set.tasks
        .iter()
        .any(|t| t.id != analyzed && t.id != promoted && higher(pj.priority, t.priority))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sporadic(t: i64) -> CertArrival {
        CertArrival::Sporadic {
            min_inter_arrival: t,
        }
    }

    fn task(id: u32, priority: u32, exec: i64, copy_in: i64, copy_out: i64, t: i64) -> CertTask {
        CertTask {
            id,
            exec,
            copy_in,
            copy_out,
            deadline: t,
            priority,
            arrival: sporadic(t),
        }
    }

    #[test]
    fn eta_models() {
        assert_eq!(eta(&sporadic(10), 0).expect("eta"), 0);
        assert_eq!(eta(&sporadic(10), 1).expect("eta"), 1);
        assert_eq!(eta(&sporadic(10), 10).expect("eta"), 1);
        assert_eq!(eta(&sporadic(10), 11).expect("eta"), 2);
        let pj = CertArrival::PeriodicJitter {
            period: 10,
            jitter: 5,
        };
        assert_eq!(eta(&pj, 6).expect("eta"), 2);
        let st = CertArrival::Staircase {
            steps: vec![(1, 3)],
            tail_period: 10,
        };
        assert_eq!(eta(&st, 1).expect("eta"), 3);
        assert_eq!(eta(&st, 11).expect("eta"), 4);
        assert_eq!(eta(&st, 21).expect("eta"), 5);
        assert!(eta(&sporadic(0), 1).is_err());
        assert!(eta(&sporadic(10), -1).is_err());
    }

    #[test]
    fn build_counts_intervals() {
        let set = CertTaskSet {
            tasks: vec![
                task(0, 0, 5, 1, 1, 100),
                task(1, 1, 7, 2, 2, 50),
                task(2, 2, 9, 3, 3, 40),
            ],
        };
        // Analyzing the middle task: one hp competitor (2 jobs in t=100),
        // one lp competitor → NLS blocking 2, N = 3 + 2 + 1 = wait:
        // hp budget = eta(100 over T=100) + 1 = 1 + 1 = 2 → N = 2+2+1 = 5.
        let w = build_window(&set, 1, &[], CertCase::Nls, 100).expect("build");
        assert_eq!(w.n_intervals, 5);
        assert_eq!(w.tasks.len(), 2);
        assert!(w.tasks[0].hp);
        assert!(!w.tasks[1].hp);
        assert_eq!(w.tasks[0].budget, 2);
        assert_eq!(w.tasks[1].budget, 1);
        assert_eq!(w.max_l, 3);
        assert_eq!(w.max_u, 3);
        // LS case (a) drops one blocking interval.
        let wa = build_window(&set, 1, &[1], CertCase::LsCaseA, 100).expect("build");
        assert_eq!(wa.n_intervals, 4);
        // No lp tasks: analyzing the lowest-priority task drops blocking
        // to zero in the NLS case.
        let wl = build_window(&set, 2, &[], CertCase::Nls, 40).expect("build");
        assert_eq!(wl.tasks.iter().filter(|t| !t.hp).count(), 0);
        // hp budgets: eta(40 over 100)+1 = 2, eta(40 over 50)+1 = 2 → N=5.
        assert_eq!(wl.n_intervals, 5);
        assert!(build_window(&set, 9, &[], CertCase::Nls, 10).is_err());
    }

    #[test]
    fn marking_sets_ls_flags() {
        let set = CertTaskSet {
            tasks: vec![task(0, 0, 5, 1, 1, 100), task(1, 1, 7, 2, 2, 50)],
        };
        let w = build_window(&set, 1, &[0], CertCase::Nls, 50).expect("build");
        assert!(w.tasks[0].ls);
        let w2 = build_window(&set, 1, &[], CertCase::Nls, 50).expect("build");
        assert!(!w2.tasks[0].ls);
        assert_ne!(w.content_hash(), w2.content_hash());
    }

    #[test]
    fn promotion_affects_cases() {
        let set = CertTaskSet {
            tasks: vec![
                task(0, 0, 5, 0, 1, 100),
                task(1, 1, 7, 2, 2, 50),
                task(2, 2, 9, 0, 3, 40),
            ],
        };
        // Self-promotion always affects.
        assert!(promotion_affects(&set, 1, 1));
        // Nonzero copy-in affects everyone.
        assert!(promotion_affects(&set, 1, 0));
        // Zero copy-in, promoted is higher priority than a third task.
        assert!(promotion_affects(&set, 0, 2));
        // Zero copy-in, lowest priority, no third task below: inert.
        assert!(!promotion_affects(&set, 2, 0));
        // Unknown promoted id: conservatively affected.
        assert!(promotion_affects(&set, 9, 0));
    }
}
