//! The independent certificate checker.
//!
//! [`check_certificate_set`] re-evaluates every proof step of a
//! [`CertificateSet`] bottom-up — window claims first, then the
//! fixed-point replays that reference them, then the greedy-marking
//! replay that references those — sharing **no** code with the producing
//! analysis. Each rejected step yields a [`Rejection`] whose `code` is a
//! stable machine-readable identifier (e.g. `dp.bellman-mismatch`,
//! `wcrt.unproven-window`, `sched.stale-reuse`) suitable for scripting
//! and CI assertions.

use std::collections::HashMap;

use pmcs_milp::{verify_bb_tree, Rational};

use crate::dp::{milp_cap, replay_witness, safe_cap, verify_dp_table, WindowSem};
use crate::types::{
    CertCase, CertTaskSet, CertWcrtStep, CertificateSet, DelayCertificate, SchedCertificate,
    UpperProof, WcrtCertificate, CERT_FORMAT_VERSION,
};
use crate::window::{build_window, ls_case_b, promotion_affects};

/// Cap on fixed-point steps per task certificate (mirrors the producing
/// analyzer's iteration cap).
pub const MAX_WCRT_STEPS: usize = 512;

/// One rejected proof step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Stable machine-readable code, e.g. `dp.root-mismatch`.
    pub code: String,
    /// Human-readable detail naming the offending object.
    pub detail: String,
}

impl Rejection {
    fn from_message(context: &str, message: String) -> Rejection {
        // Checker-internal errors carry their code as a `code: detail`
        // prefix; split it off and scope the detail with the context.
        let (code, detail) = match message.split_once(": ") {
            Some((c, d)) => (c.to_string(), d.to_string()),
            None => ("cert.malformed".to_string(), message),
        };
        Rejection {
            code,
            detail: format!("{context}: {detail}"),
        }
    }

    fn new(code: &str, detail: String) -> Rejection {
        Rejection {
            code: code.to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// Outcome of checking one certificate bundle.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Certificates examined (windows + tasks + the set certificate).
    pub checked: usize,
    /// All rejections, in checking order.
    pub rejections: Vec<Rejection>,
}

impl CheckReport {
    /// `true` iff every certificate was accepted.
    pub fn ok(&self) -> bool {
        self.rejections.is_empty()
    }
}

/// A window certificate accepted earlier in the same bundle.
struct AcceptedWindow {
    index: usize,
    claimed: i64,
    exact: bool,
}

/// An accepted task certificate, keyed by `(task, marking)`.
struct AcceptedWcrt {
    wcrt: i64,
    schedulable: bool,
}

/// Checks every certificate of a bundle; never panics on malformed
/// input — every defect becomes a [`Rejection`].
pub fn check_certificate_set(set: &CertificateSet) -> CheckReport {
    let mut report = CheckReport::default();
    if set.version != CERT_FORMAT_VERSION {
        report.rejections.push(Rejection::new(
            "format.version",
            format!(
                "bundle version {} but this checker implements {CERT_FORMAT_VERSION}",
                set.version
            ),
        ));
        return report;
    }
    if let Err(r) = check_task_set(&set.task_set) {
        report.rejections.push(r);
        return report;
    }

    // Phase 1: window-level certificates.
    let mut windows: HashMap<u64, AcceptedWindow> = HashMap::new();
    for (i, cert) in set.windows.iter().enumerate() {
        report.checked += 1;
        match check_window_cert(cert, i) {
            Ok(()) => {
                if windows
                    .insert(
                        cert.window_hash,
                        AcceptedWindow {
                            index: i,
                            claimed: cert.claimed,
                            exact: cert.exact,
                        },
                    )
                    .is_some()
                {
                    report.rejections.push(Rejection::new(
                        "window.duplicate",
                        format!(
                            "window certificate {i} repeats hash {:016x}",
                            cert.window_hash
                        ),
                    ));
                }
            }
            Err(r) => report.rejections.push(r),
        }
    }

    // Phase 2: task-level certificates, each replayed against accepted
    // windows only.
    let mut wcrts: HashMap<(u32, Vec<u32>), AcceptedWcrt> = HashMap::new();
    for (i, cert) in set.wcrts.iter().enumerate() {
        report.checked += 1;
        match check_wcrt_cert(set, &windows, cert, i) {
            Ok(()) => {
                if wcrts
                    .insert(
                        (cert.task, cert.marking.clone()),
                        AcceptedWcrt {
                            wcrt: cert.wcrt,
                            schedulable: cert.schedulable,
                        },
                    )
                    .is_some()
                {
                    report.rejections.push(Rejection::new(
                        "wcrt.duplicate",
                        format!("task certificate {i} repeats (task, marking)"),
                    ));
                }
            }
            Err(r) => report.rejections.push(r),
        }
    }

    // Phase 3: the set-level certificate, replayed against accepted task
    // certificates only.
    if let Some(sched) = &set.sched {
        report.checked += 1;
        if let Err(r) = check_sched_cert(&set.task_set, &wcrts, sched) {
            report.rejections.push(r);
        }
    }
    report
}

/// Structural validity of the task set itself: unique ids, strictly
/// decreasing priority order (the iteration order every window rebuild
/// depends on).
fn check_task_set(set: &CertTaskSet) -> Result<(), Rejection> {
    for pair in set.tasks.windows(2) {
        if pair[0].priority >= pair[1].priority {
            return Err(Rejection::new(
                "taskset.order",
                format!(
                    "tasks {} and {} are not in strictly decreasing priority order",
                    pair[0].id, pair[1].id
                ),
            ));
        }
    }
    for (i, t) in set.tasks.iter().enumerate() {
        if set.tasks[..i].iter().any(|u| u.id == t.id) {
            return Err(Rejection::new(
                "taskset.duplicate-id",
                format!("task id {} appears twice", t.id),
            ));
        }
        if t.exec < 0 || t.copy_in < 0 || t.copy_out < 0 || t.deadline < 0 {
            return Err(Rejection::new(
                "taskset.malformed",
                format!("task {} has a negative duration", t.id),
            ));
        }
    }
    Ok(())
}

fn check_window_cert(cert: &DelayCertificate, index: usize) -> Result<(), Rejection> {
    let ctx = format!("window certificate {index}");
    let actual_hash = cert.window.content_hash();
    if actual_hash != cert.window_hash {
        return Err(Rejection::new(
            "window.hash-mismatch",
            format!(
                "{ctx}: recorded hash {:016x} but content hashes to {actual_hash:016x}",
                cert.window_hash
            ),
        ));
    }
    let sem = WindowSem::new(&cert.window).map_err(|e| Rejection::from_message(&ctx, e))?;
    let claimed = i128::from(cert.claimed);

    if sem.n() < 2 {
        // Degenerate window: the value is a closed form; no witness or
        // proof tree applies.
        if !cert.exact || claimed != sem.small_value() {
            return Err(Rejection::new(
                "delay.small-window-mismatch",
                format!(
                    "{ctx}: degenerate window is exactly {} but the certificate claims {} \
                     (exact={})",
                    sem.small_value(),
                    cert.claimed,
                    cert.exact
                ),
            ));
        }
        return Ok(());
    }

    // Upper bound: no legal placement exceeds the claim.
    match &cert.upper {
        UpperProof::DpTable(entries) => {
            if !cert.exact {
                return Err(Rejection::new(
                    "delay.exactness",
                    format!("{ctx}: a DP-table proof asserts exactness but exact=false"),
                ));
            }
            verify_dp_table(&sem, entries, claimed)
                .map_err(|e| Rejection::from_message(&ctx, e))?;
        }
        UpperProof::SafeCap => {
            if cert.exact {
                return Err(Rejection::new(
                    "delay.exactness",
                    format!("{ctx}: a safe-cap proof cannot assert exactness"),
                ));
            }
            let cap = safe_cap(&sem);
            if claimed < cap {
                return Err(Rejection::new(
                    "delay.cap-understates",
                    format!(
                        "{ctx}: claims {} below the recomputed safe cap {cap}",
                        cert.claimed
                    ),
                ));
            }
        }
        UpperProof::MilpCap => {
            if cert.exact {
                return Err(Rejection::new(
                    "delay.exactness",
                    format!("{ctx}: a big-M-cap proof cannot assert exactness"),
                ));
            }
            let cap = milp_cap(&cert.window);
            if claimed != cap {
                return Err(Rejection::new(
                    "delay.cap-understates",
                    format!(
                        "{ctx}: claims {} but the recomputed N·M cap is {cap}",
                        cert.claimed
                    ),
                ));
            }
        }
        UpperProof::BbTree { problem, tree } => {
            // The VIPR-style proof: every leaf of the branch-and-bound
            // tree carries an exact-rational dual bound or Farkas
            // certificate over the embedded problem. The encoding of the
            // window *as* that problem is the trusted boundary; the
            // witness below pinches the claim from the placement side.
            verify_bb_tree(problem, tree, Rational::from_int(claimed))
                .map_err(|e| Rejection::from_message(&ctx, e))?;
        }
    }

    // Lower bound: a concrete placement attains the claim (mandatory for
    // exact claims, optional sanity for inexact ones).
    match &cert.witness {
        Some(witness) => {
            let total =
                replay_witness(&sem, witness).map_err(|e| Rejection::from_message(&ctx, e))?;
            if cert.exact && total != claimed {
                return Err(Rejection::new(
                    "witness.value-mismatch",
                    format!(
                        "{ctx}: witness attains {total} but the exact claim is {}",
                        cert.claimed
                    ),
                ));
            }
            if total > claimed {
                return Err(Rejection::new(
                    "witness.exceeds-claim",
                    format!(
                        "{ctx}: witness attains {total}, refuting the claimed upper bound {}",
                        cert.claimed
                    ),
                ));
            }
        }
        None => {
            if cert.exact {
                return Err(Rejection::new(
                    "witness.missing",
                    format!("{ctx}: exact claims require a placement witness"),
                ));
            }
        }
    }
    Ok(())
}

/// Looks up one fixed-point step's window among the accepted window
/// certificates, insisting on *structural* equality with the rebuilt
/// window (the hash is only the lookup key).
fn resolve_step<'a>(
    set: &'a CertificateSet,
    windows: &HashMap<u64, AcceptedWindow>,
    rebuilt: &crate::types::CertWindow,
    step: &CertWcrtStep,
    ctx: &str,
    what: &str,
) -> Result<(&'a DelayCertificate, i64, bool), Rejection> {
    let hash = rebuilt.content_hash();
    if hash != step.window_hash {
        return Err(Rejection::new(
            "wcrt.window-hash-mismatch",
            format!(
                "{ctx}: {what} references window {:016x} but the rebuilt window hashes to \
                 {hash:016x}",
                step.window_hash
            ),
        ));
    }
    let accepted = windows.get(&hash).ok_or_else(|| {
        Rejection::new(
            "wcrt.unproven-window",
            format!("{ctx}: {what} references window {hash:016x} with no accepted certificate"),
        )
    })?;
    let cert = &set.windows[accepted.index];
    if cert.window != *rebuilt {
        return Err(Rejection::new(
            "wcrt.window-hash-mismatch",
            format!(
                "{ctx}: {what} window content differs from the rebuilt window (hash collision)"
            ),
        ));
    }
    Ok((cert, accepted.claimed, accepted.exact))
}

fn check_wcrt_cert(
    set: &CertificateSet,
    windows: &HashMap<u64, AcceptedWindow>,
    cert: &WcrtCertificate,
    index: usize,
) -> Result<(), Rejection> {
    let ctx = format!("task certificate {index} (τ{})", cert.task);
    let task = set
        .task_set
        .tasks
        .iter()
        .find(|t| t.id == cert.task)
        .ok_or_else(|| {
            Rejection::new("wcrt.unknown-task", format!("{ctx}: task not in the set"))
        })?;

    // The marking must be a sorted duplicate-free subset of the set.
    for pair in cert.marking.windows(2) {
        if pair[0] >= pair[1] {
            return Err(Rejection::new(
                "wcrt.bad-marking",
                format!("{ctx}: marking is not strictly sorted"),
            ));
        }
    }
    for &id in &cert.marking {
        if set.task_set.index_of(id).is_none() {
            return Err(Rejection::new(
                "wcrt.bad-marking",
                format!("{ctx}: marking names unknown task {id}"),
            ));
        }
    }
    let self_marked = cert.marking.contains(&cert.task);
    let expected_case = if self_marked {
        CertCase::LsCaseA
    } else {
        CertCase::Nls
    };
    if cert.case != expected_case {
        return Err(Rejection::new(
            "wcrt.case-mismatch",
            format!(
                "{ctx}: marking {} the task but the certificate uses the {:?} case",
                if self_marked { "includes" } else { "excludes" },
                cert.case
            ),
        ));
    }
    if cert.steps.len() > MAX_WCRT_STEPS {
        return Err(Rejection::new(
            "wcrt.too-many-steps",
            format!(
                "{ctx}: {} steps exceeds the iteration cap",
                cert.steps.len()
            ),
        ));
    }

    let deadline = i128::from(task.deadline);
    let base = i128::from(task.exec) + i128::from(task.copy_out);

    // LS case (b): closed form, checked against the checker's own
    // re-derivation over the zero-length window.
    let case_b: Option<i128> = if cert.case == CertCase::LsCaseA {
        let w0 = build_window(
            &set.task_set,
            cert.task,
            &cert.marking,
            CertCase::LsCaseA,
            0,
        )
        .map_err(|e| Rejection::from_message(&ctx, e))?;
        let recomputed = i128::from(ls_case_b(&w0));
        match cert.case_b {
            Some(claimed) if i128::from(claimed) == recomputed => Some(recomputed),
            Some(claimed) => {
                return Err(Rejection::new(
                    "wcrt.case-b-mismatch",
                    format!(
                        "{ctx}: case (b) recomputes to {recomputed}, certificate says {claimed}"
                    ),
                ))
            }
            None => {
                return Err(Rejection::new(
                    "wcrt.case-b-mismatch",
                    format!("{ctx}: LS certificate lacks the case (b) response"),
                ))
            }
        }
    } else {
        if cert.case_b.is_some() {
            return Err(Rejection::new(
                "wcrt.case-mismatch",
                format!("{ctx}: NLS certificate carries a case (b) response"),
            ));
        }
        None
    };

    // LS short-circuit: case (b) alone exceeds the deadline.
    if let Some(cb) = case_b {
        if cb > deadline {
            if !cert.steps.is_empty() {
                return Err(Rejection::new(
                    "wcrt.verdict-mismatch",
                    format!("{ctx}: case (b) misses the deadline; no fixed point should follow"),
                ));
            }
            return finish_verdict(&ctx, cert, cb, deadline);
        }
    }

    // Fixed-point replay: start at the interference-free response and
    // re-derive every step's window from scratch.
    if cert.steps.is_empty() {
        return Err(Rejection::new(
            "wcrt.no-steps",
            format!("{ctx}: fixed-point certificate has no steps"),
        ));
    }
    let mut response = i128::from(task.copy_in) + base;
    let mut resolved: Option<i128> = None;
    for (s, step) in cert.steps.iter().enumerate() {
        if resolved.is_some() {
            return Err(Rejection::new(
                "wcrt.incomplete-iteration",
                format!("{ctx}: steps continue past the fixed point at step {s}"),
            ));
        }
        let expected_len = response - base;
        if i128::from(step.window_len) != expected_len {
            return Err(Rejection::new(
                "wcrt.window-len-mismatch",
                format!(
                    "{ctx}: step {s} uses window length {} but the iteration is at {expected_len}",
                    step.window_len
                ),
            ));
        }
        let rebuilt = build_window(
            &set.task_set,
            cert.task,
            &cert.marking,
            cert.case,
            step.window_len,
        )
        .map_err(|e| Rejection::from_message(&ctx, e))?;
        let what = format!("step {s}");
        let (_, claimed, exact) = resolve_step(set, windows, &rebuilt, step, &ctx, &what)?;
        if claimed != step.delay || exact != step.exact {
            return Err(Rejection::new(
                "wcrt.step-mismatch",
                format!(
                    "{ctx}: step {s} records delay {} (exact={}) but the window certificate \
                     proves {claimed} (exact={exact})",
                    step.delay, step.exact
                ),
            ));
        }
        let next = i128::from(step.delay) + i128::from(task.copy_out);
        if next > deadline {
            resolved = Some(next);
        } else if next <= response {
            resolved = Some(response);
        } else {
            response = next;
        }
    }
    let response = resolved.ok_or_else(|| {
        Rejection::new(
            "wcrt.incomplete-iteration",
            format!("{ctx}: steps end before reaching a fixed point or deadline miss"),
        )
    })?;
    let wcrt = match case_b {
        Some(cb) => response.max(cb),
        None => response,
    };
    finish_verdict(&ctx, cert, wcrt, deadline)
}

fn finish_verdict(
    ctx: &str,
    cert: &WcrtCertificate,
    wcrt: i128,
    deadline: i128,
) -> Result<(), Rejection> {
    let schedulable = wcrt <= deadline;
    if i128::from(cert.wcrt) != wcrt || cert.schedulable != schedulable {
        return Err(Rejection::new(
            "wcrt.verdict-mismatch",
            format!(
                "{ctx}: replay derives wcrt {wcrt} (schedulable={schedulable}) but the \
                 certificate claims {} (schedulable={})",
                cert.wcrt, cert.schedulable
            ),
        ));
    }
    Ok(())
}

fn check_sched_cert(
    task_set: &CertTaskSet,
    wcrts: &HashMap<(u32, Vec<u32>), AcceptedWcrt>,
    cert: &SchedCertificate,
) -> Result<(), Rejection> {
    let ctx = "set certificate";
    if cert.rounds.len() != cert.promoted.len() + 1 {
        return Err(Rejection::new(
            "sched.round-count",
            format!(
                "{ctx}: {} rounds for {} promotions (must be promotions + 1)",
                cert.rounds.len(),
                cert.promoted.len()
            ),
        ));
    }
    for (i, &p) in cert.promoted.iter().enumerate() {
        if task_set.index_of(p).is_none() || cert.promoted[..i].contains(&p) {
            return Err(Rejection::new(
                "sched.bad-promotion",
                format!("{ctx}: promotion {i} names an unknown or repeated task {p}"),
            ));
        }
    }

    // `fresh_in[idx]` remembers, per set index, the round and values of
    // the latest fresh analysis.
    let mut fresh_in: Vec<Option<(usize, i64, bool)>> = vec![None; task_set.tasks.len()];
    let last = cert.rounds.len() - 1;
    for (r, round) in cert.rounds.iter().enumerate() {
        let mut marking: Vec<u32> = cert.promoted[..r].to_vec();
        marking.sort_unstable();
        for (i, entry) in round.entries.iter().enumerate() {
            // Entries must follow the set's priority order as a prefix.
            let expected = task_set.tasks.get(i).map(|t| t.id);
            if expected != Some(entry.task) {
                return Err(Rejection::new(
                    "sched.order",
                    format!(
                        "{ctx}: round {r} entry {i} is τ{} but priority order expects {:?}",
                        entry.task, expected
                    ),
                ));
            }
            if entry.fresh {
                let proof = wcrts.get(&(entry.task, marking.clone())).ok_or_else(|| {
                    Rejection::new(
                        "sched.unproven-task",
                        format!(
                            "{ctx}: round {r} has no accepted certificate for τ{} under \
                             marking {:?}",
                            entry.task, marking
                        ),
                    )
                })?;
                if proof.wcrt != entry.wcrt || proof.schedulable != entry.schedulable {
                    return Err(Rejection::new(
                        "sched.entry-mismatch",
                        format!(
                            "{ctx}: round {r} records wcrt {} for τ{} but its certificate \
                             proves {}",
                            entry.wcrt, entry.task, proof.wcrt
                        ),
                    ));
                }
                fresh_in[i] = Some((r, entry.wcrt, entry.schedulable));
            } else {
                let (r0, wcrt, schedulable) = fresh_in[i].ok_or_else(|| {
                    Rejection::new(
                        "sched.stale-reuse",
                        format!(
                            "{ctx}: round {r} reuses τ{} never analyzed fresh before",
                            entry.task
                        ),
                    )
                })?;
                // Every promotion since the fresh analysis must be
                // provably inert for this task.
                for q in r0..r {
                    if promotion_affects(task_set, cert.promoted[q], entry.task) {
                        return Err(Rejection::new(
                            "sched.stale-reuse",
                            format!(
                                "{ctx}: round {r} reuses τ{} across the non-inert promotion \
                                 of τ{}",
                                entry.task, cert.promoted[q]
                            ),
                        ));
                    }
                }
                if wcrt != entry.wcrt || schedulable != entry.schedulable {
                    return Err(Rejection::new(
                        "sched.entry-mismatch",
                        format!(
                            "{ctx}: round {r} reuses τ{} with wcrt {} but round {r0} proved {}",
                            entry.task, entry.wcrt, wcrt
                        ),
                    ));
                }
            }
        }

        let first_miss = round.entries.iter().position(|e| !e.schedulable);
        if r < last {
            // Non-final round: the scan stops at the first NLS miss,
            // which becomes the round's promotion.
            match first_miss {
                Some(i)
                    if i == round.entries.len() - 1
                        && round.entries[i].task == cert.promoted[r]
                        && !marking.contains(&round.entries[i].task) => {}
                _ => {
                    return Err(Rejection::new(
                        "sched.promotion-mismatch",
                        format!(
                            "{ctx}: round {r} must end at exactly one NLS miss of τ{}",
                            cert.promoted[r]
                        ),
                    ))
                }
            }
        } else {
            // Final round: a full scan. Either all tasks pass, or the
            // first miss is an already-LS task (no promotion possible).
            if round.entries.len() != task_set.tasks.len() {
                return Err(Rejection::new(
                    "sched.final-mismatch",
                    format!(
                        "{ctx}: final round covers {} of {} tasks",
                        round.entries.len(),
                        task_set.tasks.len()
                    ),
                ));
            }
            let verdict = match first_miss {
                None => true,
                Some(i) => {
                    if !marking.contains(&round.entries[i].task) {
                        return Err(Rejection::new(
                            "sched.final-mismatch",
                            format!(
                                "{ctx}: final round's first miss τ{} is NLS — a promotion \
                                 was still possible",
                                round.entries[i].task
                            ),
                        ));
                    }
                    false
                }
            };
            if verdict != cert.schedulable {
                return Err(Rejection::new(
                    "sched.verdict-mismatch",
                    format!(
                        "{ctx}: replay derives schedulable={verdict} but the certificate \
                         claims {}",
                        cert.schedulable
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CertChoice;
    use crate::types::{
        CertArrival, CertRound, CertRoundEntry, CertTask, DelayCertificate, DpEntry, UpperProof,
        WcrtCertificate,
    };

    fn one_task_set() -> CertTaskSet {
        CertTaskSet {
            tasks: vec![CertTask {
                id: 0,
                exec: 10,
                copy_in: 3,
                copy_out: 2,
                deadline: 100,
                priority: 0,
                arrival: CertArrival::Sporadic {
                    min_inter_arrival: 100,
                },
            }],
        }
    }

    /// Hand-built, fully valid bundle for the singleton set: one window
    /// (N = 2, optimum 15), one NLS fixed point converging in two steps,
    /// and a one-round set certificate.
    fn singleton_bundle() -> CertificateSet {
        let task_set = one_task_set();
        let window = build_window(&task_set, 0, &[], CertCase::Nls, 3).expect("valid window");
        let hash = window.content_hash();
        let delay_cert = DelayCertificate {
            window: window.clone(),
            window_hash: hash,
            claimed: 15,
            exact: true,
            witness: Some(vec![CertChoice::Idle]),
            upper: UpperProof::DpTable(vec![DpEntry {
                k: 0,
                prev: CertChoice::Idle,
                prev2: CertChoice::Idle,
                budgets: vec![],
                value: 15,
            }]),
        };
        // The window is length-independent here (no competitors), so both
        // fixed-point steps resolve to the same content hash.
        let wcrt = WcrtCertificate {
            task: 0,
            marking: vec![],
            case: CertCase::Nls,
            steps: vec![
                CertWcrtStep {
                    window_len: 3,
                    delay: 15,
                    exact: true,
                    window_hash: hash,
                },
                CertWcrtStep {
                    window_len: 5,
                    delay: 15,
                    exact: true,
                    window_hash: hash,
                },
            ],
            case_b: None,
            wcrt: 17,
            schedulable: true,
        };
        let sched = SchedCertificate {
            rounds: vec![CertRound {
                entries: vec![CertRoundEntry {
                    task: 0,
                    wcrt: 17,
                    schedulable: true,
                    fresh: true,
                }],
            }],
            promoted: vec![],
            schedulable: true,
        };
        let mut bundle = CertificateSet::new(task_set);
        bundle.windows.push(delay_cert);
        bundle.wcrts.push(wcrt);
        bundle.sched = Some(sched);
        bundle
    }

    #[test]
    fn singleton_bundle_checks_clean() {
        let report = check_certificate_set(&singleton_bundle());
        assert!(report.ok(), "rejections: {:?}", report.rejections);
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn window_hash_mismatch_rejected() {
        let mut bundle = singleton_bundle();
        bundle.windows[0].window_hash ^= 1;
        let report = check_certificate_set(&bundle);
        assert!(report
            .rejections
            .iter()
            .any(|r| r.code == "window.hash-mismatch"));
    }

    #[test]
    fn corrupted_witness_rejected() {
        let mut bundle = singleton_bundle();
        // An out-of-range run choice in the witness.
        bundle.windows[0].witness = Some(vec![CertChoice::Run {
            task: 5,
            urgent: false,
        }]);
        let report = check_certificate_set(&bundle);
        assert!(
            report
                .rejections
                .iter()
                .any(|r| r.code.starts_with("witness.")),
            "{:?}",
            report.rejections
        );
    }

    #[test]
    fn wrong_claim_rejected_via_bellman() {
        let mut bundle = singleton_bundle();
        bundle.windows[0].claimed = 16;
        let report = check_certificate_set(&bundle);
        assert!(report
            .rejections
            .iter()
            .any(|r| r.code.starts_with("dp.") || r.code.starts_with("witness.")));
    }

    #[test]
    fn unproven_window_rejected() {
        let mut bundle = singleton_bundle();
        bundle.windows.clear();
        let report = check_certificate_set(&bundle);
        assert!(report
            .rejections
            .iter()
            .any(|r| r.code == "wcrt.unproven-window"));
    }

    #[test]
    fn wcrt_verdict_mismatch_rejected() {
        let mut bundle = singleton_bundle();
        bundle.wcrts[0].wcrt = 16;
        let report = check_certificate_set(&bundle);
        assert!(report
            .rejections
            .iter()
            .any(|r| r.code == "wcrt.verdict-mismatch"));
    }

    #[test]
    fn sched_without_proof_rejected() {
        let mut bundle = singleton_bundle();
        bundle.wcrts.clear();
        let report = check_certificate_set(&bundle);
        assert!(report
            .rejections
            .iter()
            .any(|r| r.code == "sched.unproven-task"));
    }

    #[test]
    fn version_gate() {
        let mut bundle = singleton_bundle();
        bundle.version = 99;
        let report = check_certificate_set(&bundle);
        assert_eq!(report.rejections[0].code, "format.version");
    }
}
