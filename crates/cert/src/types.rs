//! The certificate data model.
//!
//! These types are the *interchange format* between the producing
//! analysis (`pmcs-core`) and the independent checker ([`crate::check`]).
//! They deliberately mirror the paper's concepts — tasks, analysis
//! windows, slot choices — rather than any engine-internal structure, so
//! the checker can re-derive their semantics without touching engine
//! code. All durations are integer ticks (1 µs), all arithmetic on them
//! is `i64`/`i128`.

use crate::hash::Fnv64;
use pmcs_milp::{BbTree, Problem, Rational};

/// Format version of [`CertificateSet`]; bumped on incompatible changes.
pub const CERT_FORMAT_VERSION: u32 = 1;

/// Arrival model of a task, as the checker's independent η re-derivation
/// needs it (mirrors the paper's arrival curves, not any model-crate
/// type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertArrival {
    /// Sporadic with minimum inter-arrival time `T` (ticks).
    Sporadic {
        /// Minimum inter-arrival time in ticks (positive).
        min_inter_arrival: i64,
    },
    /// Periodic with release jitter: `η(δ) = ⌈(δ+J)/T⌉` for `δ > 0`.
    PeriodicJitter {
        /// Period in ticks (positive).
        period: i64,
        /// Release jitter in ticks (non-negative).
        jitter: i64,
    },
    /// Explicit staircase curve with a long-run tail rate.
    Staircase {
        /// Strictly increasing `(window length, cumulative count)` steps.
        steps: Vec<(i64, u64)>,
        /// Tail inter-arrival time in ticks (positive).
        tail_period: i64,
    },
}

/// One task of the analyzed set, carrying everything the checker needs
/// to re-derive analysis windows from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertTask {
    /// Task identifier.
    pub id: u32,
    /// Execution time `C` in ticks.
    pub exec: i64,
    /// Copy-in time `l` in ticks.
    pub copy_in: i64,
    /// Copy-out time `u` in ticks.
    pub copy_out: i64,
    /// Relative deadline in ticks.
    pub deadline: i64,
    /// Priority value (lower value = higher priority).
    pub priority: u32,
    /// Arrival model.
    pub arrival: CertArrival,
}

/// The analyzed task set, in decreasing priority order (ascending
/// priority value), matching the production set's iteration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CertTaskSet {
    /// Tasks in decreasing priority order.
    pub tasks: Vec<CertTask>,
}

impl CertTaskSet {
    /// Index of a task by id.
    pub fn index_of(&self, id: u32) -> Option<usize> {
        self.tasks.iter().position(|t| t.id == id)
    }
}

/// Which analysis case a window encodes (Section V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertCase {
    /// Task under analysis treated as NLS (Theorem 1).
    Nls,
    /// Task under analysis treated as LS, case (a) (Corollary 1).
    LsCaseA,
}

impl CertCase {
    /// Stable wire encoding.
    pub fn code(self) -> u64 {
        match self {
            CertCase::Nls => 0,
            CertCase::LsCaseA => 1,
        }
    }

    /// Inverse of [`CertCase::code`].
    pub fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(CertCase::Nls),
            1 => Some(CertCase::LsCaseA),
            _ => None,
        }
    }
}

/// A competing task as seen inside one analysis window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertWindowTask {
    /// Execution time in ticks.
    pub exec: i64,
    /// Copy-in time in ticks.
    pub copy_in: i64,
    /// Copy-out time in ticks.
    pub copy_out: i64,
    /// Latency-sensitivity marking (as recorded; the checker applies the
    /// inertness canonicalization itself).
    pub ls: bool,
    /// `true` iff higher priority than the task under analysis.
    pub hp: bool,
    /// Priority value (lower = higher priority).
    pub priority: u32,
    /// Job budget inside the window.
    pub budget: u64,
}

/// A self-contained analysis window: the object a window-level
/// certificate makes a claim about.
///
/// Task identifiers are deliberately absent — the window's meaning is
/// fully determined by phase durations, markings, priorities, and
/// budgets, matching the content addressing of the production
/// `DelayCache`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertWindow {
    /// Analysis case.
    pub case: CertCase,
    /// Number of scheduling intervals `N`.
    pub n_intervals: u64,
    /// Competing tasks.
    pub tasks: Vec<CertWindowTask>,
    /// `τ_i`'s execution time in ticks.
    pub exec_i: i64,
    /// `τ_i`'s copy-in time in ticks.
    pub copy_in_i: i64,
    /// `τ_i`'s copy-out time in ticks.
    pub copy_out_i: i64,
    /// `τ_i`'s priority value.
    pub priority_i: u32,
    /// `max_j l_j` over the whole set (boundary constraints 12/15).
    pub max_l: i64,
    /// `max_j u_j` over the whole set (boundary constraints 12/15).
    pub max_u: i64,
}

impl CertWindow {
    /// FNV-1a content hash over the canonical field encoding.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.case.code());
        h.write_u64(self.n_intervals);
        h.write_u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.write_i64(t.exec);
            h.write_i64(t.copy_in);
            h.write_i64(t.copy_out);
            h.write_bool(t.ls);
            h.write_bool(t.hp);
            h.write_u32(t.priority);
            h.write_u64(t.budget);
        }
        h.write_i64(self.exec_i);
        h.write_i64(self.copy_in_i);
        h.write_i64(self.copy_out_i);
        h.write_u32(self.priority_i);
        h.write_i64(self.max_l);
        h.write_i64(self.max_u);
        h.finish()
    }
}

/// One slot decision in a placement witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertChoice {
    /// The CPU idles in the interval (rule R5).
    Idle,
    /// Task index `task` executes, plain or urgent.
    Run {
        /// Index into [`CertWindow::tasks`].
        task: usize,
        /// `true` for an urgent (CPU-copy-in) execution.
        urgent: bool,
    },
}

impl CertChoice {
    /// Stable wire encoding: 0 = idle, else `1 + 2·task + urgent`.
    pub fn code(self) -> u64 {
        match self {
            CertChoice::Idle => 0,
            CertChoice::Run { task, urgent } => 1 + 2 * task as u64 + u64::from(urgent),
        }
    }

    /// Inverse of [`CertChoice::code`].
    pub fn from_code(c: u64) -> Self {
        if c == 0 {
            CertChoice::Idle
        } else {
            CertChoice::Run {
                task: ((c - 1) / 2) as usize,
                urgent: (c - 1) % 2 == 1,
            }
        }
    }
}

/// One memoized state of the producing DP, with its claimed suffix value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpEntry {
    /// Slot index.
    pub k: u64,
    /// Choice taken in slot `k−1` (idle at the window start).
    pub prev: CertChoice,
    /// Choice taken in slot `k−2` (idle at the window start).
    pub prev2: CertChoice,
    /// Remaining job budgets per window task.
    pub budgets: Vec<u64>,
    /// Claimed exact maximum of `Δ_{k−1} + … + Δ_{N−1}` from this state.
    pub value: i64,
}

/// The upper-bound proof of a [`DelayCertificate`].
#[derive(Debug, Clone)]
pub enum UpperProof {
    /// The producing DP's full memo table; the checker re-derives every
    /// Bellman equation over the dominance-pruned choice sets.
    DpTable(
        /// All memoized states reachable from the root.
        Vec<DpEntry>,
    ),
    /// The claim equals (or exceeds) the closed-form safe cap the engine
    /// falls back to on search-budget exhaustion; the checker recomputes
    /// the formula from the window.
    SafeCap,
    /// The claim equals the MILP formulation's deterministic `N·M` cap
    /// (big-M fallback); the checker recomputes `M` from the window.
    MilpCap,
    /// VIPR-style branch-and-bound proof for the MILP path: the claim
    /// upper-bounds the optimum of the embedded problem, every leaf
    /// carrying an LP-dual bound or a Farkas infeasibility certificate.
    /// The encoding of the window as the embedded problem is the trusted
    /// boundary (like the MPS file in VIPR).
    BbTree {
        /// The MILP problem the tree argues about.
        problem: Problem,
        /// The branch-and-bound proof tree.
        tree: BbTree,
    },
}

/// Window-level certificate: a lower-bound *witness* whose interference
/// sum attains the claim, plus an upper-bound *proof* that no legal
/// schedule exceeds it.
#[derive(Debug, Clone)]
pub struct DelayCertificate {
    /// The window the claim is about.
    pub window: CertWindow,
    /// Content hash of `window` (bound at emission; re-derived and
    /// compared by the checker).
    pub window_hash: u64,
    /// Claimed bound on `Σ_k Δ_k` in ticks.
    pub claimed: i64,
    /// `true` iff the claim is asserted to be the exact optimum (then a
    /// witness attaining it must be present).
    pub exact: bool,
    /// Placement witness: choices for slots `0 … N−2`.
    pub witness: Option<Vec<CertChoice>>,
    /// Upper-bound proof.
    pub upper: UpperProof,
}

/// One fixed-point step of a [`WcrtCertificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertWcrtStep {
    /// Window length `t = R̄ − C − u` fed to the engine, in ticks.
    pub window_len: i64,
    /// Engine delay bound `Σ_k Δ_k` for that window, in ticks.
    pub delay: i64,
    /// Whether the bound was exact.
    pub exact: bool,
    /// Content hash of the window solved in this step; must match a
    /// [`DelayCertificate`] in the same [`CertificateSet`].
    pub window_hash: u64,
}

/// Task-level certificate: the monotone fixed-point iteration behind one
/// WCRT verdict, each step's window bound referenced by content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcrtCertificate {
    /// The analyzed task.
    pub task: u32,
    /// LS task ids (sorted) at analysis time; windows are re-derived
    /// under this marking.
    pub marking: Vec<u32>,
    /// Analysis case of the fixed point.
    pub case: CertCase,
    /// Fixed-point steps in order.
    pub steps: Vec<CertWcrtStep>,
    /// LS case (b) closed-form response in ticks (`None` for NLS).
    pub case_b: Option<i64>,
    /// Claimed WCRT bound in ticks.
    pub wcrt: i64,
    /// Claimed verdict (`wcrt ≤ deadline`).
    pub schedulable: bool,
}

/// One task verdict inside a greedy round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRoundEntry {
    /// The task.
    pub task: u32,
    /// WCRT bound used for the verdict, in ticks.
    pub wcrt: i64,
    /// The verdict.
    pub schedulable: bool,
    /// `true` iff the analysis was computed fresh this round (then a
    /// [`WcrtCertificate`] under this round's marking must exist);
    /// `false` iff it was carried over an inert promotion.
    pub fresh: bool,
}

/// One greedy LS-marking round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRound {
    /// Verdicts in decreasing priority order; may be a strict prefix of
    /// the task set when an NLS miss aborts the scan.
    pub entries: Vec<CertRoundEntry>,
}

/// Set-level certificate: the greedy LS-marking run justifying the final
/// schedulability verdict, with per-round verdicts and the promotion
/// sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedCertificate {
    /// Rounds in order; round `r` runs under the marking
    /// `promoted[0 .. r−1]`.
    pub rounds: Vec<CertRound>,
    /// Promoted task ids in promotion order.
    pub promoted: Vec<u32>,
    /// Claimed final verdict.
    pub schedulable: bool,
}

/// A complete, self-contained certificate bundle for one task-set
/// analysis.
#[derive(Debug, Clone)]
pub struct CertificateSet {
    /// Format version ([`CERT_FORMAT_VERSION`]).
    pub version: u32,
    /// The analyzed task set.
    pub task_set: CertTaskSet,
    /// Window-level certificates, deduplicated by content hash.
    pub windows: Vec<DelayCertificate>,
    /// Task-level certificates.
    pub wcrts: Vec<WcrtCertificate>,
    /// The set-level certificate.
    pub sched: Option<SchedCertificate>,
}

impl CertificateSet {
    /// An empty bundle for the given task set.
    pub fn new(task_set: CertTaskSet) -> Self {
        CertificateSet {
            version: CERT_FORMAT_VERSION,
            task_set,
            windows: Vec::new(),
            wcrts: Vec::new(),
            sched: None,
        }
    }
}

/// Helper: renders a [`Rational`] in the `"num/den"` wire form.
pub(crate) fn rational_to_wire(r: Rational) -> String {
    format!("{}/{}", r.numer(), r.denom())
}

/// Helper: parses the `"num/den"` wire form.
pub(crate) fn rational_from_wire(s: &str) -> Option<Rational> {
    let (n, d) = s.split_once('/')?;
    Rational::new(n.parse().ok()?, d.parse().ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_window() -> CertWindow {
        CertWindow {
            case: CertCase::Nls,
            n_intervals: 3,
            tasks: vec![CertWindowTask {
                exec: 10,
                copy_in: 2,
                copy_out: 2,
                ls: false,
                hp: true,
                priority: 0,
                budget: 2,
            }],
            exec_i: 20,
            copy_in_i: 5,
            copy_out_i: 5,
            priority_i: 1,
            max_l: 5,
            max_u: 5,
        }
    }

    #[test]
    fn hash_is_content_sensitive() {
        let w = tiny_window();
        let mut w2 = w.clone();
        w2.tasks[0].budget = 3;
        assert_ne!(w.content_hash(), w2.content_hash());
        let mut w3 = w.clone();
        w3.case = CertCase::LsCaseA;
        assert_ne!(w.content_hash(), w3.content_hash());
        assert_eq!(w.content_hash(), tiny_window().content_hash());
    }

    #[test]
    fn choice_codes_round_trip() {
        for c in [
            CertChoice::Idle,
            CertChoice::Run {
                task: 0,
                urgent: false,
            },
            CertChoice::Run {
                task: 3,
                urgent: true,
            },
        ] {
            assert_eq!(CertChoice::from_code(c.code()), c);
        }
    }

    #[test]
    fn rational_wire_round_trips() {
        let r = Rational::new(-7, 3).expect("valid rational");
        assert_eq!(rational_from_wire(&rational_to_wire(r)), Some(r));
        assert_eq!(rational_from_wire("1/0"), None);
        assert_eq!(rational_from_wire("nonsense"), None);
    }
}
