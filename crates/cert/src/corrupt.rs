//! Deterministic certificate tampering, for negative testing.
//!
//! Each helper applies one targeted corruption to a bundle and documents
//! the stable rejection code the checker must answer with. They exist so
//! CI can prove the checker actually *rejects* — a checker that accepts
//! everything passes every positive test.

use crate::types::{CertificateSet, DpEntry, UpperProof};

/// Drops the final choice from the first placement witness in the
/// bundle, leaving a witness of the wrong length.
///
/// The checker rejects the result with `witness.length`.
///
/// # Errors
///
/// Fails if no window certificate carries a witness.
pub fn corrupt_witness(bundle: &mut CertificateSet) -> Result<(), String> {
    for cert in &mut bundle.windows {
        if let Some(witness) = &mut cert.witness {
            if witness.pop().is_some() {
                return Ok(());
            }
        }
    }
    Err("corrupt: no window certificate carries a non-empty witness".to_string())
}

/// Removes the last node of the first branch-and-bound proof tree in
/// the bundle, leaving a dangling child reference.
///
/// The checker rejects the result with a `bbtree.*` code.
///
/// # Errors
///
/// Fails if no window certificate carries a B&B tree with more than one
/// node.
pub fn corrupt_truncate_tree(bundle: &mut CertificateSet) -> Result<(), String> {
    for cert in &mut bundle.windows {
        if let UpperProof::BbTree { tree, .. } = &mut cert.upper {
            if tree.nodes.len() > 1 {
                tree.nodes.pop();
                return Ok(());
            }
        }
    }
    Err("corrupt: no window certificate carries a multi-node proof tree".to_string())
}

/// Decrements one recorded optimum in the first DP-table proof —
/// modelling an unsound dominance rule that pruned the true optimum and
/// recorded a smaller "best" for the state.
///
/// The checker rejects the result with `dp.bellman-mismatch`: the
/// tampered state's stored value no longer matches the one-step Bellman
/// re-derivation over its children.
///
/// # Errors
///
/// Fails if no window certificate carries a DP-table proof.
pub fn corrupt_dominance(bundle: &mut CertificateSet) -> Result<(), String> {
    for cert in &mut bundle.windows {
        if let UpperProof::DpTable(entries) = &mut cert.upper {
            if let Some(entry) = entries.last_mut() {
                let DpEntry { value, .. } = entry;
                *value -= 1;
                return Ok(());
            }
        }
    }
    Err("corrupt: no window certificate carries a DP-table proof".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CertCase, CertChoice, CertTaskSet, DelayCertificate};
    use crate::window::build_window;

    fn dp_bundle() -> CertificateSet {
        let task_set = CertTaskSet {
            tasks: vec![crate::types::CertTask {
                id: 0,
                exec: 10,
                copy_in: 3,
                copy_out: 2,
                deadline: 100,
                priority: 0,
                arrival: crate::types::CertArrival::Sporadic {
                    min_inter_arrival: 100,
                },
            }],
        };
        let window = build_window(&task_set, 0, &[], CertCase::Nls, 3).expect("window");
        let hash = window.content_hash();
        let mut bundle = CertificateSet::new(task_set);
        bundle.windows.push(DelayCertificate {
            window,
            window_hash: hash,
            claimed: 15,
            exact: true,
            witness: Some(vec![CertChoice::Idle]),
            upper: UpperProof::DpTable(vec![DpEntry {
                k: 0,
                prev: CertChoice::Idle,
                prev2: CertChoice::Idle,
                budgets: vec![],
                value: 15,
            }]),
        });
        bundle
    }

    #[test]
    fn witness_corruption_triggers_length_rejection() {
        let mut bundle = dp_bundle();
        corrupt_witness(&mut bundle).expect("corruptible");
        let report = crate::check::check_certificate_set(&bundle);
        assert!(
            report.rejections.iter().any(|r| r.code == "witness.length"),
            "{:?}",
            report.rejections
        );
    }

    #[test]
    fn dominance_corruption_triggers_bellman_rejection() {
        let mut bundle = dp_bundle();
        corrupt_dominance(&mut bundle).expect("corruptible");
        let report = crate::check::check_certificate_set(&bundle);
        assert!(
            report
                .rejections
                .iter()
                .any(|r| r.code == "dp.bellman-mismatch"),
            "{:?}",
            report.rejections
        );
    }

    #[test]
    fn tree_corruption_requires_a_tree() {
        let mut bundle = dp_bundle();
        assert!(corrupt_truncate_tree(&mut bundle).is_err());
    }
}
