//! End-to-end protocol tests over real loopback sockets: every stable
//! error code is reachable, protocol errors never drop the connection,
//! batching is entry-wise, sessions are connection-private, and server
//! responses are byte-identical to the from-scratch batch analyzer.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use pmcs_cert::json::{parse_value, write_value, Value};
use pmcs_core::{analyze_task_set, ExactEngine};
use pmcs_model::{Priority, Task, TaskId, TaskSet, Time};
use pmcs_serve::proto::{
    encode_report, obj_get, E_BAD_FIELD, E_DUPLICATE_TASK, E_MALFORMED, E_MISSING_FIELD,
    E_OVER_CAPACITY, E_UNKNOWN_OP, E_UNKNOWN_TASK,
};
use pmcs_serve::{spawn, Server, ServerConfig};

fn start(capacity: Option<usize>) -> Server {
    spawn(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        session_capacity: capacity,
    })
    .expect("bind loopback")
}

/// One client connection speaking NDJSON.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one line, returns the parsed response line.
    fn send(&mut self, line: &str) -> Value {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("write request");
        let mut resp = String::new();
        assert_ne!(
            self.reader.read_line(&mut resp).expect("read response"),
            0,
            "server closed the connection after {line:?}"
        );
        parse_value(resp.trim_end()).expect("response is valid JSON")
    }
}

fn error_code(resp: &Value) -> &str {
    match obj_get(resp, "error").and_then(|e| obj_get(e, "code")) {
        Some(Value::Str(s)) => s,
        other => panic!("expected an error response, got {other:?} in {resp:?}"),
    }
}

fn task_json(id: u32, exec: i64, prio: u32) -> String {
    format!(
        "{{\"id\":{id},\"exec\":{exec},\"copy_in\":2,\"copy_out\":2,\"deadline\":100,\
         \"priority\":{prio},\"arrival\":{{\"kind\":\"sporadic\",\"t\":100}}}}"
    )
}

fn admit_line(session: u64, id: u32, exec: i64, prio: u32) -> String {
    format!(
        "{{\"op\":\"admit\",\"session\":{session},\"task\":{}}}",
        task_json(id, exec, prio)
    )
}

fn demo_task(id: u32, exec: i64, prio: u32) -> Task {
    Task::builder(TaskId(id))
        .exec(Time::from_ticks(exec))
        .copy_in(Time::from_ticks(2))
        .copy_out(Time::from_ticks(2))
        .sporadic(Time::from_ticks(100))
        .deadline(Time::from_ticks(100))
        .priority(Priority(prio))
        .build()
        .expect("valid task")
}

#[test]
fn protocol_errors_have_stable_codes_and_keep_the_connection() {
    let server = start(None);
    let mut client = Client::connect(server.addr());

    let resp = client.send("this is not json");
    assert_eq!(error_code(&resp), E_MALFORMED);

    let resp = client.send("{\"op\":\"evict\"}");
    assert_eq!(error_code(&resp), E_UNKNOWN_OP);

    let resp = client.send("{\"op\":\"remove\"}");
    assert_eq!(error_code(&resp), E_MISSING_FIELD);

    let resp = client.send(
        "{\"op\":\"admit\",\"task\":{\"id\":0,\"exec\":1,\"copy_in\":1,\"copy_out\":1,\
         \"deadline\":50,\"priority\":0,\"arrival\":{\"kind\":\"bursty\",\"t\":9}}}",
    );
    assert_eq!(error_code(&resp), E_BAD_FIELD);

    // The connection survived four protocol errors in a row: a normal
    // request still succeeds.
    let resp = client.send(&admit_line(0, 0, 10, 0));
    assert!(obj_get(&resp, "ok").is_some(), "got {resp:?}");

    server.shutdown();
    server.join();
}

#[test]
fn session_errors_have_stable_codes() {
    let server = start(None);
    let mut client = Client::connect(server.addr());

    let resp = client.send("{\"op\":\"remove\",\"id\":7}");
    assert_eq!(error_code(&resp), E_UNKNOWN_TASK);

    let resp = client.send(&admit_line(0, 1, 10, 1));
    assert!(obj_get(&resp, "ok").is_some());
    let resp = client.send(&admit_line(0, 1, 10, 1));
    assert_eq!(error_code(&resp), E_DUPLICATE_TASK);

    server.shutdown();
    server.join();
}

#[test]
fn capacity_limit_rejects_with_over_capacity() {
    let server = start(Some(1));
    let mut client = Client::connect(server.addr());

    let resp = client.send(&admit_line(0, 0, 10, 0));
    assert!(obj_get(&resp, "ok").is_some());
    let resp = client.send(&admit_line(0, 1, 10, 1));
    assert_eq!(error_code(&resp), E_OVER_CAPACITY);

    server.shutdown();
    server.join();
}

#[test]
fn batch_requests_answer_entry_wise() {
    let server = start(None);
    let mut client = Client::connect(server.addr());

    let line = format!(
        "[{},{},{{\"op\":\"evict\"}},{{\"op\":\"query\"}}]",
        admit_line(0, 0, 10, 0),
        admit_line(0, 1, 20, 1),
    );
    let resp = client.send(&line);
    let Value::Arr(entries) = &resp else {
        panic!("batch must get an array response, got {resp:?}");
    };
    assert_eq!(entries.len(), 4);
    assert!(obj_get(&entries[0], "ok").is_some());
    assert!(obj_get(&entries[1], "ok").is_some());
    assert_eq!(error_code(&entries[2]), E_UNKNOWN_OP);
    // The final query sees both admits from earlier in the same batch.
    let verdicts = obj_get(&entries[3], "ok")
        .and_then(|r| obj_get(r, "verdicts"))
        .expect("query returns a report");
    let Value::Arr(verdicts) = verdicts else {
        panic!("verdicts must be an array");
    };
    assert_eq!(verdicts.len(), 2);

    server.shutdown();
    server.join();
}

#[test]
fn server_report_is_byte_identical_to_the_batch_analyzer() {
    let server = start(None);
    let mut client = Client::connect(server.addr());

    for (id, exec, prio) in [(0, 10, 0), (1, 20, 1), (2, 15, 2)] {
        let resp = client.send(&admit_line(0, id, exec, prio));
        assert!(obj_get(&resp, "ok").is_some(), "admit failed: {resp:?}");
    }
    let served = client.send("{\"op\":\"query\"}");
    let served = obj_get(&served, "ok").expect("query succeeds");

    let set = TaskSet::new(vec![
        demo_task(0, 10, 0),
        demo_task(1, 20, 1),
        demo_task(2, 15, 2),
    ])
    .expect("valid set");
    let report = analyze_task_set(&set, &ExactEngine::default()).expect("analyzes");
    assert_eq!(write_value(served), write_value(&encode_report(&report)));

    server.shutdown();
    server.join();
}

#[test]
fn sessions_are_isolated_within_and_across_connections() {
    let server = start(None);
    let mut a = Client::connect(server.addr());
    let mut b = Client::connect(server.addr());

    // Two sessions on one connection hold different task sets.
    assert!(obj_get(&a.send(&admit_line(0, 0, 10, 0)), "ok").is_some());
    assert!(obj_get(&a.send(&admit_line(1, 1, 20, 1)), "ok").is_some());
    let count = |resp: &Value| -> usize {
        match obj_get(resp, "ok").and_then(|r| obj_get(r, "verdicts")) {
            Some(Value::Arr(v)) => v.len(),
            other => panic!("expected a report, got {other:?}"),
        }
    };
    assert_eq!(count(&a.send("{\"op\":\"query\",\"session\":0}")), 1);
    assert_eq!(count(&a.send("{\"op\":\"query\",\"session\":1}")), 1);

    // Session 0 of another connection is empty: same id, different state.
    assert_eq!(count(&b.send("{\"op\":\"query\",\"session\":0}")), 0);
    // And b may admit the same task id without a duplicate error.
    assert!(obj_get(&b.send(&admit_line(0, 0, 10, 0)), "ok").is_some());

    server.shutdown();
    server.join();
}

#[test]
fn update_and_remove_round_trip_through_the_session() {
    let server = start(None);
    let mut client = Client::connect(server.addr());

    assert!(obj_get(&client.send(&admit_line(0, 0, 10, 0)), "ok").is_some());
    assert!(obj_get(&client.send(&admit_line(0, 1, 20, 1)), "ok").is_some());

    let update = format!(
        "{{\"op\":\"update\",\"id\":1,\"task\":{}}}",
        task_json(1, 30, 1)
    );
    let resp = client.send(&update);
    assert!(obj_get(&resp, "ok").is_some(), "update failed: {resp:?}");

    let resp = client.send("{\"op\":\"remove\",\"id\":0}");
    assert!(obj_get(&resp, "ok").is_some(), "remove failed: {resp:?}");

    // What remains is exactly the updated task 1.
    let served = client.send("{\"op\":\"query\"}");
    let served = obj_get(&served, "ok").expect("query succeeds");
    let set = TaskSet::new(vec![demo_task(1, 30, 1)]).expect("valid set");
    let report = analyze_task_set(&set, &ExactEngine::default()).expect("analyzes");
    assert_eq!(write_value(served), write_value(&encode_report(&report)));

    server.shutdown();
    server.join();
}

#[test]
fn stats_reports_shared_cache_hits_across_connections() {
    let server = start(None);
    // Two connections admit the same tasks: the second connection's
    // windows are already in the process-wide shared delay cache.
    for _ in 0..2 {
        let mut client = Client::connect(server.addr());
        for (id, exec, prio) in [(0, 10, 0), (1, 20, 1)] {
            let resp = client.send(&admit_line(0, id, exec, prio));
            assert!(obj_get(&resp, "ok").is_some());
        }
    }
    let mut control = Client::connect(server.addr());
    let stats = control.send("{\"op\":\"stats\"}");
    let stats = obj_get(&stats, "ok").expect("stats succeeds");
    let int = |key: &str| -> i128 {
        match obj_get(stats, key) {
            Some(Value::Int(i)) => *i,
            other => panic!("stats.{key} must be an integer, got {other:?}"),
        }
    };
    assert!(int("ops") >= 4, "stats: {stats:?}");
    assert!(int("cache_hits") > 0, "stats: {stats:?}");
    assert!(int("cache_misses") > 0, "stats: {stats:?}");

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_op_acknowledges_and_stops_the_server() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    let resp = client.send("{\"op\":\"shutdown\"}");
    let ack = obj_get(&resp, "ok").expect("shutdown acknowledged");
    assert!(matches!(obj_get(ack, "shutdown"), Some(Value::Bool(true))));
    // join() returning proves the listener and every worker exited.
    server.join();
}

#[test]
fn partition_places_tasks_and_reports_per_core() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    let line = format!(
        "{{\"op\":\"partition\",\"cores\":2,\"tasks\":[{},{},{}]}}",
        task_json(0, 40, 0),
        task_json(1, 40, 1),
        task_json(2, 10, 2),
    );
    let resp = client.send(&line);
    let ok = obj_get(&resp, "ok").expect("partition succeeds");
    assert!(matches!(
        obj_get(ok, "schedulable"),
        Some(Value::Bool(true))
    ));
    let bus = obj_get(ok, "bus").expect("bus present");
    assert!(matches!(
        obj_get(bus, "kind"),
        Some(Value::Str(s)) if s == "crossbar"
    ));
    let cores = match obj_get(ok, "cores") {
        Some(Value::Arr(a)) => a,
        other => panic!("cores must be an array, got {other:?}"),
    };
    let placed: usize = cores
        .iter()
        .map(|c| match obj_get(c, "tasks") {
            Some(Value::Arr(t)) => t.len(),
            other => panic!("tasks must be an array, got {other:?}"),
        })
        .sum();
    assert_eq!(placed, 3, "every task is placed exactly once");
    for core in cores {
        let report = obj_get(core, "report").expect("per-core report");
        assert!(obj_get(report, "verdicts").is_some());
    }
    server.shutdown();
    server.join();
}

#[test]
fn partition_on_a_regulated_bus_reports_the_bus_and_admits_contention_aware() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    let line = format!(
        "{{\"op\":\"partition\",\"cores\":2,\"period\":20,\"budget\":10,\
         \"heuristic\":\"worst-fit\",\"tasks\":[{},{}]}}",
        task_json(0, 20, 0),
        task_json(1, 20, 1),
    );
    let resp = client.send(&line);
    let ok = obj_get(&resp, "ok").expect("partition succeeds");
    assert!(
        matches!(obj_get(ok, "schedulable"), Some(Value::Bool(true))),
        "worst-fit spreads the two tasks, one per core: {ok:?}"
    );
    let bus = obj_get(ok, "bus").expect("bus present");
    assert!(matches!(
        obj_get(bus, "kind"),
        Some(Value::Str(s)) if s == "regulated"
    ));
    assert!(matches!(obj_get(bus, "period"), Some(Value::Int(20))));
    server.shutdown();
    server.join();
}

#[test]
fn partition_budget_search_returns_the_attempts_ledger() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    let line = format!(
        "{{\"op\":\"partition\",\"cores\":2,\"period\":20,\"tasks\":[{},{}]}}",
        task_json(0, 40, 0),
        task_json(1, 40, 1),
    );
    let resp = client.send(&line);
    let ok = obj_get(&resp, "ok").expect("search completes");
    let attempts = match obj_get(ok, "attempts") {
        Some(Value::Arr(a)) => a,
        other => panic!("attempts must be an array, got {other:?}"),
    };
    assert!(!attempts.is_empty());
    for a in attempts {
        assert!(matches!(obj_get(a, "budget"), Some(Value::Int(q)) if *q > 0));
        assert!(obj_get(a, "schedulable").is_some());
    }
    server.shutdown();
    server.join();
}

#[test]
fn partition_rejects_inconsistent_bus_parameters() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    // A budget without a period is meaningless.
    let no_period = format!(
        "{{\"op\":\"partition\",\"cores\":2,\"budget\":5,\"tasks\":[{}]}}",
        task_json(0, 10, 0),
    );
    assert_eq!(error_code(&client.send(&no_period)), E_BAD_FIELD);
    // Budgets exceeding the period violate ΣQ ≤ P.
    let oversubscribed = format!(
        "{{\"op\":\"partition\",\"cores\":4,\"period\":20,\"budget\":10,\"tasks\":[{}]}}",
        task_json(0, 10, 0),
    );
    assert_eq!(error_code(&client.send(&oversubscribed)), E_BAD_FIELD);
    // Unknown heuristics are named.
    let bad_heuristic = format!(
        "{{\"op\":\"partition\",\"cores\":2,\"heuristic\":\"next-fit\",\"tasks\":[{}]}}",
        task_json(0, 10, 0),
    );
    assert_eq!(error_code(&client.send(&bad_heuristic)), E_BAD_FIELD);
    server.shutdown();
    server.join();
}

#[test]
fn partition_packing_failure_is_a_successful_unschedulable_response() {
    let server = start(None);
    let mut client = Client::connect(server.addr());
    // One core, two tasks that each saturate it: the second cannot fit.
    let line = format!(
        "{{\"op\":\"partition\",\"cores\":1,\"tasks\":[{},{}]}}",
        task_json(0, 90, 0),
        task_json(1, 90, 1),
    );
    let resp = client.send(&line);
    let ok = obj_get(&resp, "ok").expect("packing failure is not a wire error");
    assert!(matches!(
        obj_get(ok, "schedulable"),
        Some(Value::Bool(false))
    ));
    assert!(matches!(obj_get(ok, "unplaced"), Some(Value::Int(_))));
    server.shutdown();
    server.join();
}
