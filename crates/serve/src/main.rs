//! The `pmcs-serve` command-line driver.
//!
//! Two subcommands:
//!
//! * `listen` — bind the NDJSON-over-TCP admission-control daemon and
//!   serve until a client sends `{"op":"shutdown"}`;
//! * `bench` — spawn a private server on an ephemeral port, replay a
//!   seeded workload from concurrent clients, verify every response
//!   against the from-scratch batch analyzer, and write
//!   `BENCH_serve.json` (qps, p50/p99 latency, shared-cache hit rate,
//!   verdict reuse rate). Any response mismatch exits nonzero.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pmcs_serve::bench::BenchConfig;
use pmcs_serve::server::ServerConfig;

const USAGE: &str = "\
pmcs-serve — schedulability-as-a-service over NDJSON/TCP

USAGE:
    pmcs-serve <COMMAND> [OPTIONS]

COMMANDS:
    listen   serve until a client sends {\"op\":\"shutdown\"}
    bench    replay a seeded workload against a private server,
             verify every response, write BENCH_serve.json

OPTIONS (listen):
    --addr <A>       bind address                  [default: 127.0.0.1:0]
    --workers <N>    worker threads (0 = one per core)     [default: 0]
    --capacity <N>   per-session task capacity      [default: unbounded]

OPTIONS (bench):
    --clients <N>    concurrent client connections         [default: 4]
    --ops <N>        operations per client after the
                     initial batch admit                   [default: 250]
    --seed <N>       workload seed                         [default: 42]
    --tasks <N>      tasks in the generated base set       [default: 5]
    --log <FILE>     record client 0's request/response pairs
                     (NDJSON, replayable via pmcs-audit serve-replay)
    --no-perf        skip writing BENCH_serve.json
    -h, --help       print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut server = ServerConfig::default();
    let mut bench = BenchConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--no-perf" => bench.perf = false,
            "--addr" | "--workers" | "--capacity" | "--clients" | "--ops" | "--seed"
            | "--tasks" | "--log" => {
                let Some(value) = it.next() else {
                    eprintln!("error: {arg} requires a value");
                    return ExitCode::FAILURE;
                };
                let ok = match arg.as_str() {
                    "--addr" => {
                        server.addr = value.clone();
                        true
                    }
                    "--workers" => value.parse().map(|v| server.workers = v).is_ok(),
                    "--capacity" => value
                        .parse()
                        .map(|v| server.session_capacity = Some(v))
                        .is_ok(),
                    "--clients" => value.parse().map(|v| bench.clients = v).is_ok(),
                    "--ops" => value.parse().map(|v| bench.ops = v).is_ok(),
                    "--seed" => value.parse().map(|v| bench.seed = v).is_ok(),
                    "--tasks" => value.parse().map(|v| bench.tasks = v).is_ok(),
                    _ => {
                        bench.log = Some(PathBuf::from(value));
                        true
                    }
                };
                if !ok {
                    eprintln!("error: invalid value {value:?} for {arg}");
                    return ExitCode::FAILURE;
                }
            }
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other => {
                eprintln!("error: unexpected argument {other:?}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    match command.as_deref() {
        Some("listen") => cmd_listen(&server),
        Some("bench") => cmd_bench(&bench),
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_listen(cfg: &ServerConfig) -> ExitCode {
    let server = match pmcs_serve::spawn(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.join();
    println!("shut down");
    ExitCode::SUCCESS
}

fn cmd_bench(cfg: &BenchConfig) -> ExitCode {
    if cfg.tasks == 0 {
        eprintln!("error: --tasks must be at least 1");
        return ExitCode::FAILURE;
    }
    let outcome = match pmcs_serve::run_bench(cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} ops over {} clients in {:.3}s — {:.0} qps, p50 {:.0}us, p99 {:.0}us",
        outcome.ops,
        cfg.clients.max(1),
        outcome.wall_secs,
        outcome.qps,
        outcome.p50_us,
        outcome.p99_us,
    );
    println!(
        "shared cache: {} hits, {} misses, {} evictions (hit rate {:.2})",
        outcome.cache.hits,
        outcome.cache.misses,
        outcome.cache.evictions,
        outcome.cache.hit_rate(),
    );
    println!(
        "verdicts: {} reused, {} fresh (reuse rate {:.2})",
        outcome.verdicts_reused,
        outcome.verdicts_fresh,
        outcome.verdict_reuse_rate(),
    );
    if let Some(path) = &cfg.log {
        println!("replay log: {}", path.display());
    }
    if outcome.mismatches == 0 {
        println!("verification: every response matched the batch analyzer");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "verification: {} MISMATCH(ES); first: {}",
            outcome.mismatches,
            outcome.first_mismatch.as_deref().unwrap_or("<unrecorded>"),
        );
        ExitCode::FAILURE
    }
}
