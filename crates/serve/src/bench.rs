//! The self-hosting load generator (`pmcs-serve bench`).
//!
//! Spawns a server on an ephemeral loopback port, replays a seeded
//! admission-control workload from several concurrent clients, verifies
//! **every** response against the from-scratch batch analyzer, and writes
//! `BENCH_serve.json` (qps, p50/p99 latency, shared-cache hit rate,
//! incremental verdict-reuse rate).
//!
//! Every client replays the *same* deterministic script (derived from the
//! base seed via [`derive_seed`], never from client identity), for two
//! reasons: responses are load-independent so any client's log replays
//! offline, and the shared delay cache demonstrably pays off — whichever
//! client reaches a window first warms it for the others, so with `C`
//! clients the steady-state shared-cache hit rate is at least
//! `(C-1)/C`. Update operations cycle each task's execution time through
//! a small set of values, so configurations recur and the session-level
//! verdict cache gets hits too.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

use pmcs_bench::{parallel_map, PerfPoint, PerfRecord};
use pmcs_cert::json::{parse_value, write_value, Value};
use pmcs_core::CacheStats;
use pmcs_model::{Task, Time};
use pmcs_workload::{derive_seed, TaskSetConfig, TaskSetGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{encode_request, obj_get, Request};
use crate::replay::expected_response;
use crate::server::{spawn, ServerConfig};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client connections (each gets its own worker).
    pub clients: usize,
    /// Single-request operations per client after the initial batch admit.
    pub ops: usize,
    /// Base seed of the workload script.
    pub seed: u64,
    /// Tasks in the generated base set.
    pub tasks: usize,
    /// Record client 0's request/response pairs here (NDJSON) for
    /// offline replay via `pmcs-audit serve-replay`.
    pub log: Option<PathBuf>,
    /// Write `BENCH_serve.json` at the repository root.
    pub perf: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 4,
            ops: 250,
            seed: 42,
            // n = 5 keeps every window comfortably on the exact DP's
            // fast path; n >= 6 can cross the combinatorial wall on
            // unlucky update sequences and stall the load generator.
            tasks: 5,
            log: None,
            perf: true,
        }
    }
}

/// Aggregated measurement of one bench run.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Total requests answered (all clients, batch entries included).
    pub ops: u64,
    /// Responses that differed from the batch-analyzer re-derivation.
    pub mismatches: u64,
    /// First mismatch, for diagnostics.
    pub first_mismatch: Option<String>,
    /// End-to-end wall-clock seconds of the client phase.
    pub wall_secs: f64,
    /// Requests per second across all clients.
    pub qps: f64,
    /// Median single-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile single-request latency, microseconds.
    pub p99_us: f64,
    /// Server-side shared-delay-cache counters (shard-authoritative).
    pub cache: CacheStats,
    /// Per-task verdicts served from session verdict caches.
    pub verdicts_reused: u64,
    /// Per-task verdicts computed fresh.
    pub verdicts_fresh: u64,
}

impl BenchOutcome {
    /// `verdicts_reused / (reused + fresh)` — the incremental-vs-scratch
    /// reuse rate across every session the run created.
    pub fn verdict_reuse_rate(&self) -> f64 {
        let total = self.verdicts_reused + self.verdicts_fresh;
        if total == 0 {
            0.0
        } else {
            self.verdicts_reused as f64 / total as f64
        }
    }
}

/// The deterministic workload script: the initial batch admit plus `ops`
/// follow-up operations. Identical for every client by construction.
fn workload(cfg: &BenchConfig) -> (Vec<Request>, Vec<Request>) {
    let set = TaskSetGenerator::new(
        TaskSetConfig {
            n: cfg.tasks,
            ..TaskSetConfig::default()
        },
        derive_seed(cfg.seed, 0, 0),
    )
    .generate();
    let catalog: Vec<Task> = set.iter().cloned().collect();
    let batch: Vec<Request> = catalog
        .iter()
        .map(|t| Request::Admit {
            session: 0,
            task: t.clone(),
        })
        .collect();

    // Present/absent bookkeeping mirrors the session the script drives.
    let mut present: Vec<bool> = vec![true; catalog.len()];
    let mut current: Vec<Task> = catalog.clone();
    let mut ops = Vec::with_capacity(cfg.ops);
    for k in 0..cfg.ops {
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 1, k as u64));
        let ins: Vec<usize> = (0..catalog.len()).filter(|&i| present[i]).collect();
        let outs: Vec<usize> = (0..catalog.len()).filter(|&i| !present[i]).collect();
        let action = rng.gen_range(0u32..4);
        let req = match action {
            0 if !ins.is_empty() => {
                let i = ins[rng.gen_range(0..ins.len())];
                present[i] = false;
                Request::Remove {
                    session: 0,
                    id: current[i].id(),
                }
            }
            1 if !outs.is_empty() => {
                let i = outs[rng.gen_range(0..outs.len())];
                present[i] = true;
                Request::Admit {
                    session: 0,
                    task: current[i].clone(),
                }
            }
            2 if !ins.is_empty() => {
                // Cycle the execution time through four fixed fractions
                // of the original, so parameter configurations recur and
                // the verdict cache has something to reuse.
                let i = ins[rng.gen_range(0..ins.len())];
                let quarters = rng.gen_range(1i64..=4);
                let base = &catalog[i];
                let exec = Time::from_ticks((base.exec().as_ticks() * quarters / 4).max(1));
                let task = Task::builder(base.id())
                    .exec(exec)
                    .copy_in(base.copy_in())
                    .copy_out(base.copy_out())
                    .arrival(base.arrival().clone())
                    .deadline(base.deadline())
                    .priority(base.priority())
                    .build()
                    .expect("scaled-down task stays valid");
                current[i] = task.clone();
                Request::Update {
                    session: 0,
                    id: task.id(),
                    task,
                }
            }
            _ => Request::Query { session: 0 },
        };
        ops.push(req);
    }
    (batch, ops)
}

/// One client's measurements.
struct ClientOutcome {
    ops: u64,
    mismatches: u64,
    first_mismatch: Option<String>,
    latencies_us: Vec<f64>,
    secs: f64,
    log: Option<String>,
}

fn run_client(
    addr: SocketAddr,
    batch: &[Request],
    ops: &[Request],
    keep_log: bool,
) -> io::Result<ClientOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut shadows = std::collections::HashMap::new();
    let mut out = ClientOutcome {
        ops: 0,
        mismatches: 0,
        first_mismatch: None,
        latencies_us: Vec::with_capacity(ops.len()),
        secs: 0.0,
        log: keep_log.then(String::new),
    };
    let started = Instant::now();

    let encode = |r: &Request| -> io::Result<String> {
        encode_request(r)
            .map(|v| write_value(&v))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    };
    let round_trip = |writer: &mut TcpStream,
                      reader: &mut BufReader<TcpStream>,
                      line: &str|
     -> io::Result<(String, f64)> {
        let begin = Instant::now();
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let us = begin.elapsed().as_secs_f64() * 1e6;
        Ok((resp.trim_end().to_string(), us))
    };
    let mut verify = |out: &mut ClientOutcome, req: &Request, resp: &Value| {
        out.ops += 1;
        let expected = write_value(&expected_response(&mut shadows, req));
        let got = write_value(resp);
        if expected != got {
            out.mismatches += 1;
            out.first_mismatch
                .get_or_insert_with(|| format!("op={} expected={expected} got={got}", req.op()));
        }
    };

    // Phase 1: the initial admits travel as one batch array line.
    if !batch.is_empty() {
        let entries: Vec<String> = batch.iter().map(&encode).collect::<io::Result<_>>()?;
        let line = format!("[{}]", entries.join(","));
        let (resp_line, _) = round_trip(&mut writer, &mut reader, &line)?;
        let parsed =
            parse_value(&resp_line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let Value::Arr(responses) = &parsed else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "batch request must get an array response",
            ));
        };
        if responses.len() != batch.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "batch response length mismatch",
            ));
        }
        for (req, resp) in batch.iter().zip(responses) {
            verify(&mut out, req, resp);
        }
        if let Some(log) = out.log.as_mut() {
            log.push_str(&format!("{{\"req\":{line},\"resp\":{resp_line}}}\n"));
        }
    }

    // Phase 2: single-request lines, each a latency sample.
    for req in ops {
        let line = encode(req)?;
        let (resp_line, us) = round_trip(&mut writer, &mut reader, &line)?;
        out.latencies_us.push(us);
        let parsed =
            parse_value(&resp_line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        verify(&mut out, req, &parsed);
        if let Some(log) = out.log.as_mut() {
            log.push_str(&format!("{{\"req\":{line},\"resp\":{resp_line}}}\n"));
        }
    }

    out.secs = started.elapsed().as_secs_f64();
    Ok(out)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stat_u64(v: &Value, key: &str) -> u64 {
    match obj_get(v, key) {
        Some(Value::Int(i)) => u64::try_from(*i).unwrap_or(0),
        _ => 0,
    }
}

/// Runs the bench: spawn, replay, verify, measure, shut down, and (when
/// configured) write `BENCH_serve.json` and the replay log.
///
/// # Errors
///
/// Propagates socket and filesystem errors; verification mismatches are
/// *not* errors — they are reported in the outcome so the caller can
/// choose the exit code.
pub fn run(cfg: &BenchConfig) -> io::Result<BenchOutcome> {
    let server = spawn(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // One worker per client: no client ever waits for a worker, so
        // latency percentiles measure analysis, not queueing.
        workers: cfg.clients.max(1) + 1,
        session_capacity: None,
    })?;
    let addr = server.addr();
    let (batch, ops) = workload(cfg);

    let clients: Vec<usize> = (0..cfg.clients.max(1)).collect();
    let started = Instant::now();
    let results: Vec<Result<ClientOutcome, String>> =
        parallel_map(&clients, clients.len(), |_, &c| {
            run_client(addr, &batch, &ops, c == 0).map_err(|e| e.to_string())
        });
    let wall_secs = started.elapsed().as_secs_f64();

    // Server-wide counters, then an orderly shutdown over the wire.
    let control = TcpStream::connect(addr)?;
    let mut control_reader = BufReader::new(control.try_clone()?);
    let mut control_writer = control;
    let mut ask = |op: &str| -> io::Result<Value> {
        control_writer.write_all(op.as_bytes())?;
        control_writer.write_all(b"\n")?;
        control_writer.flush()?;
        let mut resp = String::new();
        control_reader.read_line(&mut resp)?;
        parse_value(resp.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    };
    let stats = ask("{\"op\":\"stats\"}")?;
    let stats = obj_get(&stats, "ok").cloned().unwrap_or(Value::Null);
    let _ = ask("{\"op\":\"shutdown\"}")?;
    drop(control_writer);
    server.join();

    let mut outcome = BenchOutcome {
        ops: 0,
        mismatches: 0,
        first_mismatch: None,
        wall_secs,
        qps: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        cache: CacheStats {
            hits: stat_u64(&stats, "cache_hits"),
            misses: stat_u64(&stats, "cache_misses"),
            evictions: stat_u64(&stats, "cache_evictions"),
        },
        verdicts_reused: stat_u64(&stats, "verdicts_reused"),
        verdicts_fresh: stat_u64(&stats, "verdicts_fresh"),
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut points: Vec<PerfPoint> = Vec::new();
    let mut client_log: Option<String> = None;
    for (c, result) in results.into_iter().enumerate() {
        let client = result.map_err(|e| io::Error::other(format!("client {c}: {e}")))?;
        outcome.ops += client.ops;
        outcome.mismatches += client.mismatches;
        if outcome.first_mismatch.is_none() {
            outcome.first_mismatch = client.first_mismatch;
        }
        latencies.extend(client.latencies_us);
        points.push(PerfPoint {
            label: format!("client{c}"),
            secs: client.secs,
        });
        if let Some(log) = client.log {
            client_log = Some(log);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    outcome.p50_us = percentile(&latencies, 0.50);
    outcome.p99_us = percentile(&latencies, 0.99);
    outcome.qps = if wall_secs > 0.0 {
        outcome.ops as f64 / wall_secs
    } else {
        0.0
    };

    if let (Some(path), Some(log)) = (&cfg.log, &client_log) {
        std::fs::write(path, log)?;
    }

    if cfg.perf {
        let mut record = PerfRecord::new("serve");
        record.wall_secs = wall_secs;
        record.jobs = cfg.clients.max(1);
        record.cache = outcome.cache;
        record.points = points;
        record.extra_num("qps", outcome.qps);
        record.extra_num("p50_latency_us", outcome.p50_us);
        record.extra_num("p99_latency_us", outcome.p99_us);
        record.extra_num("verdict_reuse_rate", outcome.verdict_reuse_rate());
        record.extra_num("verdicts_reused", outcome.verdicts_reused as f64);
        record.extra_num("verdicts_fresh", outcome.verdicts_fresh as f64);
        record.extra_num("replay_ops", outcome.ops as f64);
        record.extra_num("mismatches", outcome.mismatches as f64);
        record.extra_str(
            "workload",
            &format!(
                "seed={} clients={} ops={} tasks={}",
                cfg.seed,
                cfg.clients.max(1),
                cfg.ops,
                cfg.tasks
            ),
        );
        record.write()?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_model::TaskId;

    #[test]
    fn workload_is_deterministic_and_keeps_invariants() {
        let cfg = BenchConfig {
            ops: 40,
            ..BenchConfig::default()
        };
        let (batch_a, ops_a) = workload(&cfg);
        let (batch_b, ops_b) = workload(&cfg);
        assert_eq!(batch_a, batch_b);
        assert_eq!(ops_a, ops_b);
        assert_eq!(batch_a.len(), cfg.tasks);
        assert_eq!(ops_a.len(), cfg.ops);

        // Replay the script against a shadow: every remove targets a
        // present task, every admit an absent one.
        let mut present: Vec<TaskId> = batch_a
            .iter()
            .map(|r| match r {
                Request::Admit { task, .. } => task.id(),
                other => panic!("batch must be all admits, got {other:?}"),
            })
            .collect();
        for op in &ops_a {
            match op {
                Request::Remove { id, .. } => {
                    let pos = present.iter().position(|t| t == id);
                    present.remove(pos.expect("remove targets a present task"));
                }
                Request::Admit { task, .. } => {
                    assert!(!present.contains(&task.id()), "admit targets absent task");
                    present.push(task.id());
                }
                Request::Update { id, .. } => {
                    assert!(present.contains(id), "update targets a present task");
                }
                Request::Query { .. } => {}
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn different_seeds_give_different_scripts() {
        let a = workload(&BenchConfig {
            ops: 20,
            seed: 1,
            ..BenchConfig::default()
        });
        let b = workload(&BenchConfig {
            ops: 20,
            seed: 2,
            ..BenchConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let sorted: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn small_end_to_end_bench_has_zero_mismatches() {
        let cfg = BenchConfig {
            clients: 2,
            ops: 12,
            tasks: 4,
            perf: false,
            log: None,
            ..BenchConfig::default()
        };
        let outcome = run(&cfg).expect("bench runs");
        assert_eq!(outcome.mismatches, 0, "{:?}", outcome.first_mismatch);
        assert_eq!(outcome.ops as usize, 2 * (cfg.tasks + cfg.ops));
        assert!(outcome.qps > 0.0);
        // Two clients replaying the same script: the second's windows are
        // warmed by the first, so the shared cache must see hits.
        assert!(outcome.cache.hits > 0, "stats: {:?}", outcome.cache);
    }
}
