//! Offline refutation replay of a server request/response log.
//!
//! `pmcs-serve bench --log FILE` records every request/response pair of
//! one client connection as NDJSON lines `{"req":R,"resp":P}`. This
//! module re-derives every response *from scratch* — a shadow task set
//! per session, batch-analyzed with a fresh [`analyze_task_set`] after
//! each edit, no session state, no verdict cache, no shared delay cache —
//! and refutes any recorded response that differs byte-for-byte. A bug in
//! the incremental session layer, the wire codec, or the shared cache
//! therefore surfaces as a machine-readable `REFUTATION` line instead of
//! passing silently, mirroring the certificate checker's philosophy: the
//! checker shares no reuse machinery with the system it checks.
//!
//! Responses that depend on server load rather than analysis inputs
//! (`stats`) and capacity rejections (`session.over-capacity` reflects a
//! server *policy* the log does not record) are skipped, not checked.

use std::collections::HashMap;

use pmcs_cert::json::{parse_value, write_value, Value};
use pmcs_core::{analyze_task_set, CoreError, ExactEngine};
use pmcs_model::{Task, TaskSet};

use crate::proto::{
    decode_request, empty_report_value, encode_report, error_response, obj_get, ok_response,
    session_error, shutdown_value, Request, E_OVER_CAPACITY,
};

/// Outcome of replaying one log.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Log lines read.
    pub lines: usize,
    /// Responses re-derived and compared.
    pub checked: usize,
    /// Responses skipped (stats, capacity policy).
    pub skipped: usize,
    /// One machine-readable line per mismatch, `REFUTATION`-prefixed.
    pub refutations: Vec<String>,
}

impl ReplayOutcome {
    /// `true` iff every checked response matched the re-derivation.
    pub fn ok(&self) -> bool {
        self.refutations.is_empty()
    }
}

/// Re-derives the expected response for `request` against the shadow
/// sessions, mutating them exactly as the server would. The bench client
/// uses the same derivation for its live verification, so "bench found
/// zero mismatches" and "offline replay found zero refutations" check
/// the same property from two vantage points.
pub(crate) fn expected_response(shadows: &mut HashMap<u64, Vec<Task>>, request: &Request) -> Value {
    let report_for = |tasks: &[Task]| -> Value {
        if tasks.is_empty() {
            return ok_response(empty_report_value());
        }
        let set = match TaskSet::new(tasks.to_vec()) {
            Ok(s) => s,
            Err(e) => return error_response(&session_error(&CoreError::Model(e))),
        };
        match analyze_task_set(&set, &ExactEngine::default()) {
            Ok(report) => ok_response(encode_report(&report)),
            Err(e) => error_response(&session_error(&e)),
        }
    };
    match request {
        Request::Query { session } => report_for(shadows.entry(*session).or_default()),
        Request::Admit { session, task } => {
            let shadow = shadows.entry(*session).or_default();
            shadow.push(task.clone());
            let resp = report_for(shadow);
            if obj_get(&resp, "error").is_some() {
                shadow.pop();
            }
            resp
        }
        Request::Remove { session, id } => {
            let shadow = shadows.entry(*session).or_default();
            let Some(pos) = shadow.iter().position(|t| t.id() == *id) else {
                return error_response(&session_error(&CoreError::Model(
                    pmcs_model::ModelError::UnknownTask(*id),
                )));
            };
            let removed = shadow.remove(pos);
            let resp = report_for(shadow);
            if obj_get(&resp, "error").is_some() {
                shadow.insert(pos, removed);
            }
            resp
        }
        Request::Update { session, id, task } => {
            let shadow = shadows.entry(*session).or_default();
            let Some(pos) = shadow.iter().position(|t| t.id() == *id) else {
                return error_response(&session_error(&CoreError::Model(
                    pmcs_model::ModelError::UnknownTask(*id),
                )));
            };
            let previous = std::mem::replace(&mut shadow[pos], task.clone());
            let resp = report_for(shadow);
            if obj_get(&resp, "error").is_some() {
                shadow[pos] = previous;
            }
            resp
        }
        Request::Partition {
            tasks,
            cores,
            heuristic,
            period,
            budget,
        } => crate::server::partition_value(
            tasks.clone(),
            *cores,
            *heuristic,
            *period,
            *budget,
            &ExactEngine::default(),
        ),
        Request::Shutdown => ok_response(shutdown_value()),
        Request::Stats => Value::Null, // unreachable: caller skips stats
    }
}

/// `true` when the recorded response is a capacity rejection — a server
/// policy the log cannot reproduce, so it is skipped, and the shadow
/// must not apply the operation either.
fn is_capacity_rejection(resp: &Value) -> bool {
    obj_get(resp, "error")
        .and_then(|e| obj_get(e, "code"))
        .is_some_and(|c| matches!(c, Value::Str(s) if s == E_OVER_CAPACITY))
}

/// Replays a request/response log, returning the refutation report.
pub fn replay_log(text: &str) -> ReplayOutcome {
    let mut outcome = ReplayOutcome::default();
    let mut shadows: HashMap<u64, Vec<Task>> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        outcome.lines += 1;
        let n = lineno + 1;
        let entry = match parse_value(line) {
            Ok(v) => v,
            Err(e) => {
                outcome
                    .refutations
                    .push(format!("REFUTATION line={n} kind=malformed-log detail={e}"));
                continue;
            }
        };
        let (Some(req), Some(resp)) = (obj_get(&entry, "req"), obj_get(&entry, "resp")) else {
            outcome.refutations.push(format!(
                "REFUTATION line={n} kind=malformed-log detail=missing req/resp"
            ));
            continue;
        };
        // A batch line pairs an array of requests with an array of
        // responses, entry-wise.
        let pairs: Vec<(&Value, &Value)> = match (req, resp) {
            (Value::Arr(reqs), Value::Arr(resps)) if reqs.len() == resps.len() => {
                reqs.iter().zip(resps.iter()).collect()
            }
            (Value::Arr(_), _) | (_, Value::Arr(_)) => {
                outcome.refutations.push(format!(
                    "REFUTATION line={n} kind=malformed-log detail=batch req/resp length mismatch"
                ));
                continue;
            }
            (r, p) => vec![(r, p)],
        };
        for (i, (req, resp)) in pairs.into_iter().enumerate() {
            let request = match decode_request(req) {
                Ok(r) => r,
                Err(e) => {
                    // The server would have rejected it the same way.
                    let expected = write_value(&error_response(&e));
                    if write_value(resp) == expected {
                        outcome.checked += 1;
                    } else {
                        outcome.refutations.push(format!(
                            "REFUTATION line={n} entry={i} op=? expected={expected} got={}",
                            write_value(resp)
                        ));
                    }
                    continue;
                }
            };
            if matches!(request, Request::Stats) || is_capacity_rejection(resp) {
                outcome.skipped += 1;
                continue;
            }
            let expected = write_value(&expected_response(&mut shadows, &request));
            let got = write_value(resp);
            if expected == got {
                outcome.checked += 1;
            } else {
                outcome.refutations.push(format!(
                    "REFUTATION line={n} entry={i} op={} session={} expected={expected} got={got}",
                    request.op(),
                    request.session().unwrap_or(0),
                ));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_request;
    use pmcs_model::{Priority, TaskId, Time};

    fn demo_task(id: u32, prio: u32, exec: i64) -> Task {
        Task::builder(TaskId(id))
            .exec(Time::from_ticks(exec))
            .copy_in(Time::from_ticks(2))
            .copy_out(Time::from_ticks(2))
            .sporadic(Time::from_ticks(100))
            .deadline(Time::from_ticks(100))
            .priority(Priority(prio))
            .build()
            .expect("valid task")
    }

    fn log_line(req: &Request, resp: &Value) -> String {
        format!(
            "{{\"req\":{},\"resp\":{}}}",
            write_value(&encode_request(req).expect("encodes")),
            write_value(resp)
        )
    }

    #[test]
    fn faithful_log_replays_clean() {
        let mut shadows = HashMap::new();
        let requests = vec![
            Request::Admit {
                session: 0,
                task: demo_task(0, 0, 10),
            },
            Request::Admit {
                session: 0,
                task: demo_task(1, 1, 20),
            },
            Request::Query { session: 0 },
            Request::Remove {
                session: 0,
                id: TaskId(0),
            },
            Request::Update {
                session: 0,
                id: TaskId(1),
                task: demo_task(1, 1, 15),
            },
        ];
        let mut log = String::new();
        for r in &requests {
            let resp = expected_response(&mut shadows, r);
            log.push_str(&log_line(r, &resp));
            log.push('\n');
        }
        let outcome = replay_log(&log);
        assert!(outcome.ok(), "refutations: {:?}", outcome.refutations);
        assert_eq!(outcome.checked, requests.len());
        assert_eq!(outcome.lines, requests.len());
    }

    #[test]
    fn tampered_response_is_refuted() {
        let mut shadows = HashMap::new();
        let admit = Request::Admit {
            session: 0,
            task: demo_task(0, 0, 10),
        };
        let good = expected_response(&mut shadows, &admit);
        // Flip the schedulable verdict inside the recorded response.
        let tampered = write_value(&good).replace("\"schedulable\":true", "\"schedulable\":false");
        let log = format!(
            "{{\"req\":{},\"resp\":{tampered}}}\n",
            write_value(&encode_request(&admit).expect("encodes"))
        );
        let outcome = replay_log(&log);
        assert_eq!(outcome.refutations.len(), 1);
        assert!(outcome.refutations[0].starts_with("REFUTATION line=1"));
        assert!(outcome.refutations[0].contains("op=admit"));
    }

    #[test]
    fn stats_lines_are_skipped() {
        let log = "{\"req\":{\"op\":\"stats\"},\"resp\":{\"ok\":{\"sessions\":1}}}\n";
        let outcome = replay_log(log);
        assert!(outcome.ok());
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.checked, 0);
    }

    #[test]
    fn malformed_log_lines_are_refuted() {
        let outcome = replay_log("not json\n{\"req\":{\"op\":\"stats\"}}\n");
        assert_eq!(outcome.refutations.len(), 2);
        assert!(outcome.refutations[0].contains("kind=malformed-log"));
    }
}
