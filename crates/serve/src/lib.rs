//! # pmcs-serve
//!
//! Schedulability-as-a-service: a dependency-free NDJSON-over-TCP daemon
//! wrapping [`pmcs_core::AnalysisSession`]. Clients `admit`, `remove`,
//! `update` and `query` tasks over a plain socket; each connection holds
//! its own incremental sessions while every session in the process shares
//! one sharded [`pmcs_core::SharedDelayCache`], so a window bound solved
//! for one client is a cache hit for all of them. A stateless `partition`
//! op packs a posted task set onto `M` cores — optionally under
//! shared-bus bandwidth regulation with contention-aware admission, or
//! with a server-side search over uniform per-core budgets.
//!
//! Three layers, each usable on its own:
//!
//! * [`proto`] — the wire codec: request/response JSON in the certificate
//!   dialect, stable machine-readable error codes ([`ERROR_CODES`]),
//!   request batching via JSON arrays;
//! * [`server`] — the listener/worker-pool daemon ([`spawn`]); protocol
//!   errors never drop a connection, a `shutdown` op drains it cleanly;
//! * [`replay`] / [`bench`] — verification and measurement: the bench
//!   replays a seeded workload from concurrent clients and checks every
//!   response against the from-scratch batch analyzer; the same check
//!   runs offline over a recorded log via [`replay_log`] (exposed as
//!   `pmcs-audit serve-replay`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod proto;
pub mod replay;
pub mod server;

pub use bench::{run as run_bench, BenchConfig, BenchOutcome};
pub use proto::{decode_request, encode_request, Request, WireError, ERROR_CODES};
pub use replay::{replay_log, ReplayOutcome};
pub use server::{spawn, Server, ServerConfig};
