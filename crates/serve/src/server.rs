//! The TCP server: listener, worker pool, per-connection sessions.
//!
//! One listener thread accepts connections and pushes them onto a shared
//! work queue; a fixed pool of worker threads pops connections and serves
//! each to completion — the same dynamic work-queue idiom as
//! [`pmcs_bench::parallel`], adapted from a finite item list to an
//! unbounded connection stream (hence a condvar'd deque instead of an
//! atomic cursor). A straggler connection never idles the other workers.
//!
//! Every worker's sessions are built over one process-wide
//! [`SharedDelayCache`]: a window solved for any client is a hit for all
//! clients, which is what makes a warm admission-control server answer
//! repeat configurations in microseconds. Sessions themselves are
//! connection-private (see [`crate::proto`]), so the shared cache is the
//! *only* cross-connection state and it is content-addressed — responses
//! are byte-identical to a cold single-threaded server.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

use pmcs_cert::json::{parse_value, write_value, Value};
use pmcs_core::{
    assign_budgets, partition, partition_regulated, AnalysisSession, DelayEngine, ExactEngine,
    Heuristic, SessionStats, SharedCachedEngine, SharedDelayCache,
};
use pmcs_model::{BusModel, Task, Time};

use crate::proto::{
    decode_request, encode_budget_search, encode_partition_failure, encode_partitioning,
    encode_report, error_response, ok_response, session_error, shutdown_value, Request, WireError,
    E_BAD_FIELD, E_MALFORMED,
};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Per-session task capacity (`None` = unbounded).
    pub session_capacity: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            session_capacity: None,
        }
    }
}

/// Connection work queue: a condvar'd deque closed exactly once, after
/// which `pop` drains the backlog and then returns `None` to every
/// worker.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut state = self.state.lock().expect("queue lock");
        state.0.push_back(stream);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }
}

/// Process-wide server state shared by the listener and all workers.
struct Shared {
    addr: SocketAddr,
    cache: Arc<SharedDelayCache>,
    queue: ConnQueue,
    shutdown: AtomicBool,
    /// Mutating session operations committed server-wide.
    ops: AtomicU64,
    /// Per-task verdicts served from session verdict caches.
    reused: AtomicU64,
    /// Per-task verdicts computed fresh.
    fresh: AtomicU64,
    /// Live sessions across all connections.
    sessions: AtomicU64,
}

impl Shared {
    /// Flags shutdown and dials the listener so its blocking `accept`
    /// observes the flag. Idempotent.
    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running server: its bound address plus the handles needed to wait
/// for (or force) termination.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client connection (equivalent to a
    /// `shutdown` op on the wire).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until the server has shut down (a client sent `shutdown`,
    /// or [`Server::shutdown`] was called) and all workers drained.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the worker pool.
///
/// # Errors
///
/// Propagates socket errors from the initial bind.
pub fn spawn(cfg: &ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = if cfg.workers == 0 {
        thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        cfg.workers
    };
    let shared = Arc::new(Shared {
        addr,
        cache: Arc::new(SharedDelayCache::default()),
        queue: ConnQueue::new(),
        shutdown: AtomicBool::new(false),
        ops: AtomicU64::new(0),
        reused: AtomicU64::new(0),
        fresh: AtomicU64::new(0),
        sessions: AtomicU64::new(0),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(thread::spawn(move || {
            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    shared.queue.push(stream);
                }
            }
            shared.queue.close();
        }));
    }
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let capacity = cfg.session_capacity;
        threads.push(thread::spawn(move || {
            while let Some(stream) = shared.queue.pop() {
                handle_connection(stream, &shared, capacity);
            }
        }));
    }
    Ok(Server {
        addr,
        threads,
        shared,
    })
}

/// One connection's session state: the incremental analysis plus the last
/// stats snapshot, so only deltas are added to the server-wide counters
/// (no double-counting across requests).
struct Slot {
    session: AnalysisSession<SharedCachedEngine<ExactEngine>>,
    last: SessionStats,
}

type Sessions = HashMap<u64, Slot>;

fn handle_connection(stream: TcpStream, shared: &Shared, capacity: Option<usize>) {
    // A finite read timeout lets the worker notice a server-wide shutdown
    // while parked on an idle connection — without it, one lingering idle
    // client would keep `join` waiting forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut sessions: Sessions = HashMap::new();
    // Request bytes accumulate here across read timeouts: a timeout may
    // strike mid-line, and the partial line must survive until the rest
    // arrives.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let complete = buf.last() == Some(&b'\n');
                if complete || !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf);
                    let line = line.trim();
                    if !line.is_empty() {
                        let (response, stop) = respond_line(line, &mut sessions, shared, capacity);
                        let mut out = write_value(&response);
                        out.push('\n');
                        if writer
                            .write_all(out.as_bytes())
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                        if stop {
                            shared.initiate_shutdown();
                            break;
                        }
                    }
                }
                buf.clear();
                if !complete {
                    break; // unterminated final line: EOF follows
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    shared
        .sessions
        .fetch_sub(sessions.len() as u64, Ordering::Relaxed);
}

/// Evaluates one request line (a request object or an array of them) to
/// one response line; the bool asks the caller to stop serving.
fn respond_line(
    line: &str,
    sessions: &mut Sessions,
    shared: &Shared,
    capacity: Option<usize>,
) -> (Value, bool) {
    let parsed = match parse_value(line) {
        Ok(v) => v,
        Err(e) => return (error_response(&WireError::new(E_MALFORMED, e)), false),
    };
    match parsed {
        Value::Arr(items) => {
            let mut responses = Vec::with_capacity(items.len());
            let mut stop = false;
            for item in &items {
                let (resp, s) = respond_value(item, sessions, shared, capacity);
                responses.push(resp);
                stop |= s;
            }
            (Value::Arr(responses), stop)
        }
        single => respond_value(&single, sessions, shared, capacity),
    }
}

fn respond_value(
    v: &Value,
    sessions: &mut Sessions,
    shared: &Shared,
    capacity: Option<usize>,
) -> (Value, bool) {
    let request = match decode_request(v) {
        Ok(r) => r,
        Err(e) => return (error_response(&e), false),
    };
    match request {
        Request::Stats => (ok_response(stats_value(shared)), false),
        Request::Shutdown => (ok_response(shutdown_value()), true),
        Request::Partition {
            tasks,
            cores,
            heuristic,
            period,
            budget,
        } => (
            respond_partition(tasks, cores, heuristic, period, budget, shared),
            false,
        ),
        Request::Query { session } => {
            let slot = slot_for(sessions, shared, capacity, session);
            (ok_response(encode_report(slot.session.report())), false)
        }
        Request::Admit { session, task } => {
            let slot = slot_for(sessions, shared, capacity, session);
            let result = slot.session.admit(task).cloned();
            (finish_op(slot, shared, result), false)
        }
        Request::Remove { session, id } => {
            let slot = slot_for(sessions, shared, capacity, session);
            let result = slot.session.remove(id).cloned();
            (finish_op(slot, shared, result), false)
        }
        Request::Update { session, id, task } => {
            let slot = slot_for(sessions, shared, capacity, session);
            let result = slot.session.update(id, task).cloned();
            (finish_op(slot, shared, result), false)
        }
    }
}

/// Evaluates a stateless `partition` request over the shared delay
/// cache: contention-free packing without a `period`, contention-aware
/// packing on a uniform regulated bus with `period` + `budget`, and the
/// descending budget-assignment search with `period` alone. Packing
/// failures are *successful* responses (`schedulable:false`); only
/// engine faults and inconsistent bus parameters are errors.
fn respond_partition(
    tasks: Vec<Task>,
    cores: usize,
    heuristic: Heuristic,
    period: Option<Time>,
    budget: Option<Time>,
    shared: &Shared,
) -> Value {
    let engine = SharedCachedEngine::new(ExactEngine::default(), Arc::clone(&shared.cache));
    partition_value(tasks, cores, heuristic, period, budget, &engine)
}

/// The engine-generic body of [`respond_partition`]; the offline replay
/// checker re-derives partition responses through the same dispatch on a
/// fresh uncached engine (the request is stateless, so the cache is the
/// only machinery this shares with the live server).
pub(crate) fn partition_value(
    tasks: Vec<Task>,
    cores: usize,
    heuristic: Heuristic,
    period: Option<Time>,
    budget: Option<Time>,
    engine: &impl DelayEngine,
) -> Value {
    let outcome = match (period, budget) {
        (None, _) => partition(tasks, cores, heuristic, engine),
        (Some(p), Some(q)) => {
            let bus = match BusModel::uniform(p, cores, q) {
                Ok(bus) => bus,
                Err(e) => return error_response(&WireError::new(E_BAD_FIELD, e.to_string())),
            };
            partition_regulated(tasks, cores, &bus, heuristic, engine)
        }
        (Some(p), None) => {
            return match assign_budgets(tasks, cores, p, heuristic, engine) {
                Ok(search) => ok_response(encode_budget_search(&search)),
                Err(e) => error_response(&session_error(&e)),
            };
        }
    };
    match outcome {
        Ok(Ok(p)) => ok_response(encode_partitioning(&p)),
        Ok(Err(unplaced)) => ok_response(encode_partition_failure(&unplaced)),
        Err(e) => error_response(&session_error(&e)),
    }
}

fn slot_for<'a>(
    sessions: &'a mut Sessions,
    shared: &Shared,
    capacity: Option<usize>,
    id: u64,
) -> &'a mut Slot {
    sessions.entry(id).or_insert_with(|| {
        shared.sessions.fetch_add(1, Ordering::Relaxed);
        let engine = SharedCachedEngine::new(ExactEngine::default(), Arc::clone(&shared.cache));
        let session = match capacity {
            Some(cap) => AnalysisSession::with_capacity(engine, cap),
            None => AnalysisSession::new(engine),
        };
        Slot {
            session,
            last: SessionStats::default(),
        }
    })
}

/// Publishes the session's counter deltas and encodes the operation's
/// outcome.
fn finish_op(
    slot: &mut Slot,
    shared: &Shared,
    result: Result<pmcs_core::SchedulabilityReport, pmcs_core::CoreError>,
) -> Value {
    let now = slot.session.stats();
    shared
        .ops
        .fetch_add(now.ops - slot.last.ops, Ordering::Relaxed);
    shared.reused.fetch_add(
        now.verdicts_reused - slot.last.verdicts_reused,
        Ordering::Relaxed,
    );
    shared.fresh.fetch_add(
        now.verdicts_fresh - slot.last.verdicts_fresh,
        Ordering::Relaxed,
    );
    slot.last = now;
    match result {
        Ok(report) => ok_response(encode_report(&report)),
        Err(e) => error_response(&session_error(&e)),
    }
}

/// Server-wide counters: live sessions, committed ops, verdict reuse, and
/// the authoritative shared-cache statistics (counted shard-side, so the
/// numbers cover every worker without merging).
fn stats_value(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let reused = shared.reused.load(Ordering::Relaxed);
    let fresh = shared.fresh.load(Ordering::Relaxed);
    let reuse_rate = if reused + fresh == 0 {
        0.0
    } else {
        reused as f64 / (reused + fresh) as f64
    };
    Value::Obj(
        [
            (
                "sessions",
                Value::Int(shared.sessions.load(Ordering::Relaxed) as i128),
            ),
            (
                "ops",
                Value::Int(shared.ops.load(Ordering::Relaxed) as i128),
            ),
            ("verdicts_reused", Value::Int(reused as i128)),
            ("verdicts_fresh", Value::Int(fresh as i128)),
            ("verdict_reuse_rate", crate::proto::float_str(reuse_rate)),
            ("cache_hits", Value::Int(cache.hits as i128)),
            ("cache_misses", Value::Int(cache.misses as i128)),
            ("cache_evictions", Value::Int(cache.evictions as i128)),
            (
                "shared_cache_hit_rate",
                crate::proto::float_str(cache.hit_rate()),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_backlog_after_close() {
        let q = ConnQueue::new();
        // No streams queued: close makes pop return None immediately.
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn default_config_uses_ephemeral_loopback() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 0);
        assert!(cfg.session_capacity.is_none());
    }

    #[test]
    fn spawn_shutdown_join_terminates() {
        let server = spawn(&ServerConfig::default()).expect("bind loopback");
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
        server.join();
    }
}
