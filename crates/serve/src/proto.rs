//! The NDJSON wire protocol of the admission-control server.
//!
//! One request per line, one response per line, plain TCP. The JSON
//! dialect is the certificate codec of [`pmcs_cert::json`]: bare numbers
//! are always integers and floats travel as strings, so responses
//! round-trip bit-for-bit through the offline replay checker.
//!
//! ## Requests
//!
//! ```json
//! {"op":"admit","session":0,"task":{"id":3,"exec":10,"copy_in":2,"copy_out":2,
//!   "deadline":100,"priority":3,"arrival":{"kind":"sporadic","t":100}}}
//! {"op":"remove","session":0,"id":3}
//! {"op":"update","session":0,"id":3,"task":{...}}
//! {"op":"query","session":0}
//! {"op":"partition","cores":2,"heuristic":"first-fit","tasks":[{...},...],
//!   "period":20,"budget":10}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `partition` is stateless (it touches no session): it packs the posted
//! tasks onto `cores` cores with the named bin-packing heuristic.
//! Without `period` the platform is a contention-free crossbar; with
//! `period` and `budget` every core runs under uniform shared-bus
//! bandwidth regulation and admission uses contention-aware inflation;
//! with `period` alone the server searches descending uniform budgets
//! and returns the attempts ledger.
//!
//! `session` defaults to `0` and names a session *private to the
//! connection* — two connections using session 0 never see each other's
//! tasks (the shared delay cache below them is the only cross-connection
//! state, and it is content-addressed). A request line may also be a JSON
//! *array* of request objects: the response is then an array of response
//! objects, entry-wise, evaluated left to right in one network round
//! trip (request batching).
//!
//! ## Responses
//!
//! Success: `{"ok":REPORT}` where `REPORT` mirrors
//! [`SchedulabilityReport`]. Failure: `{"error":{"code":C,"detail":D}}`
//! where `C` is one of the stable [`ERROR_CODES`]; protocol errors never
//! drop the connection, so a client can recover from its own bad input.

use std::fmt;

use pmcs_cert::json::Value;
use pmcs_core::{
    BudgetSearch, CoreError, Heuristic, PartitionError, Partitioning, SchedulabilityReport,
};
use pmcs_model::{ArrivalModel, BusModel, ModelError, Priority, Task, TaskId, Time};

/// Malformed JSON on the wire (parse failure).
pub const E_MALFORMED: &str = "proto.malformed-json";
/// Parsed, but not a request object (or an array of them).
pub const E_BAD_REQUEST: &str = "proto.bad-request";
/// The `op` field names no known operation.
pub const E_UNKNOWN_OP: &str = "proto.unknown-op";
/// A required field is absent.
pub const E_MISSING_FIELD: &str = "proto.missing-field";
/// A field is present but has the wrong type or an invalid value.
pub const E_BAD_FIELD: &str = "proto.bad-field";
/// An admitted task id (or priority) collides with an existing one.
pub const E_DUPLICATE_TASK: &str = "session.duplicate-task";
/// The referenced task id is not admitted in this session.
pub const E_UNKNOWN_TASK: &str = "session.unknown-task";
/// The session has reached its configured task capacity.
pub const E_OVER_CAPACITY: &str = "session.over-capacity";
/// The analysis engine failed (never caused by client input alone).
pub const E_ENGINE: &str = "engine.failure";

/// Every stable error code, for exhaustive negative tests.
pub const ERROR_CODES: &[&str] = &[
    E_MALFORMED,
    E_BAD_REQUEST,
    E_UNKNOWN_OP,
    E_MISSING_FIELD,
    E_BAD_FIELD,
    E_DUPLICATE_TASK,
    E_UNKNOWN_TASK,
    E_OVER_CAPACITY,
    E_ENGINE,
];

/// A protocol-level failure: a stable machine-readable code plus a
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of [`ERROR_CODES`].
    pub code: &'static str,
    /// Human-readable explanation (not part of the stable contract).
    pub detail: String,
}

impl WireError {
    /// Creates an error with the given stable code.
    pub fn new(code: &'static str, detail: impl Into<String>) -> Self {
        WireError {
            code,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit one task into a session and re-analyze.
    Admit {
        /// Connection-local session id.
        session: u64,
        /// The task to admit.
        task: Task,
    },
    /// Remove an admitted task and re-analyze.
    Remove {
        /// Connection-local session id.
        session: u64,
        /// Id of the task to remove.
        id: TaskId,
    },
    /// Replace an admitted task and re-analyze.
    Update {
        /// Connection-local session id.
        session: u64,
        /// Id of the task to replace.
        id: TaskId,
        /// The replacement task.
        task: Task,
    },
    /// Return the current report without mutating the session.
    Query {
        /// Connection-local session id.
        session: u64,
    },
    /// Partition a task set onto `cores` cores (stateless — touches no
    /// session), optionally under shared-bus bandwidth regulation.
    Partition {
        /// The tasks to place.
        tasks: Vec<Task>,
        /// Number of identical cores.
        cores: usize,
        /// Bin-packing heuristic (defaults to first-fit on the wire).
        heuristic: Heuristic,
        /// Bus replenishment period; absent means a contention-free
        /// crossbar.
        period: Option<Time>,
        /// Uniform per-core budget; absent with `period` present runs
        /// the descending budget-assignment search.
        budget: Option<Time>,
    },
    /// Return server-wide counters (sessions, ops, cache, verdict reuse).
    Stats,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

impl Request {
    /// The wire name of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Admit { .. } => "admit",
            Request::Remove { .. } => "remove",
            Request::Update { .. } => "update",
            Request::Query { .. } => "query",
            Request::Partition { .. } => "partition",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// The session this request addresses, if any.
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Admit { session, .. }
            | Request::Remove { session, .. }
            | Request::Update { session, .. }
            | Request::Query { session } => Some(*session),
            Request::Partition { .. } | Request::Stats | Request::Shutdown => None,
        }
    }
}

// --- Value helpers ------------------------------------------------------
// `pmcs_cert::json::Value` keeps its accessors private; the protocol
// needs its own, returning stable wire errors instead of plain strings.

/// Looks up `key` in an object value.
pub fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn req_field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    obj_get(v, key).ok_or_else(|| WireError::new(E_MISSING_FIELD, format!("missing `{key}`")))
}

fn as_i64(v: &Value, key: &str) -> Result<i64, WireError> {
    match v {
        Value::Int(i) => i64::try_from(*i)
            .map_err(|_| WireError::new(E_BAD_FIELD, format!("`{key}` out of i64 range"))),
        _ => Err(WireError::new(
            E_BAD_FIELD,
            format!("`{key}` must be an integer"),
        )),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, WireError> {
    match v {
        Value::Int(i) => u64::try_from(*i)
            .map_err(|_| WireError::new(E_BAD_FIELD, format!("`{key}` out of u64 range"))),
        _ => Err(WireError::new(
            E_BAD_FIELD,
            format!("`{key}` must be a non-negative integer"),
        )),
    }
}

fn as_u32(v: &Value, key: &str) -> Result<u32, WireError> {
    u32::try_from(as_u64(v, key)?)
        .map_err(|_| WireError::new(E_BAD_FIELD, format!("`{key}` out of u32 range")))
}

fn as_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, WireError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(WireError::new(
            E_BAD_FIELD,
            format!("`{key}` must be a string"),
        )),
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn int(v: i64) -> Value {
    Value::Int(v as i128)
}

/// Floats travel as shortest round-trip strings, like the certificate
/// codec.
pub fn float_str(v: f64) -> Value {
    Value::Str(format!("{v:?}"))
}

// --- Task codec ---------------------------------------------------------

fn decode_arrival(v: &Value) -> Result<ArrivalModel, WireError> {
    match as_str(req_field(v, "kind")?, "kind")? {
        "sporadic" => {
            let t = as_i64(req_field(v, "t")?, "t")?;
            if t <= 0 {
                return Err(WireError::new(E_BAD_FIELD, "`t` must be positive"));
            }
            Ok(ArrivalModel::Sporadic {
                min_inter_arrival: Time::from_ticks(t),
            })
        }
        "periodic_jitter" => {
            let t = as_i64(req_field(v, "t")?, "t")?;
            let j = as_i64(req_field(v, "j")?, "j")?;
            if t <= 0 || j < 0 {
                return Err(WireError::new(
                    E_BAD_FIELD,
                    "`t` must be positive and `j` non-negative",
                ));
            }
            Ok(ArrivalModel::PeriodicJitter {
                period: Time::from_ticks(t),
                jitter: Time::from_ticks(j),
            })
        }
        other => Err(WireError::new(
            E_BAD_FIELD,
            format!("unsupported arrival kind {other:?} (use sporadic | periodic_jitter)"),
        )),
    }
}

fn encode_arrival(a: &ArrivalModel) -> Result<Value, WireError> {
    match a {
        ArrivalModel::Sporadic { min_inter_arrival } => Ok(obj(vec![
            ("kind", Value::Str("sporadic".into())),
            ("t", int(min_inter_arrival.as_ticks())),
        ])),
        ArrivalModel::PeriodicJitter { period, jitter } => Ok(obj(vec![
            ("kind", Value::Str("periodic_jitter".into())),
            ("t", int(period.as_ticks())),
            ("j", int(jitter.as_ticks())),
        ])),
        other => Err(WireError::new(
            E_BAD_FIELD,
            format!("arrival model {other:?} is not representable on the wire"),
        )),
    }
}

/// Decodes a task object. Tasks arrive unmarked — the greedy analysis
/// starts all-NLS, so the wire carries no sensitivity field.
pub fn decode_task(v: &Value) -> Result<Task, WireError> {
    let id = TaskId(as_u32(req_field(v, "id")?, "id")?);
    let tick = |key: &str| -> Result<Time, WireError> {
        Ok(Time::from_ticks(as_i64(req_field(v, key)?, key)?))
    };
    Task::builder(id)
        .exec(tick("exec")?)
        .copy_in(tick("copy_in")?)
        .copy_out(tick("copy_out")?)
        .arrival(decode_arrival(req_field(v, "arrival")?)?)
        .deadline(tick("deadline")?)
        .priority(Priority(as_u32(req_field(v, "priority")?, "priority")?))
        .build()
        .map_err(|e| WireError::new(E_BAD_FIELD, format!("invalid task: {e}")))
}

/// Encodes a task as its wire object.
///
/// # Errors
///
/// [`E_BAD_FIELD`] for arrival models with no wire representation
/// (staircase curves).
pub fn encode_task(t: &Task) -> Result<Value, WireError> {
    Ok(obj(vec![
        ("id", int(t.id().0 as i64)),
        ("exec", int(t.exec().as_ticks())),
        ("copy_in", int(t.copy_in().as_ticks())),
        ("copy_out", int(t.copy_out().as_ticks())),
        ("deadline", int(t.deadline().as_ticks())),
        ("priority", int(t.priority().0 as i64)),
        ("arrival", encode_arrival(t.arrival())?),
    ]))
}

// --- Request codec ------------------------------------------------------

/// Decodes one request object (not an array — batching is the transport
/// layer's concern).
pub fn decode_request(v: &Value) -> Result<Request, WireError> {
    if !matches!(v, Value::Obj(_)) {
        return Err(WireError::new(E_BAD_REQUEST, "request must be an object"));
    }
    let session = match obj_get(v, "session") {
        Some(s) => as_u64(s, "session")?,
        None => 0,
    };
    match as_str(req_field(v, "op")?, "op")? {
        "admit" => Ok(Request::Admit {
            session,
            task: decode_task(req_field(v, "task")?)?,
        }),
        "remove" => Ok(Request::Remove {
            session,
            id: TaskId(as_u32(req_field(v, "id")?, "id")?),
        }),
        "update" => Ok(Request::Update {
            session,
            id: TaskId(as_u32(req_field(v, "id")?, "id")?),
            task: decode_task(req_field(v, "task")?)?,
        }),
        "query" => Ok(Request::Query { session }),
        "partition" => {
            let tasks = match req_field(v, "tasks")? {
                Value::Arr(items) => items
                    .iter()
                    .map(decode_task)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => {
                    return Err(WireError::new(E_BAD_FIELD, "`tasks` must be an array"));
                }
            };
            let cores = usize::try_from(as_u64(req_field(v, "cores")?, "cores")?)
                .ok()
                .filter(|&m| m >= 1)
                .ok_or_else(|| WireError::new(E_BAD_FIELD, "`cores` must be at least 1"))?;
            let heuristic = match obj_get(v, "heuristic") {
                Some(h) => {
                    let name = as_str(h, "heuristic")?;
                    Heuristic::parse(name).ok_or_else(|| {
                        WireError::new(
                            E_BAD_FIELD,
                            format!(
                                "unknown heuristic {name:?} (use first-fit | best-fit | worst-fit)"
                            ),
                        )
                    })?
                }
                None => Heuristic::FirstFit,
            };
            let positive_tick = |key: &str| -> Result<Option<Time>, WireError> {
                match obj_get(v, key) {
                    Some(val) => {
                        let t = as_i64(val, key)?;
                        if t <= 0 {
                            return Err(WireError::new(
                                E_BAD_FIELD,
                                format!("`{key}` must be positive"),
                            ));
                        }
                        Ok(Some(Time::from_ticks(t)))
                    }
                    None => Ok(None),
                }
            };
            let period = positive_tick("period")?;
            let budget = positive_tick("budget")?;
            if budget.is_some() && period.is_none() {
                return Err(WireError::new(
                    E_BAD_FIELD,
                    "`budget` requires `period` (a budget without a replenishment period is \
                     meaningless)",
                ));
            }
            Ok(Request::Partition {
                tasks,
                cores,
                heuristic,
                period,
                budget,
            })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::new(
            E_UNKNOWN_OP,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Encodes a request as its wire object (the client half of the codec).
///
/// # Errors
///
/// [`E_BAD_FIELD`] when an embedded task is not wire-representable.
pub fn encode_request(r: &Request) -> Result<Value, WireError> {
    let op = |name: &str| ("op", Value::Str(name.into()));
    Ok(match r {
        Request::Admit { session, task } => obj(vec![
            op("admit"),
            ("session", int(*session as i64)),
            ("task", encode_task(task)?),
        ]),
        Request::Remove { session, id } => obj(vec![
            op("remove"),
            ("session", int(*session as i64)),
            ("id", int(id.0 as i64)),
        ]),
        Request::Update { session, id, task } => obj(vec![
            op("update"),
            ("session", int(*session as i64)),
            ("id", int(id.0 as i64)),
            ("task", encode_task(task)?),
        ]),
        Request::Query { session } => obj(vec![op("query"), ("session", int(*session as i64))]),
        Request::Partition {
            tasks,
            cores,
            heuristic,
            period,
            budget,
        } => {
            let mut pairs = vec![
                op("partition"),
                ("cores", int(*cores as i64)),
                ("heuristic", Value::Str(heuristic.to_string())),
                (
                    "tasks",
                    Value::Arr(
                        tasks
                            .iter()
                            .map(encode_task)
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                ),
            ];
            if let Some(p) = period {
                pairs.push(("period", int(p.as_ticks())));
            }
            if let Some(q) = budget {
                pairs.push(("budget", int(q.as_ticks())));
            }
            obj(pairs)
        }
        Request::Stats => obj(vec![op("stats")]),
        Request::Shutdown => obj(vec![op("shutdown")]),
    })
}

// --- Response codec -----------------------------------------------------

/// Wraps a payload as a success response `{"ok": payload}`.
pub fn ok_response(payload: Value) -> Value {
    obj(vec![("ok", payload)])
}

/// Encodes an error response `{"error":{"code":...,"detail":...}}`.
pub fn error_response(e: &WireError) -> Value {
    obj(vec![(
        "error",
        obj(vec![
            ("code", Value::Str(e.code.to_string())),
            ("detail", Value::Str(e.detail.clone())),
        ]),
    )])
}

/// Encodes a schedulability report as its wire object.
pub fn encode_report(r: &SchedulabilityReport) -> Value {
    obj(vec![
        ("schedulable", Value::Bool(r.schedulable())),
        ("rounds", int(r.rounds() as i64)),
        (
            "promoted",
            Value::Arr(
                r.assignment()
                    .promoted
                    .iter()
                    .map(|t| int(t.0 as i64))
                    .collect(),
            ),
        ),
        (
            "verdicts",
            Value::Arr(
                r.verdicts()
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("task", int(v.task.0 as i64)),
                            ("wcrt", int(v.wcrt.as_ticks())),
                            ("deadline", int(v.deadline.as_ticks())),
                            ("schedulable", Value::Bool(v.schedulable)),
                            ("ls", Value::Bool(v.sensitivity.is_ls())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes a bus model: `{"kind":"crossbar"}` or
/// `{"kind":"regulated","period":P,"budgets":[Q0,Q1,...]}`.
pub fn encode_bus(bus: &BusModel) -> Value {
    match bus.period() {
        Some(period) => obj(vec![
            ("kind", Value::Str("regulated".into())),
            ("period", int(period.as_ticks())),
            (
                "budgets",
                Value::Arr(bus.budgets().iter().map(|q| int(q.as_ticks())).collect()),
            ),
        ]),
        None => obj(vec![("kind", Value::Str("crossbar".into()))]),
    }
}

/// Encodes a successful partitioning: the overall verdict, the bus, and
/// per-core task assignments with their schedulability reports (analyzed
/// under contention-aware inflation when the bus is regulated).
pub fn encode_partitioning(p: &Partitioning) -> Value {
    obj(vec![
        ("schedulable", Value::Bool(p.schedulable())),
        ("bus", encode_bus(p.platform.bus())),
        (
            "cores",
            Value::Arr(
                p.platform
                    .iter()
                    .zip(&p.reports)
                    .map(|((_, set), report)| {
                        obj(vec![
                            (
                                "tasks",
                                Value::Arr(
                                    set.tasks().iter().map(|t| int(t.id().0 as i64)).collect(),
                                ),
                            ),
                            ("report", encode_report(report)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes a packing failure as a *success* response payload (the client
/// asked a well-formed question whose answer is "does not fit"):
/// `{"schedulable":false,"unplaced":ID,"cores":N}`.
pub fn encode_partition_failure(e: &PartitionError) -> Value {
    obj(vec![
        ("schedulable", Value::Bool(false)),
        ("unplaced", int(e.task.0 as i64)),
        ("cores", int(e.cores as i64)),
    ])
}

/// Encodes a budget-assignment search: the attempts ledger plus either
/// the winning partitioning or the failure verdict.
pub fn encode_budget_search(s: &BudgetSearch) -> Value {
    let attempts = Value::Arr(
        s.attempts
            .iter()
            .map(|a| {
                obj(vec![
                    ("budget", int(a.budget.as_ticks())),
                    ("schedulable", Value::Bool(a.schedulable)),
                ])
            })
            .collect(),
    );
    match &s.solution {
        Some(p) => {
            let mut v = encode_partitioning(p);
            if let Value::Obj(pairs) = &mut v {
                pairs.push(("attempts".to_string(), attempts));
            }
            v
        }
        None => obj(vec![
            ("schedulable", Value::Bool(false)),
            ("attempts", attempts),
        ]),
    }
}

/// The wire object of an *empty* session's report: trivially schedulable,
/// zero rounds. The offline replay checker needs this because
/// [`SchedulabilityReport`] offers no public empty constructor.
pub fn empty_report_value() -> Value {
    obj(vec![
        ("schedulable", Value::Bool(true)),
        ("rounds", int(0)),
        ("promoted", Value::Arr(Vec::new())),
        ("verdicts", Value::Arr(Vec::new())),
    ])
}

/// The wire response acknowledging a shutdown request.
pub fn shutdown_value() -> Value {
    obj(vec![("shutdown", Value::Bool(true))])
}

/// Maps a session-layer [`CoreError`] to its stable wire code.
pub fn session_error(e: &CoreError) -> WireError {
    let code = match e {
        CoreError::SessionCapacity { .. } => E_OVER_CAPACITY,
        CoreError::Model(ModelError::DuplicateTaskId(_))
        | CoreError::Model(ModelError::DuplicatePriority { .. }) => E_DUPLICATE_TASK,
        CoreError::Model(ModelError::UnknownTask(_)) => E_UNKNOWN_TASK,
        _ => E_ENGINE,
    };
    WireError::new(code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_cert::json::{parse_value, write_value};
    use pmcs_core::{analyze_task_set, ExactEngine};
    use pmcs_model::TaskSet;

    fn demo_task(id: u32, prio: u32) -> Task {
        Task::builder(TaskId(id))
            .exec(Time::from_ticks(10))
            .copy_in(Time::from_ticks(2))
            .copy_out(Time::from_ticks(2))
            .sporadic(Time::from_ticks(100))
            .deadline(Time::from_ticks(100))
            .priority(Priority(prio))
            .build()
            .expect("valid task")
    }

    #[test]
    fn task_round_trips_through_the_wire() {
        let t = demo_task(3, 1);
        let v = encode_task(&t).expect("sporadic task encodes");
        let text = write_value(&v);
        let back = decode_task(&parse_value(&text).expect("valid json")).expect("decodes");
        assert_eq!(back, t);
    }

    #[test]
    fn periodic_jitter_round_trips() {
        let t = Task::builder(TaskId(0))
            .exec(Time::from_ticks(5))
            .copy_in(Time::from_ticks(1))
            .copy_out(Time::from_ticks(1))
            .arrival(ArrivalModel::PeriodicJitter {
                period: Time::from_ticks(50),
                jitter: Time::from_ticks(3),
            })
            .deadline(Time::from_ticks(40))
            .priority(Priority(0))
            .build()
            .expect("valid task");
        let v = encode_task(&t).expect("encodes");
        let back = decode_task(&v).expect("decodes");
        assert_eq!(back, t);
    }

    #[test]
    fn request_round_trips() {
        for r in [
            Request::Admit {
                session: 2,
                task: demo_task(1, 0),
            },
            Request::Remove {
                session: 0,
                id: TaskId(1),
            },
            Request::Update {
                session: 1,
                id: TaskId(1),
                task: demo_task(1, 0),
            },
            Request::Query { session: 9 },
            Request::Partition {
                tasks: vec![demo_task(0, 0), demo_task(1, 1)],
                cores: 2,
                heuristic: Heuristic::WorstFit,
                period: Some(Time::from_ticks(20)),
                budget: Some(Time::from_ticks(10)),
            },
            Request::Partition {
                tasks: vec![demo_task(2, 2)],
                cores: 1,
                heuristic: Heuristic::FirstFit,
                period: None,
                budget: None,
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            let v = encode_request(&r).expect("encodes");
            let back = decode_request(&v).expect("decodes");
            assert_eq!(back, r);
        }
    }

    #[test]
    fn session_defaults_to_zero() {
        let v = parse_value(r#"{"op":"query"}"#).expect("valid json");
        assert_eq!(
            decode_request(&v).expect("decodes"),
            Request::Query { session: 0 }
        );
    }

    #[test]
    fn missing_and_bad_fields_have_stable_codes() {
        let missing = parse_value(r#"{"op":"remove"}"#).expect("valid json");
        assert_eq!(
            decode_request(&missing).expect_err("no id").code,
            E_MISSING_FIELD
        );
        let bad = parse_value(r#"{"op":"remove","id":"three"}"#).expect("valid json");
        assert_eq!(decode_request(&bad).expect_err("bad id").code, E_BAD_FIELD);
        let unknown = parse_value(r#"{"op":"evict"}"#).expect("valid json");
        assert_eq!(
            decode_request(&unknown).expect_err("bad op").code,
            E_UNKNOWN_OP
        );
        let non_obj = parse_value("[1,2]").expect("valid json");
        assert_eq!(
            decode_request(&non_obj).expect_err("not an object").code,
            E_BAD_REQUEST
        );
    }

    #[test]
    fn report_encoding_matches_the_batch_analyzer_shape() {
        let set = TaskSet::new(vec![demo_task(0, 0), demo_task(1, 1)]).expect("valid set");
        let report = analyze_task_set(&set, &ExactEngine::default()).expect("analyzes");
        let v = encode_report(&report);
        let text = write_value(&v);
        assert!(text.starts_with(r#"{"schedulable":"#));
        let parsed = parse_value(&text).expect("round trips");
        let verdicts = match obj_get(&parsed, "verdicts") {
            Some(Value::Arr(a)) => a,
            other => panic!("verdicts must be an array, got {other:?}"),
        };
        assert_eq!(verdicts.len(), 2);
    }

    #[test]
    fn core_errors_map_to_stable_codes() {
        assert_eq!(
            session_error(&CoreError::SessionCapacity { capacity: 4 }).code,
            E_OVER_CAPACITY
        );
        assert_eq!(
            session_error(&CoreError::Model(ModelError::DuplicateTaskId(TaskId(1)))).code,
            E_DUPLICATE_TASK
        );
        assert_eq!(
            session_error(&CoreError::Model(ModelError::UnknownTask(TaskId(1)))).code,
            E_UNKNOWN_TASK
        );
    }

    #[test]
    fn error_codes_are_unique_and_namespaced() {
        for (i, a) in ERROR_CODES.iter().enumerate() {
            assert!(
                a.starts_with("proto.") || a.starts_with("session.") || a.starts_with("engine."),
                "code {a} lacks a namespace"
            );
            for b in &ERROR_CODES[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
