//! # pmcs-baselines
//!
//! The two baselines the paper compares against (Section VII):
//!
//! * [`nps`] — classical **non-preemptive fixed-priority scheduling**
//!   (reference \[16\] of the paper): memory phases are serialized on the
//!   CPU (`C'_i = l_i + C_i + u_i`), no DMA parallelism; response times via
//!   the standard level-i active-period analysis with arrival curves.
//! * [`wp`] — the DMA co-scheduling protocol of **Wasly & Pellizzoni**
//!   (reference \[3\]): memory phases hidden by the DMA, but every task can
//!   be blocked by up to *two* lower-priority scheduling intervals. Two
//!   analysis flavors are provided: the closed-form interval-counting
//!   bound reconstructed from the characterization in Section III-A
//!   ([`wp::WpAnalysis`]), and the paper's own MILP run with all tasks
//!   NLS ([`wp::wp_milp_analysis`]), which the paper notes is itself an
//!   improved analysis of \[3\].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod nps;
pub mod wp;

pub use nps::{NpsAnalysis, NpsTaskResult};
pub use wp::{wp_milp_analysis, WpAnalysis, WpTaskResult};
