//! Analysis of the Wasly-Pellizzoni DMA co-scheduling protocol
//! (reference \[3\] of the paper, recalled in Section III-A).
//!
//! Under \[3\], the CPU executes the task whose data the DMA loaded in the
//! previous interval while the DMA unloads the previous task and loads the
//! next; an interval lasts as long as the longest of the two. Every task
//! executes in exactly one interval, and — the protocol's weakness — a task
//! can be **blocked by up to two lower-priority intervals** because the
//! copy-in decision for the next interval is taken at interval start,
//! before the task's release is visible.
//!
//! Two analysis flavors:
//!
//! * [`WpAnalysis`] — a closed-form interval-counting bound reconstructed
//!   from the characterization the paper relies on. Each interval hosting
//!   an execution of `τ_j` is bounded by `Î_j = max(C_j, l̂ + û)` with
//!   `l̂ = max_j l_j`, `û = max_j u_j` (the DMA may copy out any task and
//!   copy in any task in that interval). The response bound solves
//!   `R̄ = B̂ + Σ_{j∈hp} (η_j(t)+1)·Î_j + max(C_i, l̂+û) + u_i` with
//!   `t = R̄ − C_i − u_i` and `B̂` charging two blocking intervals: the
//!   two largest `Î_l` over distinct lower-priority tasks, or — with a
//!   single lower-priority task — its `Î_l` plus a standalone copy-in
//!   interval (`l̂ + û`), since one lp job spans its copy-in interval and
//!   its execution interval.
//! * [`wp_milp_analysis`] — the paper's own formulation with **all tasks
//!   NLS** (rules R3–R5 never trigger, so the proposed protocol degenerates
//!   to \[3\]); the paper points out this doubles as an improved analysis
//!   of \[3\].

use pmcs_core::schedulability::analyze_fixed_marking;
use pmcs_core::{CoreError, DelayEngine, SchedulabilityReport};
use pmcs_model::{ArrivalBound, TaskId, TaskSet, Time};

/// Per-task result of the closed-form WP analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WpTaskResult {
    /// The analyzed task.
    pub task: TaskId,
    /// WCRT bound (saturated to [`Time::MAX`] on divergence).
    pub wcrt: Time,
    /// `wcrt ≤ D_i`.
    pub schedulable: bool,
    /// Fixed-point iterations performed.
    pub iterations: usize,
}

/// Closed-form response-time analysis for the protocol of \[3\].
///
/// # Example
///
/// ```
/// use pmcs_baselines::WpAnalysis;
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskId, TaskSet};
///
/// let set = TaskSet::new(vec![
///     test_task(0, 10, 2, 2, 100, 0, false),
///     test_task(1, 20, 4, 4, 500, 1, false),
/// ]).unwrap();
/// let r = WpAnalysis::default().analyze_task(&set, TaskId(0));
/// assert!(r.schedulable);
/// ```
#[derive(Debug, Clone)]
pub struct WpAnalysis {
    /// Iteration cap for the response-time fixed point.
    pub max_iterations: usize,
}

impl Default for WpAnalysis {
    fn default() -> Self {
        WpAnalysis {
            max_iterations: 10_000,
        }
    }
}

impl WpAnalysis {
    /// Creates an analysis with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes every task; results in decreasing priority order.
    pub fn analyze(&self, set: &TaskSet) -> Vec<WpTaskResult> {
        set.iter().map(|t| self.analyze_task(set, t.id())).collect()
    }

    /// `true` iff all tasks meet their deadlines.
    pub fn is_schedulable(&self, set: &TaskSet) -> bool {
        set.iter()
            .all(|t| self.analyze_task(set, t.id()).schedulable)
    }

    /// Analyzes one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn analyze_task(&self, set: &TaskSet, id: TaskId) -> WpTaskResult {
        let task = set.require(id).expect("task must belong to the set");
        let deadline = task.deadline();
        let dma = set.max_copy_in() + set.max_copy_out(); // l̂ + û

        let interval = |c: Time| c.max(dma);
        // Up to two blocking intervals. With two or more lower-priority
        // tasks the worst charge is the two largest lp execution-interval
        // bounds (distinct tasks, one job each). A *single* lp task still
        // blocks through two intervals — its standalone DMA copy-in
        // interval (no execution, length ≤ l̂+û) followed by its execution
        // interval — and `interval(C) ≥ l̂+û` makes the two-execution
        // charge dominate that alternative whenever a second lp task
        // exists.
        let mut lp_bounds: Vec<Time> = set.lower_priority(id).map(|j| interval(j.exec())).collect();
        lp_bounds.sort_unstable_by(|a, b| b.cmp(a));
        let blocking: Time = match lp_bounds.len() {
            0 => Time::ZERO,
            1 => lp_bounds[0] + dma,
            _ => lp_bounds[0] + lp_bounds[1],
        };
        let hp: Vec<_> = set.higher_priority(id).collect();

        // The interval executing τ_i also carries DMA work for neighbors.
        let last = interval(task.exec());
        // A bare copy-in interval is needed only when no other interval
        // exists to carry τ_i's copy-in.
        let base = if blocking.is_zero() && hp.is_empty() {
            task.copy_in() + set.max_copy_out()
        } else {
            Time::ZERO
        };

        let tail = task.exec() + task.copy_out();
        let mut response = task.copy_in() + tail;
        for iteration in 1..=self.max_iterations {
            let t = response - tail;
            let mut next = blocking + base + last + task.copy_out();
            for j in &hp {
                next += interval(j.exec()) * ((j.arrival().eta(t) + 1) as i64);
            }
            if next <= response {
                return WpTaskResult {
                    task: id,
                    wcrt: response,
                    schedulable: response <= deadline,
                    iterations: iteration,
                };
            }
            response = next;
            if response > deadline {
                return WpTaskResult {
                    task: id,
                    wcrt: response,
                    schedulable: false,
                    iterations: iteration,
                };
            }
        }
        WpTaskResult {
            task: id,
            wcrt: Time::MAX,
            schedulable: false,
            iterations: self.max_iterations,
        }
    }
}

/// The paper's MILP analysis restricted to all-NLS markings — the improved
/// analysis of \[3\] mentioned in Sections V/VIII. Any LS flags in `set` are
/// ignored.
///
/// # Errors
///
/// Propagates engine failures.
pub fn wp_milp_analysis(
    set: &TaskSet,
    engine: &impl DelayEngine,
) -> Result<SchedulabilityReport, CoreError> {
    analyze_fixed_marking(&set.all_nls(), engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;
    use pmcs_core::ExactEngine;

    #[test]
    fn single_task_bound() {
        let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 100, 0, false)]).unwrap();
        let r = WpAnalysis::default().analyze_task(&set, TaskId(0));
        // base = l + û = 3 + 2 = 5, last = max(10, 5) = 10, + u = 2 → 17.
        assert_eq!(r.wcrt, Time::from_ticks(17));
        assert!(r.schedulable);
    }

    #[test]
    fn two_blocking_intervals_are_charged() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 10_000, 0, false),
            test_task(1, 300, 1, 1, 10_000, 1, false),
            test_task(2, 400, 1, 1, 10_000, 2, false),
        ])
        .unwrap();
        let r = WpAnalysis::default().analyze_task(&set, TaskId(0));
        // B̂ = 400 + 300 (two largest distinct lp tasks); last = 10; + u = 1.
        assert_eq!(r.wcrt, Time::from_ticks(400 + 300 + 10 + 1));
    }

    #[test]
    fn single_lp_task_still_charges_two_blocking_intervals() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .unwrap();
        let r = WpAnalysis::default().analyze_task(&set, TaskId(0));
        // The lone lp job blocks via its standalone copy-in interval
        // (≤ l̂+û = 8) and its execution interval (max(20, 8) = 20);
        // last = max(10, 8) = 10; + u = 2.
        assert_eq!(r.wcrt, Time::from_ticks(8 + 20 + 10 + 2));
    }

    #[test]
    fn interference_counts_eta_plus_one() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 100, 0, false),
            test_task(1, 20, 2, 2, 10_000, 1, false),
        ])
        .unwrap();
        let r = WpAnalysis::default().analyze_task(&set, TaskId(1));
        // dma = 4; Î_0 = max(10, 4) = 10; t small → η+1 = 2 hp intervals;
        // last = max(20, 4) = 20; + u = 2. R = 20 + 20 + 2 = 42.
        assert_eq!(r.wcrt, Time::from_ticks(42));
        assert!(r.schedulable);
    }

    #[test]
    fn closed_form_and_milp_variant_are_consistent() {
        // The closed form and the all-NLS MILP are two *incomparable*
        // sound bounds: the closed form assumes compact windows (every
        // interval hosts an execution), the MILP relaxation lets idle
        // intervals carry DMA work. Check both dominate the
        // interference-free minimum and stay within a sane factor of each
        // other.
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 300, 0, false),
            test_task(1, 30, 3, 3, 400, 1, false),
            test_task(2, 50, 4, 4, 900, 2, false),
        ])
        .unwrap();
        let closed = WpAnalysis::default().analyze(&set);
        let milp = wp_milp_analysis(&set, &ExactEngine::default()).unwrap();
        for (c, m) in closed.iter().zip(milp.verdicts()) {
            assert_eq!(c.task, m.task);
            let t = set.get(c.task).unwrap();
            let floor = t.copy_in() + t.exec() + t.copy_out();
            assert!(c.wcrt >= floor && m.wcrt >= floor);
            let (lo, hi) = (c.wcrt.min(m.wcrt), c.wcrt.max(m.wcrt));
            assert!(
                hi.as_ticks() <= 2 * lo.as_ticks(),
                "{}: closed-form {} and MILP {} diverge wildly",
                c.task,
                c.wcrt,
                m.wcrt
            );
        }
    }

    #[test]
    fn wp_milp_ignores_ls_flags() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 300, 0, true),
            test_task(1, 30, 3, 3, 400, 1, false),
        ])
        .unwrap();
        let r = wp_milp_analysis(&set, &ExactEngine::default()).unwrap();
        assert!(r.assignment().promoted.is_empty());
    }

    #[test]
    fn divergence_reports_unschedulable() {
        let set = TaskSet::new(vec![
            test_task(0, 80, 2, 2, 100, 0, false),
            test_task(1, 80, 2, 2, 100, 1, false),
        ])
        .unwrap();
        let r = WpAnalysis::default().analyze_task(&set, TaskId(1));
        assert!(!r.schedulable);
        assert!(!WpAnalysis::default().is_schedulable(&set));
    }
}
