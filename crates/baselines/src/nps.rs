//! Classical non-preemptive fixed-priority response-time analysis.
//!
//! Under NPS the three phases are serialized on the CPU: each job demands
//! `C'_i = l_i + C_i + u_i` and runs to completion once started. The
//! analysis is the standard level-i active-period formulation for
//! non-preemptive fixed priorities, generalized to arrival curves:
//!
//! * blocking `B_i = max_{j ∈ lp(i)} (C'_j − 1)` (a lower-priority job must
//!   have *started* strictly before the critical instant);
//! * level-i active period
//!   `L_i = B_i + Σ_{j ∈ hp(i) ∪ {i}} η⁺_j(L_i) · C'_j`;
//! * for every job `q` of `τ_i` in the active period, start time
//!   `s_q = B_i + (q−1)·C'_i + Σ_{j ∈ hp(i)} η⁺_j(s_q) · C'_j` and
//!   response `R_q = s_q + C'_i − r_q`, where `r_q` is the earliest
//!   possible release of the `q`-th job (the curve's pseudo-inverse);
//! * `R_i = max_q R_q`.
//!
//! `η⁺` counts releases in a closed window (a higher-priority job released
//! exactly at the start instant still wins the processor).

use pmcs_model::{ArrivalBound, TaskId, TaskSet, Time};

/// Per-task NPS analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpsTaskResult {
    /// The analyzed task.
    pub task: TaskId,
    /// WCRT bound (saturated to [`Time::MAX`] on divergence).
    pub wcrt: Time,
    /// `wcrt ≤ D_i`.
    pub schedulable: bool,
    /// Jobs examined in the level-i active period.
    pub jobs_checked: u64,
}

/// Non-preemptive fixed-priority analysis (reference \[16\] of the paper).
///
/// Two interference-counting conventions are provided:
///
/// * **Classical critical-instant** (default): higher-priority jobs
///   released in the closed window `[0, s]` interfere — the textbook
///   level-i active-period analysis. The tightest baseline.
/// * **Release-anchored with carry** ([`NpsAnalysis::with_carry`]): each
///   higher-priority task contributes `η_j(s) + 1` jobs, mirroring the
///   convention of the paper's own analysis (Theorem 1). Use this variant
///   for apples-to-apples comparisons against the proposed protocol and
///   WP — all three then charge carry-in identically, as the paper's
///   evaluation implicitly does.
///
/// # Example
///
/// ```
/// use pmcs_baselines::NpsAnalysis;
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskId, TaskSet};
///
/// let set = TaskSet::new(vec![
///     test_task(0, 10, 2, 2, 100, 0, false),
///     test_task(1, 20, 4, 4, 200, 1, false),
/// ]).unwrap();
/// let r = NpsAnalysis::default().analyze(&set);
/// assert!(r.iter().all(|t| t.schedulable));
/// ```
#[derive(Debug, Clone)]
pub struct NpsAnalysis {
    /// Iteration cap for the fixed points (safety net).
    pub max_iterations: usize,
    /// Charge `η_j + 1` interfering jobs per higher-priority task
    /// (the paper's carry-in convention) instead of the classical
    /// closed-window count.
    pub carry_in: bool,
}

impl Default for NpsAnalysis {
    fn default() -> Self {
        NpsAnalysis {
            max_iterations: 10_000,
            carry_in: false,
        }
    }
}

impl NpsAnalysis {
    /// Creates an analysis with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analysis using the paper's carry-in convention
    /// (`η_j + 1` interfering jobs per higher-priority task).
    pub fn with_carry() -> Self {
        NpsAnalysis {
            carry_in: true,
            ..Self::default()
        }
    }

    /// Interfering job count of `task` in a window of length `w`.
    fn interference_count(&self, task: &pmcs_model::Task, w: Time) -> u64 {
        if self.carry_in {
            task.arrival().eta(w) + 1
        } else {
            task.arrival().eta_closed(w)
        }
    }

    /// Analyzes every task; results are in decreasing priority order.
    pub fn analyze(&self, set: &TaskSet) -> Vec<NpsTaskResult> {
        set.iter().map(|t| self.analyze_task(set, t.id())).collect()
    }

    /// `true` iff all tasks meet their deadlines.
    pub fn is_schedulable(&self, set: &TaskSet) -> bool {
        set.iter().all(|t| {
            let r = self.analyze_task(set, t.id());
            r.schedulable
        })
    }

    /// Analyzes one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn analyze_task(&self, set: &TaskSet, id: TaskId) -> NpsTaskResult {
        let task = set.require(id).expect("task must belong to the set");
        let c_own = task.wcet_serialized();
        let deadline = task.deadline();

        let blocking = set
            .lower_priority(id)
            .map(|j| j.wcet_serialized() - Time::TICK)
            .fold(Time::ZERO, Time::max);

        // --- Level-i active period -----------------------------------
        let hp: Vec<_> = set.higher_priority(id).collect();
        let mut period_len = blocking + c_own;
        let mut diverged = true;
        for _ in 0..self.max_iterations {
            let mut next = blocking + c_own * (task.arrival().eta_closed(period_len) as i64);
            for j in &hp {
                next += j.wcet_serialized() * (self.interference_count(j, period_len) as i64);
            }
            if next <= period_len {
                diverged = false;
                break;
            }
            period_len = next;
            if period_len > deadline * 64 + Time::from_secs(10) {
                // Hopeless overload; treat as divergence.
                break;
            }
        }
        if diverged {
            return NpsTaskResult {
                task: id,
                wcrt: Time::MAX,
                schedulable: false,
                jobs_checked: 0,
            };
        }

        // --- Per-job start times --------------------------------------
        let num_jobs = task.arrival().eta_closed(period_len).max(1);
        let mut wcrt = Time::ZERO;
        for q in 1..=num_jobs {
            let release = task.arrival().min_distance(q);
            let mut start = blocking + c_own * ((q - 1) as i64);
            let mut converged = false;
            for _ in 0..self.max_iterations {
                let mut next = blocking + c_own * ((q - 1) as i64);
                for j in &hp {
                    next += j.wcet_serialized() * (self.interference_count(j, start) as i64);
                }
                if next <= start {
                    converged = true;
                    break;
                }
                start = next;
            }
            if !converged {
                return NpsTaskResult {
                    task: id,
                    wcrt: Time::MAX,
                    schedulable: false,
                    jobs_checked: q,
                };
            }
            let response = start + c_own - release;
            wcrt = wcrt.max(response);
            // Early exit: if already past the deadline, the verdict is
            // settled.
            if wcrt > deadline {
                return NpsTaskResult {
                    task: id,
                    wcrt,
                    schedulable: false,
                    jobs_checked: q,
                };
            }
        }
        NpsTaskResult {
            task: id,
            wcrt,
            schedulable: wcrt <= deadline,
            jobs_checked: num_jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;

    #[test]
    fn single_task_response_is_serialized_wcet() {
        let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 100, 0, false)]).unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(0));
        assert_eq!(r.wcrt, Time::from_ticks(15));
        assert!(r.schedulable);
    }

    #[test]
    fn highest_priority_task_suffers_blocking_only() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 0, 0, 100, 0, false),
            test_task(1, 50, 0, 0, 1_000, 1, false),
        ])
        .unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(0));
        // B = 50 - 1 = 49; R = 49 + 10 = 59.
        assert_eq!(r.wcrt, Time::from_ticks(59));
    }

    #[test]
    fn lower_priority_task_suffers_interference() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 0, 0, 100, 0, false),
            test_task(1, 50, 0, 0, 1_000, 1, false),
        ])
        .unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(1));
        // s = Σ η⁺(s)·10: s=10 → η⁺(10)=1... iterate: start=50? Let's
        // bound: one hp job fits before the 50-long job starts (start=10,
        // η⁺(10) = 1 → 10 ✓ fixed point). R = 10 + 50 = 60.
        assert_eq!(r.wcrt, Time::from_ticks(60));
        assert!(r.schedulable);
    }

    #[test]
    fn memory_phases_count_toward_demand() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 5, 5, 100, 0, false),
            test_task(1, 20, 10, 10, 400, 1, false),
        ])
        .unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(1));
        // hp C' = 20; own C' = 40. start: B=0; s = 20 (one hp job),
        // η⁺(20) = 1 → stable. R = 20 + 40 = 60.
        assert_eq!(r.wcrt, Time::from_ticks(60));
    }

    #[test]
    fn overload_is_flagged_unschedulable() {
        let set = TaskSet::new(vec![
            test_task(0, 60, 0, 0, 100, 0, false),
            test_task(1, 60, 0, 0, 100, 1, false),
        ])
        .unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(1));
        assert!(!r.schedulable);
    }

    #[test]
    fn multi_job_active_period_is_examined() {
        // High hp load keeps the level-i active period running across
        // several of τ_1's releases; all of them must be analyzed.
        let set = TaskSet::new(vec![
            test_task(0, 30, 0, 0, 60, 0, false),
            test_task(1, 20, 0, 0, 50, 1, false),
        ])
        .unwrap();
        let r = NpsAnalysis::default().analyze_task(&set, TaskId(1));
        assert!(
            r.jobs_checked >= 2,
            "active period should span several jobs, got {}",
            r.jobs_checked
        );
        // q=1: s = 30 (one hp job), R = 50 — exactly the deadline.
        assert_eq!(r.wcrt, Time::from_ticks(50));
        assert!(r.schedulable);
    }

    #[test]
    fn analyze_returns_priority_order() {
        let set = TaskSet::new(vec![
            test_task(5, 10, 0, 0, 100, 2, false),
            test_task(7, 10, 0, 0, 100, 0, false),
        ])
        .unwrap();
        let rs = NpsAnalysis::default().analyze(&set);
        assert_eq!(rs[0].task, TaskId(7));
        assert_eq!(rs[1].task, TaskId(5));
        assert!(NpsAnalysis::default().is_schedulable(&set));
    }
}
