//! Classical non-preemptive fixed-priority simulation (Figure 1(b)):
//! the DMA is unused and all three phases run serialized on the CPU.

use std::collections::VecDeque;

use pmcs_model::{JobId, Phase, TaskSet, Time};

use crate::release::ReleasePlan;
use crate::trace::{JobRecord, SimResult, TraceEvent, TraceUnit};

struct TaskRt {
    releases: VecDeque<Time>,
    next_index: u64,
    last_completion: Time,
    /// Activation time of the currently-ready (not yet started) job.
    ready: Option<(JobId, Time)>,
}

pub(crate) fn run(set: &TaskSet, plan: &ReleasePlan, horizon: Time) -> SimResult {
    let infos: Vec<_> = set.iter().collect();
    let mut rt: Vec<TaskRt> = infos
        .iter()
        .map(|t| TaskRt {
            releases: plan.releases(t.id()).iter().copied().collect(),
            next_index: 0,
            last_completion: Time::ZERO,
            ready: None,
        })
        .collect();

    let mut events = Vec::new();
    let mut jobs: Vec<JobRecord> = Vec::new();
    let mut now = Time::ZERO;

    loop {
        // Activate due releases.
        for (i, t) in rt.iter_mut().enumerate() {
            if t.ready.is_some() {
                continue;
            }
            if let Some(&r) = t.releases.front() {
                let activation = r.max(t.last_completion);
                if activation <= now {
                    t.releases.pop_front();
                    let job = JobId::new(infos[i].id(), t.next_index);
                    t.next_index += 1;
                    t.ready = Some((job, activation));
                    jobs.push(JobRecord {
                        job,
                        release: r,
                        activation,
                        absolute_deadline: r + infos[i].deadline(),
                        exec_start: None,
                        completion: None,
                    });
                }
            }
        }

        // Dispatch the highest-priority ready job, non-preemptively.
        let next = rt
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ready.is_some())
            .min_by_key(|(i, _)| infos[*i].priority())
            .map(|(i, _)| i);
        match next {
            Some(i) => {
                if now >= horizon {
                    break;
                }
                let (job, _) = rt[i].ready.take().expect("ready job");
                let (l, c, u) = (infos[i].copy_in(), infos[i].exec(), infos[i].copy_out());
                let phases = [
                    (Phase::CopyIn, now, now + l),
                    (Phase::Execute, now + l, now + l + c),
                    (Phase::CopyOut, now + l + c, now + l + c + u),
                ];
                for (phase, start, end) in phases {
                    events.push(TraceEvent {
                        start,
                        end,
                        unit: TraceUnit::Cpu,
                        job,
                        phase,
                        canceled: false,
                        interval: usize::MAX,
                    });
                }
                let completion = now + l + c + u;
                if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
                    r.exec_start = Some(now + l);
                    r.completion = Some(completion);
                }
                rt[i].last_completion = completion;
                now = completion;
            }
            None => {
                // Idle: jump to the next activation.
                let next_t = rt
                    .iter()
                    .filter(|t| t.ready.is_none())
                    .filter_map(|t| t.releases.front().map(|&r| r.max(t.last_completion)))
                    .min();
                match next_t {
                    Some(t) if t < horizon => now = now.max(t),
                    _ => break,
                }
            }
        }
    }

    jobs.sort_by_key(|j| (j.release, j.job));
    SimResult::new(events, jobs, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskId;

    fn simulate(
        tasks: Vec<pmcs_model::Task>,
        plan: Vec<(u32, Vec<i64>)>,
        horizon: i64,
    ) -> SimResult {
        let set = TaskSet::new(tasks).unwrap();
        let plan = ReleasePlan::from_pairs(
            plan.into_iter()
                .map(|(t, v)| {
                    (
                        TaskId(t),
                        v.into_iter().map(Time::from_ticks).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        crate::simulate(&set, &plan, Policy::Nps, Time::from_ticks(horizon))
    }

    #[test]
    fn phases_are_serialized_on_cpu() {
        let r = simulate(
            vec![test_task(0, 10, 3, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            1_000,
        );
        assert_eq!(r.events().len(), 3);
        assert!(r.events().iter().all(|e| e.unit == TraceUnit::Cpu));
        assert_eq!(r.jobs()[0].completion, Some(Time::from_ticks(15)));
        assert!(r.interval_starts().is_empty());
    }

    #[test]
    fn non_preemptive_blocking() {
        // lp τ1 starts at 0 (length 62); hp τ0 released at 1 must wait.
        let r = simulate(
            vec![
                test_task(0, 10, 1, 1, 1_000, 0, false),
                test_task(1, 60, 1, 1, 1_000, 1, false),
            ],
            vec![(0, vec![1]), (1, vec![0])],
            1_000,
        );
        let t0 = r.jobs().iter().find(|j| j.job.task() == TaskId(0)).unwrap();
        // τ1 occupies [0, 62); τ0 runs [62, 74).
        assert_eq!(t0.exec_start, Some(Time::from_ticks(63)));
        assert_eq!(t0.completion, Some(Time::from_ticks(74)));
    }

    #[test]
    fn priority_wins_at_simultaneous_release() {
        let r = simulate(
            vec![
                test_task(0, 10, 0, 0, 1_000, 0, false),
                test_task(1, 20, 0, 0, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            1_000,
        );
        let t0 = r.jobs().iter().find(|j| j.job.task() == TaskId(0)).unwrap();
        assert_eq!(t0.exec_start, Some(Time::ZERO));
    }

    #[test]
    fn deferred_activation_under_overload() {
        let r = simulate(
            vec![test_task(0, 30, 0, 0, 1_000, 0, false)],
            vec![(0, vec![0, 10, 20])],
            1_000,
        );
        let completions: Vec<_> = r.jobs().iter().map(|j| j.completion.unwrap()).collect();
        assert_eq!(
            completions,
            vec![
                Time::from_ticks(30),
                Time::from_ticks(60),
                Time::from_ticks(90)
            ]
        );
    }
}
