//! The event-driven simulation kernel shared by every scheduling policy.
//!
//! One loop implements the platform *mechanics* — release activation
//! under inter-job precedence, the two-partition local memory, DMA and
//! CPU event emission, idle jumps, the horizon cut — and consults a
//! [`ProtocolPolicy`] at each protocol *decision point*: CPU dispatch
//! (R5), copy-in target selection (R2), cancellation (R3), and urgent
//! promotion (R4). The paper's proposed protocol, the Wasly–Pellizzoni
//! baseline, and classical non-preemptive scheduling are all
//! parameterizations of this one loop (see [`crate::policy`]); their
//! traces share one format and one statistics pipeline.
//!
//! The kernel is exact on the integer `Time` tick grid and fully
//! deterministic: identical inputs produce byte-identical traces.

use std::collections::VecDeque;

use pmcs_model::{JobId, Phase, Task, TaskSet, Time};

use crate::policy::{CancelWindow, CpuAction, IntervalOutcome, ProtocolPolicy};
use crate::release::ReleasePlan;
use crate::trace::{JobRecord, SimResult, TraceEvent, TraceUnit};

/// What a local-memory partition currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartitionContent {
    Empty,
    /// Data of `job` loaded and ready for execution.
    Loaded(JobId, usize),
    /// Output of `job` awaiting copy-out.
    Output(JobId, usize),
}

/// Scheduling state of a task's in-flight job, visible to policies
/// through [`KernelView::job_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the ready queue (released, copy-in not started).
    Ready,
    /// Selected as urgent (R4); will be served by the CPU next interval.
    Urgent,
    /// DMA copy-in in progress.
    CopyingIn,
    /// Loaded in a partition, waiting to execute.
    Loaded,
    /// Executed; output waiting for (or undergoing) copy-out.
    AwaitingCopyOut,
}

#[derive(Debug)]
struct TaskRt {
    info: Task,
    /// Future plan releases not yet activated.
    releases: VecDeque<Time>,
    /// Sequence number for job ids.
    next_index: u64,
    /// Completion time of the last finished job (gates activation).
    last_completion: Time,
    /// The in-flight job, if any.
    current: Option<CurrentJob>,
}

#[derive(Debug, Clone, Copy)]
struct CurrentJob {
    job: JobId,
    /// When the job became visible to the scheduler
    /// (`max(release, previous completion)`).
    activation: Time,
    state: JobState,
}

/// Read-only snapshot of the kernel state offered to a
/// [`ProtocolPolicy`] at a decision point.
#[derive(Debug)]
pub struct KernelView<'a> {
    tasks: &'a [TaskRt],
    urgent: Option<usize>,
    cpu_loaded: Option<usize>,
    now: Time,
}

impl KernelView<'_> {
    /// Number of tasks in the simulated set.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Static parameters of task `i`.
    pub fn task(&self, i: usize) -> &Task {
        &self.tasks[i].info
    }

    /// Scheduling state of task `i`'s in-flight job (`None` if idle).
    pub fn job_state(&self, i: usize) -> Option<JobState> {
        self.tasks[i].current.map(|c| c.state)
    }

    /// Activation instant of task `i`'s in-flight job.
    pub fn activation(&self, i: usize) -> Option<Time> {
        self.tasks[i].current.map(|c| c.activation)
    }

    /// The task currently marked urgent (R4), if any.
    pub fn urgent(&self) -> Option<usize> {
        self.urgent
    }

    /// The task whose data is loaded in the CPU partition this slot.
    pub fn cpu_loaded(&self) -> Option<usize> {
        self.cpu_loaded
    }

    /// The decision instant (slot start).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Highest-priority task with a job in the ready queue.
    pub fn highest_priority_ready(&self) -> Option<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.current.is_some_and(|c| c.state == JobState::Ready))
            .min_by_key(|(_, t)| t.info.priority())
            .map(|(i, _)| i)
    }

    /// Activation instant of task `i`'s *next queued* release — the
    /// first plan release not yet turned into a job, deferred by
    /// inter-job precedence — or `None` if a job is already in flight or
    /// the plan is exhausted. This is what rule R3 watches for.
    pub fn pending_activation(&self, i: usize) -> Option<Time> {
        let t = &self.tasks[i];
        if t.current.is_some() {
            return None;
        }
        t.releases.front().map(|&r| r.max(t.last_completion))
    }
}

/// Runs `set` under `policy` with the given release plan until `horizon`
/// (scheduling slots starting at or after the horizon are not begun).
///
/// # Panics
///
/// Panics if the simulation fails to make progress (a policy decision
/// that advances neither the clock nor any job state).
pub fn run(
    set: &TaskSet,
    plan: &ReleasePlan,
    policy: &dyn ProtocolPolicy,
    horizon: Time,
) -> SimResult {
    let mut tasks: Vec<TaskRt> = set
        .iter()
        .map(|t| TaskRt {
            releases: plan.releases(t.id()).iter().copied().collect(),
            next_index: 0,
            last_completion: Time::ZERO,
            current: None,
            info: t.clone(),
        })
        .collect();

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut jobs: Vec<JobRecord> = Vec::new();
    let mut interval_starts: Vec<Time> = Vec::new();

    // Two partitions; indices 0/1. `cpu_part` is the partition assigned
    // to the CPU in the *current* interval. The serialized (no-DMA) mode
    // never touches them.
    let mut partitions = [PartitionContent::Empty, PartitionContent::Empty];
    let mut cpu_part = 0usize;
    let mut urgent: Option<usize> = None;

    let structured = policy.interval_structured();
    let mut now = Time::ZERO;
    let max_steps = 100_000_000u64;
    let mut steps = 0u64;

    loop {
        steps += 1;
        assert!(
            steps < max_steps,
            "simulation under policy {:?} failed to make progress at t={now}",
            policy.name()
        );

        activate(&mut tasks, &mut jobs, now);

        let work_pending = urgent.is_some()
            || partitions
                .iter()
                .any(|p| !matches!(p, PartitionContent::Empty))
            || tasks
                .iter()
                .any(|t| matches!(t.current.map(|c| c.state), Some(JobState::Ready)));
        if !work_pending {
            // System idle: jump to the next activation, if any.
            match next_activation(&tasks) {
                Some(t) if t < horizon => {
                    now = t;
                    continue;
                }
                _ => break,
            }
        }
        if now >= horizon {
            break;
        }

        // ----- Slot start: R1 partition swap (interval mode) -------------
        let k = if structured {
            interval_starts.push(now);
            cpu_part = 1 - cpu_part;
            interval_starts.len() - 1
        } else {
            usize::MAX
        };
        let dma_part = 1 - cpu_part;

        // ----- CPU side (R5) ---------------------------------------------
        let action = {
            let view = view(&tasks, urgent, partitions[cpu_part], now);
            policy.dispatch(&view)
        };
        let mut cpu_end = now;
        match action {
            CpuAction::Idle => {}
            CpuAction::ServeUrgent(ti) => {
                debug_assert_eq!(urgent, Some(ti), "dispatch must serve the promoted task");
                urgent = None;
                // Urgent: CPU performs copy-in then executes, sequentially.
                let job = tasks[ti]
                    .current
                    .unwrap_or_else(|| panic!("urgent task τ{ti} must have a job at t={now}"));
                debug_assert_eq!(job.state, JobState::Urgent);
                let l = tasks[ti].info.copy_in();
                let c = tasks[ti].info.exec();
                events.push(TraceEvent {
                    start: now,
                    end: now + l,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::CopyIn,
                    canceled: false,
                    interval: k,
                });
                events.push(TraceEvent {
                    start: now + l,
                    end: now + l + c,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                record_exec_start(&mut jobs, job.job, now + l);
                cpu_end = now + l + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                debug_assert_eq!(partitions[cpu_part], PartitionContent::Empty);
                partitions[cpu_part] = PartitionContent::Output(job.job, ti);
            }
            CpuAction::ExecuteLoaded(ti) => {
                let PartitionContent::Loaded(job, pi) = partitions[cpu_part] else {
                    panic!("dispatch chose ExecuteLoaded with no loaded partition at t={now}")
                };
                debug_assert_eq!(pi, ti, "dispatch must execute the loaded task");
                let c = tasks[ti].info.exec();
                events.push(TraceEvent {
                    start: now,
                    end: now + c,
                    unit: TraceUnit::Cpu,
                    job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                record_exec_start(&mut jobs, job, now);
                cpu_end = now + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                partitions[cpu_part] = PartitionContent::Output(job, ti);
            }
            CpuAction::ServeSerialized(ti) => {
                // Classical NPS service: copy-in, execution and copy-out
                // back to back on the CPU; the job completes on the spot.
                let job = tasks[ti].current.unwrap_or_else(|| {
                    panic!("serialized dispatch of τ{ti} needs a ready job at t={now}")
                });
                debug_assert_eq!(job.state, JobState::Ready);
                let (l, c, u) = (
                    tasks[ti].info.copy_in(),
                    tasks[ti].info.exec(),
                    tasks[ti].info.copy_out(),
                );
                let phases = [
                    (Phase::CopyIn, now, now + l),
                    (Phase::Execute, now + l, now + l + c),
                    (Phase::CopyOut, now + l + c, now + l + c + u),
                ];
                for (phase, start, end) in phases {
                    events.push(TraceEvent {
                        start,
                        end,
                        unit: TraceUnit::Cpu,
                        job: job.job,
                        phase,
                        canceled: false,
                        interval: k,
                    });
                }
                record_exec_start(&mut jobs, job.job, now + l);
                cpu_end = now + l + c + u;
                complete_job(&mut tasks[ti], &mut jobs, job.job, cpu_end);
            }
        }

        // ----- DMA side (R2, R3) -----------------------------------------
        // R2: the copy-in target is selected at the *beginning* of the
        // interval, among the tasks ready at that instant; the copy-in
        // itself runs after the (possible) copy-out.
        let target = {
            let view = view(&tasks, urgent, partitions[cpu_part], now);
            policy.copy_in_target(&view)
        };
        if let Some(ti) = target {
            set_state(&mut tasks[ti], JobState::CopyingIn);
        }

        let mut dma_t = now;
        if let PartitionContent::Output(job, ti) = partitions[dma_part] {
            let u = tasks[ti].info.copy_out();
            events.push(TraceEvent {
                start: dma_t,
                end: dma_t + u,
                unit: TraceUnit::Dma,
                job,
                phase: Phase::CopyOut,
                canceled: false,
                interval: k,
            });
            dma_t += u;
            partitions[dma_part] = PartitionContent::Empty;
            complete_job(&mut tasks[ti], &mut jobs, job, dma_t);
        }

        let mut copyin_canceled = false;
        let mut copyin_committed = false;
        if let Some(ti) = target {
            let job = tasks[ti]
                .current
                .unwrap_or_else(|| panic!("copy-in target τ{ti} must have a job at t={now}"));
            let start = dma_t;
            let full_end = start + tasks[ti].info.copy_in();
            // R3 guards the copy-in for the *whole interval* in which it
            // is scheduled, not just the transfer itself: a
            // higher-priority LS release before the transfer begins
            // cancels it with zero DMA progress; one during the transfer
            // aborts it mid-flight; one after the transfer but before the
            // interval ends discards the prefetched (not yet executing)
            // data — the full copy-in time was spent. The wide window is
            // what makes Property 4 hold: otherwise a release during the
            // preceding copy-out, or just after a short copy-in inside a
            // long interval, would slip past the rule and the task under
            // it would be blocked twice (the paper's proof of Property 4
            // case (i) assumes exactly this eviction semantics).
            let window = CancelWindow {
                interval_start: now,
                transfer_start: start,
                transfer_end: full_end,
                tentative_end: cpu_end.max(full_end),
            };
            let cancel_at = {
                let view = view(&tasks, urgent, partitions[cpu_part], now);
                policy
                    .cancel_copy_in(&view, ti, window)
                    .map(|rc| rc.clamp(start, full_end))
            };
            match cancel_at {
                Some(rc) => {
                    events.push(TraceEvent {
                        start,
                        end: rc,
                        unit: TraceUnit::Dma,
                        job: job.job,
                        phase: Phase::CopyIn,
                        canceled: true,
                        interval: k,
                    });
                    dma_t = rc;
                    set_state(&mut tasks[ti], JobState::Ready); // back in queue (R3)
                    copyin_canceled = true;
                    // Make the canceling release visible immediately.
                    activate(&mut tasks, &mut jobs, rc);
                }
                None => {
                    events.push(TraceEvent {
                        start,
                        end: full_end,
                        unit: TraceUnit::Dma,
                        job: job.job,
                        phase: Phase::CopyIn,
                        canceled: false,
                        interval: k,
                    });
                    dma_t = full_end;
                    set_state(&mut tasks[ti], JobState::Loaded);
                    debug_assert_eq!(partitions[dma_part], PartitionContent::Empty);
                    partitions[dma_part] = PartitionContent::Loaded(job.job, ti);
                    copyin_committed = true;
                }
            }
        }

        // ----- Slot end (R6) ----------------------------------------------
        let interval_end = cpu_end.max(dma_t);
        activate(&mut tasks, &mut jobs, interval_end);

        // ----- R4: urgent promotion ---------------------------------------
        let outcome = IntervalOutcome {
            start: now,
            end: interval_end,
            copy_in_canceled: copyin_canceled,
            copy_in_committed: copyin_committed,
        };
        let candidate = {
            let view = view(&tasks, urgent, partitions[cpu_part], now);
            policy.promote_urgent(&view, outcome)
        };
        if let Some(ti) = candidate {
            set_state(&mut tasks[ti], JobState::Urgent);
            urgent = Some(ti);
        }

        now = interval_end;
    }

    jobs.sort_by_key(|j| (j.release, j.job));
    SimResult::new(events, jobs, interval_starts)
}

/// Builds the read-only policy view of the current kernel state.
fn view(
    tasks: &[TaskRt],
    urgent: Option<usize>,
    cpu_partition: PartitionContent,
    now: Time,
) -> KernelView<'_> {
    KernelView {
        tasks,
        urgent,
        cpu_loaded: match cpu_partition {
            PartitionContent::Loaded(_, ti) => Some(ti),
            _ => None,
        },
        now,
    }
}

/// Moves due releases into the ready state (inter-job precedence: a job
/// activates at `max(release, previous completion)`).
fn activate(tasks: &mut [TaskRt], jobs: &mut Vec<JobRecord>, upto: Time) {
    for t in tasks.iter_mut() {
        if t.current.is_some() {
            continue;
        }
        let Some(&release) = t.releases.front() else {
            continue;
        };
        let activation = release.max(t.last_completion);
        if activation <= upto {
            t.releases.pop_front();
            let job = JobId::new(t.info.id(), t.next_index);
            t.next_index += 1;
            t.current = Some(CurrentJob {
                job,
                activation,
                state: JobState::Ready,
            });
            jobs.push(JobRecord {
                job,
                release,
                activation,
                absolute_deadline: release + t.info.deadline(),
                exec_start: None,
                completion: None,
            });
        }
    }
}

fn next_activation(tasks: &[TaskRt]) -> Option<Time> {
    tasks
        .iter()
        .filter(|t| t.current.is_none())
        .filter_map(|t| t.releases.front().map(|&r| r.max(t.last_completion)))
        .min()
}

fn set_state(task: &mut TaskRt, state: JobState) {
    if let Some(c) = task.current.as_mut() {
        c.state = state;
    }
}

fn record_exec_start(jobs: &mut [JobRecord], job: JobId, at: Time) {
    if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
        r.exec_start = Some(at);
    }
}

fn complete_job(task: &mut TaskRt, jobs: &mut [JobRecord], job: JobId, at: Time) {
    if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
        r.completion = Some(at);
    }
    task.last_completion = at;
    task.current = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskId;

    fn simulate(
        tasks: Vec<pmcs_model::Task>,
        plan: Vec<(u32, Vec<i64>)>,
        policy: Policy,
        horizon: i64,
    ) -> SimResult {
        let set = TaskSet::new(tasks).expect("valid test task set");
        let plan = ReleasePlan::from_pairs(
            plan.into_iter()
                .map(|(t, v)| {
                    (
                        TaskId(t),
                        v.into_iter().map(Time::from_ticks).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        crate::simulate(&set, &plan, policy, Time::from_ticks(horizon))
    }

    #[test]
    fn single_job_pipeline() {
        // One task, one job: copy-in (DMA), execute, copy-out.
        let r = simulate(
            vec![test_task(0, 10, 3, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let job = &r.jobs()[0];
        // I_0: DMA copy-in [0,3). I_1: exec [3,13). I_2: copy-out [13,15).
        assert_eq!(job.exec_start, Some(Time::from_ticks(3)));
        assert_eq!(job.completion, Some(Time::from_ticks(15)));
        assert_eq!(r.interval_starts().len(), 3);
    }

    #[test]
    fn dma_hides_copy_phases_of_back_to_back_jobs() {
        // Two tasks with long copies: under the protocol, copies of the
        // second task overlap the execution of the first.
        let r = simulate(
            vec![
                test_task(0, 10, 5, 5, 1_000, 0, false),
                test_task(1, 10, 5, 5, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        // I_0: copy-in τ0 [0,5). I_1: exec τ0 [5,15) ∥ copy-in τ1 [5,10).
        // I_2: exec τ1 [15,25) ∥ copy-out τ0 [15,20).
        // I_3: copy-out τ1 [25,30).
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        let t1 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(1))
            .expect("τ1 record");
        assert_eq!(t0.completion, Some(Time::from_ticks(20)));
        assert_eq!(t1.exec_start, Some(Time::from_ticks(15)));
        assert_eq!(t1.completion, Some(Time::from_ticks(30)));
    }

    #[test]
    fn wp_policy_never_cancels() {
        // An LS task arriving during an lp copy-in: WP ignores it.
        let r = simulate(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, true),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![5]), (1, vec![0])],
            Policy::WaslyPellizzoni,
            1_000,
        );
        assert!(r.events().iter().all(|e| !e.canceled));
    }

    #[test]
    fn proposed_policy_cancels_for_ls_release() {
        // τ1 (lp, copy-in 10 ticks) starts loading at t=0; LS τ0 released
        // at t=5 cancels it (R3), becomes urgent (R4), and executes with a
        // CPU copy-in in the next interval (R5).
        let r = simulate(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, true),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![5]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let cancel = r
            .events()
            .iter()
            .find(|e| e.canceled)
            .expect("a cancellation");
        assert_eq!(cancel.job.task(), TaskId(1));
        assert_eq!(cancel.end, Time::from_ticks(5));
        // Urgent CPU copy-in of τ0 right at the next interval.
        let cpu_copyin = r
            .events()
            .iter()
            .find(|e| e.unit == TraceUnit::Cpu && e.phase == Phase::CopyIn)
            .expect("urgent CPU copy-in");
        assert_eq!(cpu_copyin.job.task(), TaskId(0));
        assert_eq!(cpu_copyin.start, Time::from_ticks(5));
        // τ0 executes at 5+4=9, completes copy-out after τ1 etc.
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        assert_eq!(t0.exec_start, Some(Time::from_ticks(9)));
    }

    #[test]
    fn priority_order_drives_copy_in_selection() {
        // Both ready at t=0: higher-priority τ0 is loaded first.
        let r = simulate(
            vec![
                test_task(0, 10, 2, 1, 1_000, 0, false),
                test_task(1, 10, 2, 1, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let first_copyin = r
            .events()
            .iter()
            .find(|e| e.phase == Phase::CopyIn)
            .expect("a copy-in event");
        assert_eq!(first_copyin.job.task(), TaskId(0));
    }

    #[test]
    fn inter_job_precedence_defers_activation() {
        // Period shorter than response: second release waits for first
        // completion.
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 1])],
            Policy::Proposed,
            1_000,
        );
        let j0 = r.job(JobId::new(TaskId(0), 0)).expect("first job recorded");
        let j1 = r
            .job(JobId::new(TaskId(0), 1))
            .expect("second job recorded");
        let c0 = j0.completion.expect("first job completes");
        // Second job's copy-in cannot start before first completes.
        let second_copyin = r
            .events()
            .iter()
            .find(|e| e.job == j1.job && e.phase == Phase::CopyIn)
            .expect("second copy-in event");
        assert!(second_copyin.start >= c0);
    }

    #[test]
    fn idle_gap_resets_intervals() {
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 500])],
            Policy::Proposed,
            1_000,
        );
        // Two separate interval bursts of 3 intervals each.
        assert_eq!(r.interval_starts().len(), 6);
        assert_eq!(r.interval_starts()[3], Time::from_ticks(500));
    }

    #[test]
    fn horizon_cuts_new_intervals() {
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 500])],
            Policy::Proposed,
            400,
        );
        // Second burst never starts.
        assert_eq!(r.interval_starts().len(), 3);
        assert_eq!(r.jobs().len(), 1);
    }

    // --- serialized (NPS) mode through the same kernel -------------------

    #[test]
    fn phases_are_serialized_on_cpu() {
        let r = simulate(
            vec![test_task(0, 10, 3, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            Policy::Nps,
            1_000,
        );
        assert_eq!(r.events().len(), 3);
        assert!(r.events().iter().all(|e| e.unit == TraceUnit::Cpu));
        assert!(r.events().iter().all(|e| e.interval == usize::MAX));
        assert_eq!(r.jobs()[0].completion, Some(Time::from_ticks(15)));
        assert!(r.interval_starts().is_empty());
    }

    #[test]
    fn non_preemptive_blocking() {
        // lp τ1 starts at 0 (length 62); hp τ0 released at 1 must wait.
        let r = simulate(
            vec![
                test_task(0, 10, 1, 1, 1_000, 0, false),
                test_task(1, 60, 1, 1, 1_000, 1, false),
            ],
            vec![(0, vec![1]), (1, vec![0])],
            Policy::Nps,
            1_000,
        );
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        // τ1 occupies [0, 62); τ0 runs [62, 74).
        assert_eq!(t0.exec_start, Some(Time::from_ticks(63)));
        assert_eq!(t0.completion, Some(Time::from_ticks(74)));
    }

    #[test]
    fn priority_wins_at_simultaneous_release() {
        let r = simulate(
            vec![
                test_task(0, 10, 0, 0, 1_000, 0, false),
                test_task(1, 20, 0, 0, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Nps,
            1_000,
        );
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        assert_eq!(t0.exec_start, Some(Time::ZERO));
    }

    #[test]
    fn deferred_activation_under_overload() {
        let r = simulate(
            vec![test_task(0, 30, 0, 0, 1_000, 0, false)],
            vec![(0, vec![0, 10, 20])],
            Policy::Nps,
            1_000,
        );
        let completions: Vec<_> = r
            .jobs()
            .iter()
            .map(|j| j.completion.expect("job completes within horizon"))
            .collect();
        assert_eq!(
            completions,
            vec![
                Time::from_ticks(30),
                Time::from_ticks(60),
                Time::from_ticks(90)
            ]
        );
    }

    #[test]
    fn simulate_with_accepts_any_policy() {
        let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 1_000, 0, false)])
            .expect("valid test task set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(100));
        let via_enum = crate::simulate(&set, &plan, Policy::Proposed, Time::from_ticks(100));
        let via_trait =
            crate::simulate_with(&set, &plan, &crate::policy::Proposed, Time::from_ticks(100));
        assert_eq!(via_enum, via_trait);
    }
}
