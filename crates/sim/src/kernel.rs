//! The event-driven simulation kernel shared by every scheduling policy.
//!
//! One loop implements the platform *mechanics* — release activation
//! under inter-job precedence, the two-partition local memory, DMA and
//! CPU event emission, idle jumps, the horizon cut — and consults a
//! [`ProtocolPolicy`] at each protocol *decision point*: CPU dispatch
//! (R5), copy-in target selection (R2), cancellation (R3), and urgent
//! promotion (R4). The paper's proposed protocol, the Wasly–Pellizzoni
//! baseline, and classical non-preemptive scheduling are all
//! parameterizations of this one loop (see [`crate::policy`]); their
//! traces share one format and one statistics pipeline.
//!
//! The kernel is exact on the integer `Time` tick grid and fully
//! deterministic: identical inputs produce byte-identical traces.
//!
//! ## Workspaces
//!
//! All per-run storage lives in a [`SimWorkspace`]: pooled event, job
//! and interval buffers, the runtime task table, and a flat release
//! queue. Buffers are *cleared, not reallocated* between runs, and the
//! static task parameters are *borrowed* from the [`TaskSet`] rather
//! than cloned into the job table, so a reused workspace reaches a
//! steady state with zero allocation per simulated plan. [`run`] is a
//! thin wrapper that spins up a fresh workspace per call (the historical
//! allocating path); Monte-Carlo drivers call [`run_into`] — or
//! [`run_streaming`], which skips trace materialization entirely and
//! folds worst-observed response times per task on the fly.

use pmcs_model::{JobId, Phase, Task, TaskSet, Time};

use crate::policy::{CancelWindow, CpuAction, IntervalOutcome, ProtocolPolicy};
use crate::release::ReleasePlan;
use crate::trace::{JobRecord, SimResult, TraceEvent, TraceRef, TraceUnit};

/// What a local-memory partition currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartitionContent {
    Empty,
    /// Data of `job` loaded and ready for execution.
    Loaded(JobId, usize),
    /// Output of `job` awaiting copy-out.
    Output(JobId, usize),
}

/// Scheduling state of a task's in-flight job, visible to policies
/// through [`KernelView::job_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the ready queue (released, copy-in not started).
    Ready,
    /// Selected as urgent (R4); will be served by the CPU next interval.
    Urgent,
    /// DMA copy-in in progress.
    CopyingIn,
    /// Loaded in a partition, waiting to execute.
    Loaded,
    /// Executed; output waiting for (or undergoing) copy-out.
    AwaitingCopyOut,
}

/// Per-task runtime state. Static task parameters are *not* duplicated
/// here — the kernel borrows them from the [`TaskSet`] — and the release
/// queue is a cursor range into the workspace's flat release buffer, so
/// this struct is plain data that a reused workspace recycles for free.
#[derive(Debug, Clone, Copy)]
struct TaskRt {
    /// Index of the next unactivated plan release in
    /// [`SimWorkspace::releases`].
    rel_cursor: usize,
    /// One past the last release belonging to this task.
    rel_end: usize,
    /// Sequence number for job ids.
    next_index: u64,
    /// Completion time of the last finished job (gates activation).
    last_completion: Time,
    /// The in-flight job, if any.
    current: Option<CurrentJob>,
}

#[derive(Debug, Clone, Copy)]
struct CurrentJob {
    job: JobId,
    /// Plan release instant (response times are measured from here).
    release: Time,
    /// When the job became visible to the scheduler
    /// (`max(release, previous completion)`).
    activation: Time,
    /// Absolute deadline (`release + D`).
    deadline: Time,
    /// Recorder handle of the job's [`JobRecord`] (`usize::MAX` in
    /// streaming mode, which materializes no records).
    rec: usize,
    state: JobState,
}

/// Read-only snapshot of the kernel state offered to a
/// [`ProtocolPolicy`] at a decision point.
#[derive(Debug)]
pub struct KernelView<'a> {
    infos: &'a [Task],
    tasks: &'a [TaskRt],
    releases: &'a [Time],
    urgent: Option<usize>,
    cpu_loaded: Option<usize>,
    now: Time,
}

impl KernelView<'_> {
    /// Number of tasks in the simulated set.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Static parameters of task `i` (borrowed from the task set).
    pub fn task(&self, i: usize) -> &Task {
        &self.infos[i]
    }

    /// Scheduling state of task `i`'s in-flight job (`None` if idle).
    pub fn job_state(&self, i: usize) -> Option<JobState> {
        self.tasks[i].current.map(|c| c.state)
    }

    /// Activation instant of task `i`'s in-flight job.
    pub fn activation(&self, i: usize) -> Option<Time> {
        self.tasks[i].current.map(|c| c.activation)
    }

    /// The task currently marked urgent (R4), if any.
    pub fn urgent(&self) -> Option<usize> {
        self.urgent
    }

    /// The task whose data is loaded in the CPU partition this slot.
    pub fn cpu_loaded(&self) -> Option<usize> {
        self.cpu_loaded
    }

    /// The decision instant (slot start).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Highest-priority task with a job in the ready queue.
    pub fn highest_priority_ready(&self) -> Option<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.current.is_some_and(|c| c.state == JobState::Ready))
            .min_by_key(|(i, _)| self.infos[*i].priority())
            .map(|(i, _)| i)
    }

    /// Activation instant of task `i`'s *next queued* release — the
    /// first plan release not yet turned into a job, deferred by
    /// inter-job precedence — or `None` if a job is already in flight or
    /// the plan is exhausted. This is what rule R3 watches for.
    pub fn pending_activation(&self, i: usize) -> Option<Time> {
        let t = &self.tasks[i];
        if t.current.is_some() || t.rel_cursor == t.rel_end {
            return None;
        }
        Some(self.releases[t.rel_cursor].max(t.last_completion))
    }
}

/// Streaming per-task statistics folded by [`run_streaming`] without
/// materializing the trace: worst-observed response time, release,
/// completion and deadline-miss counts per task (indexed by task
/// position in the set), plus the number of scheduling intervals.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    worst: Vec<Option<Time>>,
    released: Vec<u64>,
    completed: Vec<u64>,
    misses: Vec<u64>,
    intervals: u64,
}

impl StreamStats {
    fn reset(&mut self, n: usize) {
        self.worst.clear();
        self.worst.resize(n, None);
        self.released.clear();
        self.released.resize(n, 0);
        self.completed.clear();
        self.completed.resize(n, 0);
        self.misses.clear();
        self.misses.resize(n, 0);
        self.intervals = 0;
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.worst.len()
    }

    /// `true` iff no tasks are covered.
    pub fn is_empty(&self) -> bool {
        self.worst.is_empty()
    }

    /// Worst observed response time of the task at set position `i`
    /// (`None` if no job of the task completed).
    pub fn worst_response(&self, i: usize) -> Option<Time> {
        self.worst[i]
    }

    /// Jobs of task `i` activated within the horizon.
    pub fn released(&self, i: usize) -> u64 {
        self.released[i]
    }

    /// Jobs of task `i` that completed within the horizon.
    pub fn completed(&self, i: usize) -> u64 {
        self.completed[i]
    }

    /// Completed jobs of task `i` that finished after their deadline.
    pub fn deadline_misses(&self, i: usize) -> u64 {
        self.misses[i]
    }

    /// Total completed jobs that finished after their deadline.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Number of scheduling intervals begun (0 under NPS).
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

/// Reusable simulation storage: pooled trace buffers, the runtime task
/// table, a flat release queue, and streaming statistics. Create once,
/// pass to [`run_into`]/[`run_streaming`] many times — every buffer is
/// cleared (capacity retained) at the start of each run, so steady-state
/// simulation allocates nothing.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    events: Vec<TraceEvent>,
    jobs: Vec<JobRecord>,
    interval_starts: Vec<Time>,
    tasks: Vec<TaskRt>,
    releases: Vec<Time>,
    stream: StreamStats,
    runs: u64,
}

impl SimWorkspace {
    /// An empty workspace (no buffers allocated yet).
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Number of simulation runs this workspace has hosted.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of runs that *reused* previously allocated buffers
    /// (all but the first).
    pub fn reuses(&self) -> u64 {
        self.runs.saturating_sub(1)
    }

    /// Borrowed view of the last traced run's buffers.
    pub fn trace(&self) -> TraceRef<'_> {
        TraceRef::new(&self.events, &self.jobs, &self.interval_starts)
    }

    /// Streaming statistics of the last [`run_streaming`] call.
    pub fn stream_stats(&self) -> &StreamStats {
        &self.stream
    }

    /// Moves the last traced run's buffers out into an owned
    /// [`SimResult`], leaving this workspace empty (but reusable).
    pub fn take_result(&mut self) -> SimResult {
        SimResult::new(
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.jobs),
            std::mem::take(&mut self.interval_starts),
        )
    }

    /// Clears all buffers (retaining capacity) and rebuilds the runtime
    /// task table for `set` with `plan`'s releases.
    fn begin(&mut self, set: &TaskSet, plan: &ReleasePlan) {
        self.runs += 1;
        self.events.clear();
        self.jobs.clear();
        self.interval_starts.clear();
        self.releases.clear();
        self.tasks.clear();
        for t in set.tasks() {
            let start = self.releases.len();
            self.releases.extend_from_slice(plan.releases(t.id()));
            self.tasks.push(TaskRt {
                rel_cursor: start,
                rel_end: self.releases.len(),
                next_index: 0,
                last_completion: Time::ZERO,
                current: None,
            });
        }
    }
}

/// Sink for what the kernel observes while simulating. The traced
/// recorder materializes the full trace into workspace buffers; the
/// streaming recorder folds per-task statistics and drops everything
/// else. Both see identical callbacks in identical order, which is what
/// the dirty-workspace equivalence proptests pin down.
trait Recorder {
    /// A new scheduling interval begins at `t`; returns its index.
    fn interval_start(&mut self, t: Time) -> usize;
    /// A CPU or DMA operation was performed.
    fn event(&mut self, e: TraceEvent);
    /// A job was activated; returns the recorder's handle for it.
    fn activated(
        &mut self,
        ti: usize,
        job: JobId,
        release: Time,
        activation: Time,
        absolute_deadline: Time,
    ) -> usize;
    /// The job behind handle `rec` started executing at `at`.
    fn exec_start(&mut self, rec: usize, at: Time);
    /// The job behind handle `rec` completed (end of copy-out) at `at`.
    fn completed(&mut self, ti: usize, rec: usize, release: Time, deadline: Time, at: Time);
}

struct TraceRecorder<'w> {
    events: &'w mut Vec<TraceEvent>,
    jobs: &'w mut Vec<JobRecord>,
    interval_starts: &'w mut Vec<Time>,
}

impl Recorder for TraceRecorder<'_> {
    fn interval_start(&mut self, t: Time) -> usize {
        self.interval_starts.push(t);
        self.interval_starts.len() - 1
    }

    fn event(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    fn activated(
        &mut self,
        _ti: usize,
        job: JobId,
        release: Time,
        activation: Time,
        absolute_deadline: Time,
    ) -> usize {
        self.jobs.push(JobRecord {
            job,
            release,
            activation,
            absolute_deadline,
            exec_start: None,
            completion: None,
        });
        self.jobs.len() - 1
    }

    fn exec_start(&mut self, rec: usize, at: Time) {
        self.jobs[rec].exec_start = Some(at);
    }

    fn completed(&mut self, _ti: usize, rec: usize, _release: Time, _deadline: Time, at: Time) {
        self.jobs[rec].completion = Some(at);
    }
}

struct StreamRecorder<'w, F: FnMut(usize, Time)> {
    stats: &'w mut StreamStats,
    on_response: F,
}

impl<F: FnMut(usize, Time)> Recorder for StreamRecorder<'_, F> {
    fn interval_start(&mut self, _t: Time) -> usize {
        self.stats.intervals += 1;
        (self.stats.intervals - 1) as usize
    }

    fn event(&mut self, _e: TraceEvent) {}

    fn activated(
        &mut self,
        ti: usize,
        _job: JobId,
        _release: Time,
        _activation: Time,
        _absolute_deadline: Time,
    ) -> usize {
        self.stats.released[ti] += 1;
        usize::MAX
    }

    fn exec_start(&mut self, _rec: usize, _at: Time) {}

    fn completed(&mut self, ti: usize, _rec: usize, release: Time, deadline: Time, at: Time) {
        let response = at - release;
        let worst = &mut self.stats.worst[ti];
        if worst.is_none_or(|w| response > w) {
            *worst = Some(response);
        }
        self.stats.completed[ti] += 1;
        if at > deadline {
            self.stats.misses[ti] += 1;
        }
        (self.on_response)(ti, response);
    }
}

/// Runs `set` under `policy` with the given release plan until `horizon`
/// (scheduling slots starting at or after the horizon are not begun).
///
/// This is the fresh-workspace convenience wrapper: it allocates a
/// [`SimWorkspace`] per call. Hot loops should hold a workspace and call
/// [`run_into`] or [`run_streaming`] instead.
///
/// # Panics
///
/// Panics if the simulation fails to make progress (a policy decision
/// that advances neither the clock nor any job state).
pub fn run(
    set: &TaskSet,
    plan: &ReleasePlan,
    policy: &dyn ProtocolPolicy,
    horizon: Time,
) -> SimResult {
    let mut ws = SimWorkspace::new();
    run_into(set, plan, policy, horizon, &mut ws);
    ws.take_result()
}

/// Runs `set` under `policy` into a caller-owned [`SimWorkspace`],
/// returning a borrowed view of the produced trace. Identical inputs
/// produce byte-identical traces regardless of what the workspace held
/// before the call.
///
/// # Panics
///
/// Panics if the simulation fails to make progress.
pub fn run_into<'w>(
    set: &TaskSet,
    plan: &ReleasePlan,
    policy: &dyn ProtocolPolicy,
    horizon: Time,
    ws: &'w mut SimWorkspace,
) -> TraceRef<'w> {
    ws.begin(set, plan);
    {
        let mut rec = TraceRecorder {
            events: &mut ws.events,
            jobs: &mut ws.jobs,
            interval_starts: &mut ws.interval_starts,
        };
        run_kernel(
            set.tasks(),
            &mut ws.tasks,
            &ws.releases,
            policy,
            horizon,
            &mut rec,
        );
    }
    ws.jobs.sort_by_key(|j| (j.release, j.job));
    ws.trace()
}

/// Runs `set` under `policy` in streaming mode: no trace is
/// materialized; per-task worst responses, counts and deadline misses
/// are folded into the workspace's [`StreamStats`], and `on_response`
/// is invoked once per completed job with `(task_index, response)` —
/// the hook campaign drivers use to fold response-time histograms.
///
/// # Panics
///
/// Panics if the simulation fails to make progress.
pub fn run_streaming<'w, F>(
    set: &TaskSet,
    plan: &ReleasePlan,
    policy: &dyn ProtocolPolicy,
    horizon: Time,
    ws: &'w mut SimWorkspace,
    on_response: F,
) -> &'w StreamStats
where
    F: FnMut(usize, Time),
{
    ws.begin(set, plan);
    ws.stream.reset(set.len());
    {
        let mut rec = StreamRecorder {
            stats: &mut ws.stream,
            on_response,
        };
        run_kernel(
            set.tasks(),
            &mut ws.tasks,
            &ws.releases,
            policy,
            horizon,
            &mut rec,
        );
    }
    &ws.stream
}

/// The shared kernel loop, generic over the recording sink.
fn run_kernel<R: Recorder>(
    infos: &[Task],
    tasks: &mut [TaskRt],
    releases: &[Time],
    policy: &dyn ProtocolPolicy,
    horizon: Time,
    rec: &mut R,
) {
    // Two partitions; indices 0/1. `cpu_part` is the partition assigned
    // to the CPU in the *current* interval. The serialized (no-DMA) mode
    // never touches them.
    let mut partitions = [PartitionContent::Empty, PartitionContent::Empty];
    let mut cpu_part = 0usize;
    let mut urgent: Option<usize> = None;

    let structured = policy.interval_structured();
    let mut now = Time::ZERO;
    let max_steps = 100_000_000u64;
    let mut steps = 0u64;

    loop {
        steps += 1;
        assert!(
            steps < max_steps,
            "simulation under policy {:?} failed to make progress at t={now}",
            policy.name()
        );

        activate(infos, tasks, releases, rec, now);

        let work_pending = urgent.is_some()
            || partitions
                .iter()
                .any(|p| !matches!(p, PartitionContent::Empty))
            || tasks
                .iter()
                .any(|t| matches!(t.current.map(|c| c.state), Some(JobState::Ready)));
        if !work_pending {
            // System idle: jump to the next activation, if any.
            match next_activation(tasks, releases) {
                Some(t) if t < horizon => {
                    now = t;
                    continue;
                }
                _ => break,
            }
        }
        if now >= horizon {
            break;
        }

        // ----- Slot start: R1 partition swap (interval mode) -------------
        let k = if structured {
            cpu_part = 1 - cpu_part;
            rec.interval_start(now)
        } else {
            usize::MAX
        };
        let dma_part = 1 - cpu_part;

        // ----- CPU side (R5) ---------------------------------------------
        let action = {
            let view = view(infos, tasks, releases, urgent, partitions[cpu_part], now);
            policy.dispatch(&view)
        };
        let mut cpu_end = now;
        match action {
            CpuAction::Idle => {}
            CpuAction::ServeUrgent(ti) => {
                debug_assert_eq!(urgent, Some(ti), "dispatch must serve the promoted task");
                urgent = None;
                // Urgent: CPU performs copy-in then executes, sequentially.
                let job = tasks[ti]
                    .current
                    .unwrap_or_else(|| panic!("urgent task τ{ti} must have a job at t={now}"));
                debug_assert_eq!(job.state, JobState::Urgent);
                let l = infos[ti].copy_in();
                let c = infos[ti].exec();
                rec.event(TraceEvent {
                    start: now,
                    end: now + l,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::CopyIn,
                    canceled: false,
                    interval: k,
                });
                rec.event(TraceEvent {
                    start: now + l,
                    end: now + l + c,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                rec.exec_start(job.rec, now + l);
                cpu_end = now + l + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                debug_assert_eq!(partitions[cpu_part], PartitionContent::Empty);
                partitions[cpu_part] = PartitionContent::Output(job.job, ti);
            }
            CpuAction::ExecuteLoaded(ti) => {
                let PartitionContent::Loaded(job, pi) = partitions[cpu_part] else {
                    panic!("dispatch chose ExecuteLoaded with no loaded partition at t={now}")
                };
                debug_assert_eq!(pi, ti, "dispatch must execute the loaded task");
                let c = infos[ti].exec();
                rec.event(TraceEvent {
                    start: now,
                    end: now + c,
                    unit: TraceUnit::Cpu,
                    job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                if let Some(cur) = tasks[ti].current {
                    rec.exec_start(cur.rec, now);
                }
                cpu_end = now + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                partitions[cpu_part] = PartitionContent::Output(job, ti);
            }
            CpuAction::ServeSerialized(ti) => {
                // Classical NPS service: copy-in, execution and copy-out
                // back to back on the CPU; the job completes on the spot.
                let job = tasks[ti].current.unwrap_or_else(|| {
                    panic!("serialized dispatch of τ{ti} needs a ready job at t={now}")
                });
                debug_assert_eq!(job.state, JobState::Ready);
                let (l, c, u) = (infos[ti].copy_in(), infos[ti].exec(), infos[ti].copy_out());
                let phases = [
                    (Phase::CopyIn, now, now + l),
                    (Phase::Execute, now + l, now + l + c),
                    (Phase::CopyOut, now + l + c, now + l + c + u),
                ];
                for (phase, start, end) in phases {
                    rec.event(TraceEvent {
                        start,
                        end,
                        unit: TraceUnit::Cpu,
                        job: job.job,
                        phase,
                        canceled: false,
                        interval: k,
                    });
                }
                rec.exec_start(job.rec, now + l);
                cpu_end = now + l + c + u;
                complete_job(&mut tasks[ti], rec, ti, cpu_end);
            }
        }

        // ----- DMA side (R2, R3) -----------------------------------------
        // R2: the copy-in target is selected at the *beginning* of the
        // interval, among the tasks ready at that instant; the copy-in
        // itself runs after the (possible) copy-out.
        let target = {
            let view = view(infos, tasks, releases, urgent, partitions[cpu_part], now);
            policy.copy_in_target(&view)
        };
        if let Some(ti) = target {
            set_state(&mut tasks[ti], JobState::CopyingIn);
        }

        let mut dma_t = now;
        if let PartitionContent::Output(job, ti) = partitions[dma_part] {
            let u = infos[ti].copy_out();
            rec.event(TraceEvent {
                start: dma_t,
                end: dma_t + u,
                unit: TraceUnit::Dma,
                job,
                phase: Phase::CopyOut,
                canceled: false,
                interval: k,
            });
            dma_t += u;
            partitions[dma_part] = PartitionContent::Empty;
            complete_job(&mut tasks[ti], rec, ti, dma_t);
        }

        let mut copyin_canceled = false;
        let mut copyin_committed = false;
        if let Some(ti) = target {
            let job = tasks[ti]
                .current
                .unwrap_or_else(|| panic!("copy-in target τ{ti} must have a job at t={now}"));
            let start = dma_t;
            let full_end = start + infos[ti].copy_in();
            // R3 guards the copy-in for the *whole interval* in which it
            // is scheduled, not just the transfer itself: a
            // higher-priority LS release before the transfer begins
            // cancels it with zero DMA progress; one during the transfer
            // aborts it mid-flight; one after the transfer but before the
            // interval ends discards the prefetched (not yet executing)
            // data — the full copy-in time was spent. The wide window is
            // what makes Property 4 hold: otherwise a release during the
            // preceding copy-out, or just after a short copy-in inside a
            // long interval, would slip past the rule and the task under
            // it would be blocked twice (the paper's proof of Property 4
            // case (i) assumes exactly this eviction semantics).
            let window = CancelWindow {
                interval_start: now,
                transfer_start: start,
                transfer_end: full_end,
                tentative_end: cpu_end.max(full_end),
            };
            let cancel_at = {
                let view = view(infos, tasks, releases, urgent, partitions[cpu_part], now);
                policy
                    .cancel_copy_in(&view, ti, window)
                    .map(|rc| rc.clamp(start, full_end))
            };
            match cancel_at {
                Some(rc) => {
                    rec.event(TraceEvent {
                        start,
                        end: rc,
                        unit: TraceUnit::Dma,
                        job: job.job,
                        phase: Phase::CopyIn,
                        canceled: true,
                        interval: k,
                    });
                    dma_t = rc;
                    set_state(&mut tasks[ti], JobState::Ready); // back in queue (R3)
                    copyin_canceled = true;
                    // Make the canceling release visible immediately.
                    activate(infos, tasks, releases, rec, rc);
                }
                None => {
                    rec.event(TraceEvent {
                        start,
                        end: full_end,
                        unit: TraceUnit::Dma,
                        job: job.job,
                        phase: Phase::CopyIn,
                        canceled: false,
                        interval: k,
                    });
                    dma_t = full_end;
                    set_state(&mut tasks[ti], JobState::Loaded);
                    debug_assert_eq!(partitions[dma_part], PartitionContent::Empty);
                    partitions[dma_part] = PartitionContent::Loaded(job.job, ti);
                    copyin_committed = true;
                }
            }
        }

        // ----- Slot end (R6) ----------------------------------------------
        let interval_end = cpu_end.max(dma_t);
        activate(infos, tasks, releases, rec, interval_end);

        // ----- R4: urgent promotion ---------------------------------------
        let outcome = IntervalOutcome {
            start: now,
            end: interval_end,
            copy_in_canceled: copyin_canceled,
            copy_in_committed: copyin_committed,
        };
        let candidate = {
            let view = view(infos, tasks, releases, urgent, partitions[cpu_part], now);
            policy.promote_urgent(&view, outcome)
        };
        if let Some(ti) = candidate {
            set_state(&mut tasks[ti], JobState::Urgent);
            urgent = Some(ti);
        }

        now = interval_end;
    }
}

/// Builds the read-only policy view of the current kernel state.
fn view<'a>(
    infos: &'a [Task],
    tasks: &'a [TaskRt],
    releases: &'a [Time],
    urgent: Option<usize>,
    cpu_partition: PartitionContent,
    now: Time,
) -> KernelView<'a> {
    KernelView {
        infos,
        tasks,
        releases,
        urgent,
        cpu_loaded: match cpu_partition {
            PartitionContent::Loaded(_, ti) => Some(ti),
            _ => None,
        },
        now,
    }
}

/// Moves due releases into the ready state (inter-job precedence: a job
/// activates at `max(release, previous completion)`).
fn activate<R: Recorder>(
    infos: &[Task],
    tasks: &mut [TaskRt],
    releases: &[Time],
    rec: &mut R,
    upto: Time,
) {
    for (ti, t) in tasks.iter_mut().enumerate() {
        if t.current.is_some() || t.rel_cursor == t.rel_end {
            continue;
        }
        let release = releases[t.rel_cursor];
        let activation = release.max(t.last_completion);
        if activation <= upto {
            t.rel_cursor += 1;
            let job = JobId::new(infos[ti].id(), t.next_index);
            t.next_index += 1;
            let deadline = release + infos[ti].deadline();
            let handle = rec.activated(ti, job, release, activation, deadline);
            t.current = Some(CurrentJob {
                job,
                release,
                activation,
                deadline,
                rec: handle,
                state: JobState::Ready,
            });
        }
    }
}

fn next_activation(tasks: &[TaskRt], releases: &[Time]) -> Option<Time> {
    tasks
        .iter()
        .filter(|t| t.current.is_none() && t.rel_cursor != t.rel_end)
        .map(|t| releases[t.rel_cursor].max(t.last_completion))
        .min()
}

fn set_state(task: &mut TaskRt, state: JobState) {
    if let Some(c) = task.current.as_mut() {
        c.state = state;
    }
}

/// Finishes the task's in-flight job at `at` and clears it.
fn complete_job<R: Recorder>(task: &mut TaskRt, rec: &mut R, ti: usize, at: Time) {
    if let Some(c) = task.current {
        rec.completed(ti, c.rec, c.release, c.deadline, at);
    }
    task.last_completion = at;
    task.current = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskId;

    fn simulate(
        tasks: Vec<pmcs_model::Task>,
        plan: Vec<(u32, Vec<i64>)>,
        policy: Policy,
        horizon: i64,
    ) -> SimResult {
        let set = TaskSet::new(tasks).expect("valid test task set");
        let plan = ReleasePlan::from_pairs(
            plan.into_iter()
                .map(|(t, v)| {
                    (
                        TaskId(t),
                        v.into_iter().map(Time::from_ticks).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        crate::simulate(&set, &plan, policy, Time::from_ticks(horizon))
    }

    #[test]
    fn single_job_pipeline() {
        // One task, one job: copy-in (DMA), execute, copy-out.
        let r = simulate(
            vec![test_task(0, 10, 3, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let job = &r.jobs()[0];
        // I_0: DMA copy-in [0,3). I_1: exec [3,13). I_2: copy-out [13,15).
        assert_eq!(job.exec_start, Some(Time::from_ticks(3)));
        assert_eq!(job.completion, Some(Time::from_ticks(15)));
        assert_eq!(r.interval_starts().len(), 3);
    }

    #[test]
    fn dma_hides_copy_phases_of_back_to_back_jobs() {
        // Two tasks with long copies: under the protocol, copies of the
        // second task overlap the execution of the first.
        let r = simulate(
            vec![
                test_task(0, 10, 5, 5, 1_000, 0, false),
                test_task(1, 10, 5, 5, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        // I_0: copy-in τ0 [0,5). I_1: exec τ0 [5,15) ∥ copy-in τ1 [5,10).
        // I_2: exec τ1 [15,25) ∥ copy-out τ0 [15,20).
        // I_3: copy-out τ1 [25,30).
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        let t1 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(1))
            .expect("τ1 record");
        assert_eq!(t0.completion, Some(Time::from_ticks(20)));
        assert_eq!(t1.exec_start, Some(Time::from_ticks(15)));
        assert_eq!(t1.completion, Some(Time::from_ticks(30)));
    }

    #[test]
    fn wp_policy_never_cancels() {
        // An LS task arriving during an lp copy-in: WP ignores it.
        let r = simulate(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, true),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![5]), (1, vec![0])],
            Policy::WaslyPellizzoni,
            1_000,
        );
        assert!(r.events().iter().all(|e| !e.canceled));
    }

    #[test]
    fn proposed_policy_cancels_for_ls_release() {
        // τ1 (lp, copy-in 10 ticks) starts loading at t=0; LS τ0 released
        // at t=5 cancels it (R3), becomes urgent (R4), and executes with a
        // CPU copy-in in the next interval (R5).
        let r = simulate(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, true),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![5]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let cancel = r
            .events()
            .iter()
            .find(|e| e.canceled)
            .expect("a cancellation");
        assert_eq!(cancel.job.task(), TaskId(1));
        assert_eq!(cancel.end, Time::from_ticks(5));
        // Urgent CPU copy-in of τ0 right at the next interval.
        let cpu_copyin = r
            .events()
            .iter()
            .find(|e| e.unit == TraceUnit::Cpu && e.phase == Phase::CopyIn)
            .expect("urgent CPU copy-in");
        assert_eq!(cpu_copyin.job.task(), TaskId(0));
        assert_eq!(cpu_copyin.start, Time::from_ticks(5));
        // τ0 executes at 5+4=9, completes copy-out after τ1 etc.
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        assert_eq!(t0.exec_start, Some(Time::from_ticks(9)));
    }

    #[test]
    fn priority_order_drives_copy_in_selection() {
        // Both ready at t=0: higher-priority τ0 is loaded first.
        let r = simulate(
            vec![
                test_task(0, 10, 2, 1, 1_000, 0, false),
                test_task(1, 10, 2, 1, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
            1_000,
        );
        let first_copyin = r
            .events()
            .iter()
            .find(|e| e.phase == Phase::CopyIn)
            .expect("a copy-in event");
        assert_eq!(first_copyin.job.task(), TaskId(0));
    }

    #[test]
    fn inter_job_precedence_defers_activation() {
        // Period shorter than response: second release waits for first
        // completion.
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 1])],
            Policy::Proposed,
            1_000,
        );
        let j0 = r.job(JobId::new(TaskId(0), 0)).expect("first job recorded");
        let j1 = r
            .job(JobId::new(TaskId(0), 1))
            .expect("second job recorded");
        let c0 = j0.completion.expect("first job completes");
        // Second job's copy-in cannot start before first completes.
        let second_copyin = r
            .events()
            .iter()
            .find(|e| e.job == j1.job && e.phase == Phase::CopyIn)
            .expect("second copy-in event");
        assert!(second_copyin.start >= c0);
    }

    #[test]
    fn idle_gap_resets_intervals() {
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 500])],
            Policy::Proposed,
            1_000,
        );
        // Two separate interval bursts of 3 intervals each.
        assert_eq!(r.interval_starts().len(), 6);
        assert_eq!(r.interval_starts()[3], Time::from_ticks(500));
    }

    #[test]
    fn horizon_cuts_new_intervals() {
        let r = simulate(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0, 500])],
            Policy::Proposed,
            400,
        );
        // Second burst never starts.
        assert_eq!(r.interval_starts().len(), 3);
        assert_eq!(r.jobs().len(), 1);
    }

    // --- serialized (NPS) mode through the same kernel -------------------

    #[test]
    fn phases_are_serialized_on_cpu() {
        let r = simulate(
            vec![test_task(0, 10, 3, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            Policy::Nps,
            1_000,
        );
        assert_eq!(r.events().len(), 3);
        assert!(r.events().iter().all(|e| e.unit == TraceUnit::Cpu));
        assert!(r.events().iter().all(|e| e.interval == usize::MAX));
        assert_eq!(r.jobs()[0].completion, Some(Time::from_ticks(15)));
        assert!(r.interval_starts().is_empty());
    }

    #[test]
    fn non_preemptive_blocking() {
        // lp τ1 starts at 0 (length 62); hp τ0 released at 1 must wait.
        let r = simulate(
            vec![
                test_task(0, 10, 1, 1, 1_000, 0, false),
                test_task(1, 60, 1, 1, 1_000, 1, false),
            ],
            vec![(0, vec![1]), (1, vec![0])],
            Policy::Nps,
            1_000,
        );
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        // τ1 occupies [0, 62); τ0 runs [62, 74).
        assert_eq!(t0.exec_start, Some(Time::from_ticks(63)));
        assert_eq!(t0.completion, Some(Time::from_ticks(74)));
    }

    #[test]
    fn priority_wins_at_simultaneous_release() {
        let r = simulate(
            vec![
                test_task(0, 10, 0, 0, 1_000, 0, false),
                test_task(1, 20, 0, 0, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Nps,
            1_000,
        );
        let t0 = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ0 record");
        assert_eq!(t0.exec_start, Some(Time::ZERO));
    }

    #[test]
    fn deferred_activation_under_overload() {
        let r = simulate(
            vec![test_task(0, 30, 0, 0, 1_000, 0, false)],
            vec![(0, vec![0, 10, 20])],
            Policy::Nps,
            1_000,
        );
        let completions: Vec<_> = r
            .jobs()
            .iter()
            .map(|j| j.completion.expect("job completes within horizon"))
            .collect();
        assert_eq!(
            completions,
            vec![
                Time::from_ticks(30),
                Time::from_ticks(60),
                Time::from_ticks(90)
            ]
        );
    }

    #[test]
    fn simulate_with_accepts_any_policy() {
        let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 1_000, 0, false)])
            .expect("valid test task set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(100));
        let via_enum = crate::simulate(&set, &plan, Policy::Proposed, Time::from_ticks(100));
        let via_trait =
            crate::simulate_with(&set, &plan, &crate::policy::Proposed, Time::from_ticks(100));
        assert_eq!(via_enum, via_trait);
    }

    // --- workspace reuse and streaming mode -------------------------------

    #[test]
    fn dirty_workspace_reuse_matches_fresh_run() {
        let set_a = TaskSet::new(vec![
            test_task(0, 10, 5, 5, 1_000, 0, false),
            test_task(1, 10, 5, 5, 1_000, 1, false),
        ])
        .expect("valid set A");
        let set_b = TaskSet::new(vec![test_task(0, 30, 2, 1, 100, 0, true)]).expect("valid set B");
        let plan_a = ReleasePlan::periodic(&set_a, Time::from_ticks(400));
        let plan_b = ReleasePlan::periodic(&set_b, Time::from_ticks(900));

        let mut ws = SimWorkspace::new();
        // Soil the workspace with an unrelated run.
        run_into(
            &set_b,
            &plan_b,
            &crate::policy::Nps,
            Time::from_ticks(900),
            &mut ws,
        );
        // Reuse it for the run under test.
        let fresh = run(
            &set_a,
            &plan_a,
            &crate::policy::Proposed,
            Time::from_ticks(400),
        );
        let reused = run_into(
            &set_a,
            &plan_a,
            &crate::policy::Proposed,
            Time::from_ticks(400),
            &mut ws,
        );
        assert_eq!(fresh.events(), reused.events());
        assert_eq!(fresh.jobs(), reused.jobs());
        assert_eq!(fresh.interval_starts(), reused.interval_starts());
        assert_eq!(ws.runs(), 2);
        assert_eq!(ws.reuses(), 1);
    }

    #[test]
    fn streaming_stats_match_trace_derived_ones() {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 50, 0, true),
            test_task(1, 15, 3, 3, 80, 1, false),
        ])
        .expect("valid set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(400));
        let horizon = Time::from_ticks(400);
        let traced = run(&set, &plan, &crate::policy::Proposed, horizon);

        let mut ws = SimWorkspace::new();
        let mut hook_worst: Vec<Option<Time>> = vec![None; set.len()];
        let stats = run_streaming(
            &set,
            &plan,
            &crate::policy::Proposed,
            horizon,
            &mut ws,
            |ti, r| {
                let w = &mut hook_worst[ti];
                if w.is_none_or(|cur| r > cur) {
                    *w = Some(r);
                }
            },
        );
        for (i, task) in set.tasks().iter().enumerate() {
            assert_eq!(stats.worst_response(i), traced.worst_response(task.id()));
            let completed = traced
                .jobs()
                .iter()
                .filter(|j| j.job.task() == task.id() && j.completion.is_some())
                .count() as u64;
            assert_eq!(stats.completed(i), completed);
        }
        assert_eq!(stats.intervals() as usize, traced.interval_starts().len());
        assert_eq!(hook_worst[0], stats.worst_response(0));
        assert_eq!(hook_worst[1], stats.worst_response(1));
    }
}
