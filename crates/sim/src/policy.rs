//! The [`ProtocolPolicy`] trait and the three shipped policies.
//!
//! The kernel ([`crate::kernel`]) owns every *mechanic* of the platform —
//! release activation, inter-job precedence, partition bookkeeping, event
//! emission, horizon handling — and delegates every *decision* of the
//! scheduling protocol to a policy:
//!
//! 1. **dispatch order** — what the CPU serves at a slot start
//!    ([`ProtocolPolicy::dispatch`], rule R5);
//! 2. **copy-in target selection** — which ready task the DMA prefetches
//!    ([`ProtocolPolicy::copy_in_target`], rule R2; the copy-out of the
//!    previous interval's output is a kernel mechanic, rules R1/R2);
//! 3. **cancellation** — whether an in-flight copy-in is aborted
//!    ([`ProtocolPolicy::cancel_copy_in`], rule R3);
//! 4. **urgent promotion** — whether a latency-sensitive task is served
//!    by the CPU itself next interval
//!    ([`ProtocolPolicy::promote_urgent`], rule R4).
//!
//! [`Proposed`] implements all of R1–R6; [`WaslyPellizzoni`] keeps the
//! interval structure but never cancels or promotes; [`Nps`] serializes
//! all three phases on the CPU and uses neither the DMA nor intervals.
//! All three produce the same trace shape ([`crate::SimResult`]) through
//! the same kernel.

use pmcs_model::Time;

use crate::kernel::{JobState, KernelView};

/// What the CPU does in one scheduling slot (rule R5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuAction {
    /// Nothing to execute this slot (the DMA may still work).
    Idle,
    /// Serve the urgent task: CPU copy-in followed by execution (R5,
    /// urgent branch). The operand is the task index.
    ServeUrgent(usize),
    /// Execute the task loaded in the CPU partition (R5, loaded branch).
    ExecuteLoaded(usize),
    /// Serve all three phases (copy-in, execute, copy-out) back to back
    /// on the CPU — classical non-preemptive scheduling without DMA.
    ServeSerialized(usize),
}

/// The time window the kernel offers a policy when asking whether an
/// in-flight copy-in is canceled (rule R3).
///
/// R3 guards the copy-in for the *whole interval* in which it is
/// scheduled, not just the transfer: the decision window runs from the
/// interval start to the tentative interval end, while any cancellation
/// instant the policy returns is clamped by the kernel to the transfer
/// itself (`[transfer_start, transfer_end]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelWindow {
    /// Start of the enclosing interval.
    pub interval_start: Time,
    /// Instant the DMA transfer begins (after the copy-out, if any).
    pub transfer_start: Time,
    /// Instant the transfer would complete if not canceled.
    pub transfer_end: Time,
    /// Tentative interval end (`max(cpu_end, transfer_end)`) — the right
    /// edge of the R3 guard window.
    pub tentative_end: Time,
}

/// What happened in the interval that just ended, offered to the policy
/// when it decides on urgent promotion (rule R4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalOutcome {
    /// Interval start.
    pub start: Time,
    /// Interval end (R6: `max` of the CPU and DMA unit chains).
    pub end: Time,
    /// A copy-in was canceled mid-interval (R3 fired).
    pub copy_in_canceled: bool,
    /// A copy-in ran to completion and loaded a partition.
    pub copy_in_committed: bool,
}

/// A scheduling protocol: the decision points of rules R2–R5 over the
/// kernel's mechanics.
///
/// Implementations must be deterministic pure functions of the offered
/// [`KernelView`] — the simulator's reproducibility contract (identical
/// traces for identical inputs) rests on it.
pub trait ProtocolPolicy: Send + Sync {
    /// Stable policy name (used in diagnostics; registry keys may differ —
    /// two analysis conventions can share one simulating policy).
    fn name(&self) -> &'static str;

    /// `true` iff the policy schedules in R1/R6 intervals (partition
    /// swaps, interval-indexed events). `false` selects the serialized
    /// no-DMA mode: events carry `interval == usize::MAX` and the trace
    /// has no interval starts.
    fn interval_structured(&self) -> bool {
        true
    }

    /// `true` iff the policy implements the latency-sensitive rules
    /// (R3/R4) — the flag trace validation and conformance checking key
    /// their blocking bounds on.
    fn ls_rules(&self) -> bool;

    /// Rule R5: what the CPU serves at the slot starting at `view.now()`.
    fn dispatch(&self, view: &KernelView<'_>) -> CpuAction;

    /// Rule R2: the task whose copy-in the DMA performs this interval,
    /// selected at the interval start among ready tasks (`None` leaves
    /// the DMA idle after the copy-out).
    fn copy_in_target(&self, view: &KernelView<'_>) -> Option<usize>;

    /// Rule R3: the instant at which the copy-in of `target` is canceled,
    /// or `None` to let it commit. The kernel clamps the returned instant
    /// to the transfer span of `window`.
    fn cancel_copy_in(
        &self,
        view: &KernelView<'_>,
        target: usize,
        window: CancelWindow,
    ) -> Option<Time>;

    /// Rule R4: the task promoted to urgent at the end of an interval
    /// (served by the CPU itself next interval), or `None`.
    fn promote_urgent(&self, view: &KernelView<'_>, outcome: IntervalOutcome) -> Option<usize>;
}

impl std::fmt::Debug for dyn ProtocolPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProtocolPolicy({})", self.name())
    }
}

/// The paper's protocol: rules R1–R6 with copy-in cancellation and
/// urgent promotion for latency-sensitive tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Proposed;

impl ProtocolPolicy for Proposed {
    fn name(&self) -> &'static str {
        "proposed"
    }

    fn ls_rules(&self) -> bool {
        true
    }

    fn dispatch(&self, view: &KernelView<'_>) -> CpuAction {
        interval_dispatch(view)
    }

    fn copy_in_target(&self, view: &KernelView<'_>) -> Option<usize> {
        view.highest_priority_ready()
    }

    fn cancel_copy_in(
        &self,
        view: &KernelView<'_>,
        target: usize,
        window: CancelWindow,
    ) -> Option<Time> {
        earliest_canceling_release(view, target, window.interval_start, window.tentative_end)
    }

    fn promote_urgent(&self, view: &KernelView<'_>, outcome: IntervalOutcome) -> Option<usize> {
        // R4 applies only when the interval ends without a committed
        // copy-in: either none was started or it was canceled (R3).
        if outcome.copy_in_committed && !outcome.copy_in_canceled {
            return None;
        }
        // "Released in the interval": the boundary is taken inclusive so
        // that the release that canceled the copy-in (which by R6 may
        // coincide with the interval end) is eligible for promotion.
        (0..view.len())
            .filter(|&i| view.task(i).is_ls())
            .filter(|&i| {
                matches!(view.job_state(i), Some(JobState::Ready))
                    && view
                        .activation(i)
                        .is_some_and(|a| a >= outcome.start && a <= outcome.end)
            })
            .min_by_key(|&i| view.task(i).priority())
    }
}

/// The protocol of Wasly & Pellizzoni \[3\]: the same interval structure
/// (R1, R2, R5 loaded branch, R6), but no cancellation and no urgency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaslyPellizzoni;

impl ProtocolPolicy for WaslyPellizzoni {
    fn name(&self) -> &'static str {
        "wp"
    }

    fn ls_rules(&self) -> bool {
        false
    }

    fn dispatch(&self, view: &KernelView<'_>) -> CpuAction {
        interval_dispatch(view)
    }

    fn copy_in_target(&self, view: &KernelView<'_>) -> Option<usize> {
        view.highest_priority_ready()
    }

    fn cancel_copy_in(
        &self,
        _view: &KernelView<'_>,
        _target: usize,
        _window: CancelWindow,
    ) -> Option<Time> {
        None
    }

    fn promote_urgent(&self, _view: &KernelView<'_>, _outcome: IntervalOutcome) -> Option<usize> {
        None
    }
}

/// Classical non-preemptive fixed-priority scheduling: the DMA is unused
/// and all three phases run serialized on the CPU (Figure 1(b)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nps;

impl ProtocolPolicy for Nps {
    fn name(&self) -> &'static str {
        "nps"
    }

    fn interval_structured(&self) -> bool {
        false
    }

    fn ls_rules(&self) -> bool {
        false
    }

    fn dispatch(&self, view: &KernelView<'_>) -> CpuAction {
        view.highest_priority_ready()
            .map(CpuAction::ServeSerialized)
            .unwrap_or(CpuAction::Idle)
    }

    fn copy_in_target(&self, _view: &KernelView<'_>) -> Option<usize> {
        None
    }

    fn cancel_copy_in(
        &self,
        _view: &KernelView<'_>,
        _target: usize,
        _window: CancelWindow,
    ) -> Option<Time> {
        None
    }

    fn promote_urgent(&self, _view: &KernelView<'_>, _outcome: IntervalOutcome) -> Option<usize> {
        None
    }
}

/// The shared R5 dispatch of the interval-structured policies: the urgent
/// task first (CPU copy-in plus execution), else whatever is loaded in
/// the CPU partition.
fn interval_dispatch(view: &KernelView<'_>) -> CpuAction {
    if let Some(ti) = view.urgent() {
        CpuAction::ServeUrgent(ti)
    } else if let Some(ti) = view.cpu_loaded() {
        CpuAction::ExecuteLoaded(ti)
    } else {
        CpuAction::Idle
    }
}

/// Earliest activation inside `[start, end)` of an LS task with priority
/// higher than the copy-in target (rule R3).
///
/// The window is closed on the left: a task whose activation was deferred
/// to exactly the interval start by a same-instant copy-out completion
/// (inter-job precedence) missed the R2 target selection — without the
/// cancellation it would be blocked a second time, violating Property 4.
/// Tasks that were plainly released at the interval start are already in
/// the ready queue (their job state is set) and are filtered out here.
fn earliest_canceling_release(
    view: &KernelView<'_>,
    target: usize,
    start: Time,
    end: Time,
) -> Option<Time> {
    let target_prio = view.task(target).priority();
    (0..view.len())
        .filter(|&i| view.task(i).is_ls() && view.task(i).priority().is_higher_than(target_prio))
        .filter(|&i| view.job_state(i).is_none())
        .filter_map(|i| {
            let a = view.pending_activation(i)?;
            (a >= start && a < end).then_some(a)
        })
        .min()
}
