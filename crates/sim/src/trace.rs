//! Trace records produced by the simulator.

use std::fmt;

use pmcs_model::{JobId, Phase, Time};

/// Execution unit that performed a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceUnit {
    /// The processor core.
    Cpu,
    /// The per-core DMA engine.
    Dma,
}

impl fmt::Display for TraceUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceUnit::Cpu => "CPU",
            TraceUnit::Dma => "DMA",
        })
    }
}

/// One contiguous operation on a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start instant (inclusive).
    pub start: Time,
    /// End instant (exclusive).
    pub end: Time,
    /// Unit that performed the operation.
    pub unit: TraceUnit,
    /// The job the operation belongs to.
    pub job: JobId,
    /// Which phase the operation implements.
    pub phase: Phase,
    /// `true` iff the operation was aborted (rule R3 cancellation).
    pub canceled: bool,
    /// Index of the scheduling interval containing the operation
    /// (`usize::MAX` for NPS, which has no intervals).
    pub interval: usize,
}

impl TraceEvent {
    /// Operation duration.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}) {} {} {}{}",
            self.start,
            self.end,
            self.unit,
            self.job,
            self.phase,
            if self.canceled { " (canceled)" } else { "" }
        )
    }
}

/// Lifecycle record of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The job.
    pub job: JobId,
    /// Release instant.
    pub release: Time,
    /// When the job became visible to the scheduler: `max(release,
    /// completion of the previous job)` — inter-job precedence defers
    /// activation (Section II of the paper).
    pub activation: Time,
    /// Absolute deadline.
    pub absolute_deadline: Time,
    /// Start of the execution phase, if reached.
    pub exec_start: Option<Time>,
    /// Completion (end of copy-out), if reached within the horizon.
    pub completion: Option<Time>,
}

impl JobRecord {
    /// Response time, if the job completed.
    pub fn response(&self) -> Option<Time> {
        self.completion.map(|c| c - self.release)
    }

    /// `true` iff the job completed by its deadline. Incomplete jobs count
    /// as meeting the deadline only if the deadline lies beyond the last
    /// observed instant — callers should bound horizons accordingly; here
    /// incomplete jobs are conservatively reported as *not* meeting it.
    pub fn met_deadline(&self) -> bool {
        match self.completion {
            Some(c) => c <= self.absolute_deadline,
            None => false,
        }
    }
}

/// Borrowed view of a simulation trace — the same three slices a
/// [`SimResult`] owns, but pointing into caller-owned storage (typically
/// a [`SimWorkspace`](crate::SimWorkspace) that is reused between runs).
///
/// All read-only queries of [`SimResult`] are available here with
/// identical semantics; `SimResult` itself delegates to
/// [`SimResult::as_trace`] so the two can never drift apart.
#[derive(Debug, Clone, Copy)]
pub struct TraceRef<'a> {
    events: &'a [TraceEvent],
    jobs: &'a [JobRecord],
    interval_starts: &'a [Time],
}

impl<'a> TraceRef<'a> {
    /// Assembles a view from raw slices.
    pub fn new(
        events: &'a [TraceEvent],
        jobs: &'a [JobRecord],
        interval_starts: &'a [Time],
    ) -> Self {
        TraceRef {
            events,
            jobs,
            interval_starts,
        }
    }

    /// All traced operations, in chronological order of start.
    pub fn events(&self) -> &'a [TraceEvent] {
        self.events
    }

    /// Per-job lifecycle records, sorted by `(release, job)`.
    pub fn jobs(&self) -> &'a [JobRecord] {
        self.jobs
    }

    /// Interval start instants (empty under NPS).
    pub fn interval_starts(&self) -> &'a [Time] {
        self.interval_starts
    }

    /// The record of a specific job.
    pub fn job(&self, job: JobId) -> Option<&'a JobRecord> {
        self.jobs.iter().find(|j| j.job == job)
    }

    /// Worst observed response time of a task across completed jobs.
    pub fn worst_response(&self, task: pmcs_model::TaskId) -> Option<Time> {
        self.jobs
            .iter()
            .filter(|j| j.job.task() == task)
            .filter_map(JobRecord::response)
            .max()
    }

    /// `true` iff every completed job met its deadline and no job was left
    /// incomplete with a deadline inside the horizon.
    pub fn all_deadlines_met(&self, horizon: Time) -> bool {
        self.jobs.iter().all(|j| match j.completion {
            Some(c) => c <= j.absolute_deadline,
            None => j.absolute_deadline >= horizon,
        })
    }

    /// Deep-copies the viewed slices into an owned [`SimResult`].
    pub fn to_owned(&self) -> SimResult {
        SimResult::new(
            self.events.to_vec(),
            self.jobs.to_vec(),
            self.interval_starts.to_vec(),
        )
    }
}

/// Complete result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimResult {
    events: Vec<TraceEvent>,
    jobs: Vec<JobRecord>,
    /// Start instants of scheduling intervals (empty for NPS).
    interval_starts: Vec<Time>,
}

impl SimResult {
    pub(crate) fn new(
        events: Vec<TraceEvent>,
        jobs: Vec<JobRecord>,
        interval_starts: Vec<Time>,
    ) -> Self {
        SimResult {
            events,
            jobs,
            interval_starts,
        }
    }

    /// Assembles a result from raw parts.
    ///
    /// Intended for tooling that replays or deliberately corrupts traces
    /// (e.g. the `pmcs-audit` conformance demos and negative tests); the
    /// simulator itself never goes through this constructor. No invariants
    /// are enforced — feed the result to
    /// [`conformance::check_conformance`](crate::conformance::check_conformance)
    /// to find out what is wrong with it.
    pub fn from_parts(
        events: Vec<TraceEvent>,
        jobs: Vec<JobRecord>,
        interval_starts: Vec<Time>,
    ) -> Self {
        SimResult::new(events, jobs, interval_starts)
    }

    /// Borrowed view of this result, for code paths shared with
    /// workspace-backed (unowned) traces.
    pub fn as_trace(&self) -> TraceRef<'_> {
        TraceRef::new(&self.events, &self.jobs, &self.interval_starts)
    }

    /// All traced operations, in chronological order of start.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Per-job lifecycle records (order of first release).
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Interval start instants (empty under NPS).
    pub fn interval_starts(&self) -> &[Time] {
        &self.interval_starts
    }

    /// The record of a specific job.
    pub fn job(&self, job: JobId) -> Option<&JobRecord> {
        self.as_trace().job(job)
    }

    /// Worst observed response time of a task across completed jobs.
    pub fn worst_response(&self, task: pmcs_model::TaskId) -> Option<Time> {
        self.as_trace().worst_response(task)
    }

    /// `true` iff every completed job met its deadline and no job was left
    /// incomplete with a deadline inside the horizon.
    pub fn all_deadlines_met(&self, horizon: Time) -> bool {
        self.as_trace().all_deadlines_met(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_model::TaskId;

    fn job(t: u32, i: u64) -> JobId {
        JobId::new(TaskId(t), i)
    }

    #[test]
    fn event_duration_and_display() {
        let e = TraceEvent {
            start: Time::from_ticks(3),
            end: Time::from_ticks(8),
            unit: TraceUnit::Dma,
            job: job(1, 0),
            phase: Phase::CopyIn,
            canceled: true,
            interval: 2,
        };
        assert_eq!(e.duration(), Time::from_ticks(5));
        let s = e.to_string();
        assert!(s.contains("DMA") && s.contains("canceled"));
    }

    #[test]
    fn job_record_metrics() {
        let r = JobRecord {
            job: job(0, 0),
            release: Time::from_ticks(10),
            activation: Time::from_ticks(10),
            absolute_deadline: Time::from_ticks(60),
            exec_start: Some(Time::from_ticks(20)),
            completion: Some(Time::from_ticks(45)),
        };
        assert_eq!(r.response(), Some(Time::from_ticks(35)));
        assert!(r.met_deadline());
        let incomplete = JobRecord {
            completion: None,
            ..r
        };
        assert_eq!(incomplete.response(), None);
        assert!(!incomplete.met_deadline());
    }

    #[test]
    fn result_queries() {
        let jobs = vec![
            JobRecord {
                job: job(0, 0),
                release: Time::ZERO,
                activation: Time::ZERO,
                absolute_deadline: Time::from_ticks(100),
                exec_start: Some(Time::from_ticks(5)),
                completion: Some(Time::from_ticks(30)),
            },
            JobRecord {
                job: job(0, 1),
                release: Time::from_ticks(50),
                activation: Time::from_ticks(50),
                absolute_deadline: Time::from_ticks(150),
                exec_start: None,
                completion: Some(Time::from_ticks(110)),
            },
        ];
        let r = SimResult::new(vec![], jobs, vec![Time::ZERO]);
        assert_eq!(r.worst_response(TaskId(0)), Some(Time::from_ticks(60)));
        assert!(r.all_deadlines_met(Time::from_ticks(200)));
        assert!(r.job(job(0, 1)).is_some());
        assert_eq!(r.interval_starts().len(), 1);
    }

    #[test]
    fn incomplete_job_with_passed_deadline_fails() {
        let jobs = vec![JobRecord {
            job: job(0, 0),
            release: Time::ZERO,
            activation: Time::ZERO,
            absolute_deadline: Time::from_ticks(50),
            exec_start: None,
            completion: None,
        }];
        let r = SimResult::new(vec![], jobs, vec![]);
        assert!(!r.all_deadlines_met(Time::from_ticks(100)));
        // Deadline beyond horizon: tolerated.
        assert!(r.all_deadlines_met(Time::from_ticks(40)));
    }
}
