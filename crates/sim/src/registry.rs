//! Name-keyed simulator registry, aligned with the analyzer registry of
//! `pmcs-analysis`.
//!
//! Analysis approaches and simulating policies are not one-to-one: the
//! two NPS analysis conventions (`nps`, `nps-classic`) bound the *same*
//! operational protocol, so both names map to the same [`Nps`] policy.
//! [`Registry::standard`] registers the paper's four approach names in
//! the analyzer registry's column order — cross-validation drivers look
//! the simulating policy up by the analyzer's name and the two registries
//! stay aligned by construction (property-tested in `pmcs-analysis`).

use crate::policy::{Nps, Proposed, ProtocolPolicy, WaslyPellizzoni};

/// An ordered collection of [`ProtocolPolicy`]s keyed by approach name.
///
/// Order is significant: it mirrors the analyzer registry's column order
/// so the two can be zipped.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(String, Box<dyn ProtocolPolicy>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The paper's four approach names in analyzer-registry order:
    /// `proposed`, `wp`, `nps`, `nps-classic` (the last two share the
    /// [`Nps`] policy — two analysis conventions, one protocol).
    pub fn standard() -> Self {
        let mut r = Registry::new();
        r.register("proposed", Box::new(Proposed));
        r.register("wp", Box::new(WaslyPellizzoni));
        r.register("nps", Box::new(Nps));
        r.register("nps-classic", Box::new(Nps));
        r
    }

    /// Appends a named policy.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate names would
    /// make `get` ambiguous.
    pub fn register(&mut self, name: &str, policy: Box<dyn ProtocolPolicy>) {
        assert!(
            self.get(name).is_none(),
            "simulator policy {name:?} is already registered"
        );
        self.entries.push((name.to_string(), policy));
    }

    /// Looks a policy up by its approach name.
    pub fn get(&self, name: &str) -> Option<&dyn ProtocolPolicy> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_ref())
    }

    /// Iterates `(name, policy)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn ProtocolPolicy)> {
        self.entries.iter().map(|(n, p)| (n.as_str(), p.as_ref()))
    }

    /// The registered names, in registration order.
    pub fn labels(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("policies", &self.labels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_matches_analyzer_column_order() {
        let r = Registry::standard();
        assert_eq!(r.labels(), ["proposed", "wp", "nps", "nps-classic"]);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn both_nps_conventions_share_one_policy() {
        let r = Registry::standard();
        let carry = r.get("nps").expect("nps registered");
        let classic = r.get("nps-classic").expect("nps-classic registered");
        assert_eq!(carry.name(), "nps");
        assert_eq!(classic.name(), "nps");
        assert!(!carry.interval_structured());
    }

    #[test]
    fn lookup_by_name() {
        let r = Registry::standard();
        assert!(r.get("proposed").is_some());
        assert!(r.get("bogus").is_none());
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::standard();
        r.register("wp", Box::new(WaslyPellizzoni));
    }
}
