//! Trace validators re-checking the paper's Properties 1–4 on simulated
//! schedules.
//!
//! These run over every trace in tests and integration suites: a violation
//! means either the simulator or the protocol reasoning is wrong.

use std::fmt;

use pmcs_model::{JobId, Phase, TaskSet, Time};

use crate::trace::{SimResult, TraceEvent, TraceRef, TraceUnit};

/// A property violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which property was violated (1–4, or 0 for structural checks).
    pub property: u8,
    /// Offending job.
    pub job: JobId,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property {} violated by {}: {}",
            self.property, self.job, self.detail
        )
    }
}

/// Validates a trace produced by one of the interval policies
/// (`Proposed` or `WaslyPellizzoni`) against:
///
/// * **Structure** — phases of each job appear in copy-in → execute →
///   copy-out order; units never overlap themselves.
/// * **Property 1/2** — a task executing in interval `I_k` has its
///   (DMA) copy-in in `I_{k−1}` (NLS, non-urgent) and its copy-out in
///   `I_{k+1}`.
/// * **Property 3/4** — a job is blocked by lower-priority executions in
///   at most 2 intervals (NLS) / 1 interval (LS). For WP traces, pass
///   `ls_rules = false` and the NLS bound applies to every job.
///
/// Returns all violations found (empty = clean).
pub fn validate_trace(set: &TaskSet, result: &SimResult, ls_rules: bool) -> Vec<Violation> {
    validate_trace_ref(set, result.as_trace(), ls_rules)
}

/// [`validate_trace`] over a borrowed trace view (e.g. one held by a
/// reused [`SimWorkspace`](crate::SimWorkspace)).
pub fn validate_trace_ref(set: &TaskSet, result: TraceRef<'_>, ls_rules: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_unit_serialization(result, &mut violations);
    check_phase_order(result, &mut violations);
    check_copy_placement(result, &mut violations);
    check_blocking_bounds(set, result, ls_rules, &mut violations);
    violations
}

fn events_of<'a>(result: TraceRef<'a>, job: JobId) -> Vec<&'a TraceEvent> {
    result.events().iter().filter(|e| e.job == job).collect()
}

/// No unit executes two operations at once.
fn check_unit_serialization(result: TraceRef<'_>, out: &mut Vec<Violation>) {
    for unit in [TraceUnit::Cpu, TraceUnit::Dma] {
        let mut ops: Vec<_> = result
            .events()
            .iter()
            .filter(|e| e.unit == unit && e.duration() > Time::ZERO)
            .collect();
        ops.sort_by_key(|e| e.start);
        for w in ops.windows(2) {
            if w[1].start < w[0].end {
                out.push(Violation {
                    property: 0,
                    job: w[1].job,
                    detail: format!("{unit} overlap: {} then {}", w[0], w[1]),
                });
            }
        }
    }
}

/// Copy-in (completed) strictly before execute strictly before copy-out.
fn check_phase_order(result: TraceRef<'_>, out: &mut Vec<Violation>) {
    for rec in result.jobs() {
        let evs = events_of(result, rec.job);
        let copyin_end = evs
            .iter()
            .filter(|e| e.phase == Phase::CopyIn && !e.canceled)
            .map(|e| e.end)
            .max();
        let exec = evs.iter().find(|e| e.phase == Phase::Execute);
        let copyout = evs.iter().find(|e| e.phase == Phase::CopyOut);
        if let (Some(ci), Some(ex)) = (copyin_end, exec) {
            if ex.start < ci {
                out.push(Violation {
                    property: 0,
                    job: rec.job,
                    detail: format!("execute at {} before copy-in end {}", ex.start, ci),
                });
            }
        }
        if let (Some(ex), Some(co)) = (exec, copyout) {
            if co.start < ex.end {
                out.push(Violation {
                    property: 0,
                    job: rec.job,
                    detail: format!("copy-out at {} before execute end {}", co.start, ex.end),
                });
            }
        }
    }
}

/// Properties 1 and 2: DMA copy-in in `I_{k−1}`, copy-out in `I_{k+1}`
/// relative to an execution in `I_k` (urgent executions carry their
/// copy-in inside `I_k` on the CPU).
fn check_copy_placement(result: TraceRef<'_>, out: &mut Vec<Violation>) {
    for rec in result.jobs() {
        let evs = events_of(result, rec.job);
        let Some(exec) = evs.iter().find(|e| e.phase == Phase::Execute) else {
            continue;
        };
        let k = exec.interval;
        if let Some(ci) = evs.iter().find(|e| e.phase == Phase::CopyIn && !e.canceled) {
            let expected = if ci.unit == TraceUnit::Cpu {
                k
            } else {
                k.wrapping_sub(1)
            };
            if ci.interval != expected {
                out.push(Violation {
                    property: 1,
                    job: rec.job,
                    detail: format!("copy-in in interval {} but execution in {k}", ci.interval),
                });
            }
        }
        if let Some(co) = evs.iter().find(|e| e.phase == Phase::CopyOut) {
            if co.interval != k + 1 {
                out.push(Violation {
                    property: 2,
                    job: rec.job,
                    detail: format!("copy-out in interval {} but execution in {k}", co.interval),
                });
            }
        }
    }
}

/// Properties 3 and 4: blocking-interval bounds.
fn check_blocking_bounds(
    set: &TaskSet,
    result: TraceRef<'_>,
    ls_rules: bool,
    out: &mut Vec<Violation>,
) {
    let starts = result.interval_starts();
    if starts.is_empty() {
        return;
    }
    for rec in result.jobs() {
        let Some(exec_start) = rec.exec_start else {
            continue;
        };
        let task = set.get(rec.job.task()).expect("job task in set");
        // Count intervals overlapping [activation, exec_start) in which a
        // lower-priority task occupies the CPU (a job deferred by
        // inter-job precedence is not in the ready queue before its
        // activation, so it cannot be "blocked" yet).
        let mut blocked_intervals = 0usize;
        for (k, &istart) in starts.iter().enumerate() {
            let iend = starts.get(k + 1).copied().unwrap_or(Time::MAX);
            if iend <= rec.activation || istart >= exec_start {
                continue;
            }
            let lp_on_cpu = result.events().iter().any(|e| {
                e.interval == k
                    && e.unit == TraceUnit::Cpu
                    && e.phase == Phase::Execute
                    && set
                        .get(e.job.task())
                        .is_some_and(|t| t.priority().is_lower_than(task.priority()))
            });
            if lp_on_cpu {
                blocked_intervals += 1;
            }
        }
        let limit = if ls_rules && task.is_ls() { 1 } else { 2 };
        if blocked_intervals > limit {
            out.push(Violation {
                property: if ls_rules && task.is_ls() { 4 } else { 3 },
                job: rec.job,
                detail: format!("blocked in {blocked_intervals} intervals (limit {limit})"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Policy, ReleasePlan};
    use pmcs_core::window::test_task;
    use pmcs_model::{TaskId, TaskSet};

    fn check(tasks: Vec<pmcs_model::Task>, plan: Vec<(u32, Vec<i64>)>, policy: Policy) {
        let set = TaskSet::new(tasks).expect("valid test task set");
        let plan = ReleasePlan::from_pairs(
            plan.into_iter()
                .map(|(t, v)| {
                    (
                        TaskId(t),
                        v.into_iter().map(Time::from_ticks).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        let r = simulate(&set, &plan, policy, Time::from_secs(1));
        let ls_rules = policy == Policy::Proposed;
        let violations = validate_trace(&set, &r, ls_rules);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn clean_proposed_trace_validates() {
        check(
            vec![
                test_task(0, 10, 4, 1, 100, 0, true),
                test_task(1, 20, 10, 3, 200, 1, false),
                test_task(2, 30, 5, 5, 300, 2, false),
            ],
            vec![(0, vec![5, 105]), (1, vec![0, 90]), (2, vec![0])],
            Policy::Proposed,
        );
    }

    #[test]
    fn clean_wp_trace_validates() {
        check(
            vec![
                test_task(0, 10, 4, 1, 100, 0, false),
                test_task(1, 20, 10, 3, 200, 1, false),
            ],
            vec![(0, vec![5, 100]), (1, vec![0])],
            Policy::WaslyPellizzoni,
        );
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            property: 3,
            job: pmcs_model::JobId::new(TaskId(1), 0),
            detail: "example".into(),
        };
        assert!(v.to_string().contains("property 3"));
    }
}
