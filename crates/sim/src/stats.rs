//! Summary statistics over simulation traces: unit utilization, interval
//! lengths, per-task response-time distributions, and protocol-event
//! counters (cancellations, urgent executions).

use std::collections::BTreeMap;

use pmcs_model::{Phase, TaskId, Time};

use crate::trace::{SimResult, TraceUnit};

/// Minimum / average / maximum of a sample of durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurationStats {
    /// Samples observed.
    pub count: usize,
    /// Smallest sample (zero when empty).
    pub min: Time,
    /// Largest sample (zero when empty).
    pub max: Time,
    /// Sum of samples (for averaging without float loss).
    pub total: Time,
}

impl DurationStats {
    fn from_samples(samples: impl IntoIterator<Item = Time>) -> Self {
        let mut s = DurationStats::default();
        for t in samples {
            if s.count == 0 {
                s.min = t;
                s.max = t;
            } else {
                s.min = s.min.min(t);
                s.max = s.max.max(t);
            }
            s.total += t;
            s.count += 1;
        }
        s
    }

    /// Arithmetic mean in fractional ticks (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_f64() / self.count as f64
        }
    }
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total busy time of the CPU (execution + urgent copy-ins).
    pub cpu_busy: Time,
    /// Total busy time of the DMA engine (copy-ins incl. canceled,
    /// copy-outs).
    pub dma_busy: Time,
    /// DMA time thrown away by rule R3 cancellations.
    pub canceled_dma: Time,
    /// Number of canceled copy-ins.
    pub cancellations: usize,
    /// Number of urgent executions (CPU-side copy-ins, rule R5).
    pub urgent_executions: usize,
    /// Scheduling-interval length distribution (empty under NPS).
    pub interval_lengths: DurationStats,
    /// Per-task response-time distributions over completed jobs.
    pub responses: BTreeMap<TaskId, DurationStats>,
    /// Completed jobs.
    pub completed_jobs: usize,
}

impl TraceStats {
    /// CPU utilization over `[0, horizon)`.
    pub fn cpu_utilization(&self, horizon: Time) -> f64 {
        self.cpu_busy.as_f64() / horizon.as_f64().max(1.0)
    }

    /// DMA utilization over `[0, horizon)`.
    pub fn dma_utilization(&self, horizon: Time) -> f64 {
        self.dma_busy.as_f64() / horizon.as_f64().max(1.0)
    }
}

/// Computes summary statistics for a simulation result.
///
/// # Example
///
/// ```
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskSet, Time};
/// use pmcs_sim::{simulate, trace_stats, Policy, ReleasePlan};
///
/// let set = TaskSet::new(vec![test_task(0, 10, 3, 2, 50, 0, false)]).expect("valid test task set");
/// let plan = ReleasePlan::periodic(&set, Time::from_ticks(500));
/// let run = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(500));
/// let stats = trace_stats(&run);
/// assert_eq!(stats.cancellations, 0);
/// assert!(stats.cpu_busy > Time::ZERO);
/// ```
pub fn trace_stats(result: &SimResult) -> TraceStats {
    let mut cpu_busy = Time::ZERO;
    let mut dma_busy = Time::ZERO;
    let mut canceled_dma = Time::ZERO;
    let mut cancellations = 0usize;
    let mut urgent_executions = 0usize;

    for e in result.events() {
        match e.unit {
            TraceUnit::Cpu => {
                cpu_busy += e.duration();
                if e.phase == Phase::CopyIn {
                    urgent_executions += 1;
                }
            }
            TraceUnit::Dma => {
                dma_busy += e.duration();
                if e.canceled {
                    cancellations += 1;
                    canceled_dma += e.duration();
                }
            }
        }
    }

    let starts = result.interval_starts();
    let interval_lengths = DurationStats::from_samples(
        starts
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|d| *d > Time::ZERO),
    );

    let mut responses: BTreeMap<TaskId, Vec<Time>> = BTreeMap::new();
    let mut completed_jobs = 0usize;
    for job in result.jobs() {
        if let Some(r) = job.response() {
            completed_jobs += 1;
            responses.entry(job.job.task()).or_default().push(r);
        }
    }

    TraceStats {
        cpu_busy,
        dma_busy,
        canceled_dma,
        cancellations,
        urgent_executions,
        interval_lengths,
        responses: responses
            .into_iter()
            .map(|(t, v)| (t, DurationStats::from_samples(v)))
            .collect(),
        completed_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Policy, ReleasePlan};
    use pmcs_core::window::test_task;
    use pmcs_model::TaskSet;

    fn run(policy: Policy) -> (TraceStats, Time) {
        let set = TaskSet::new(vec![
            test_task(0, 10, 4, 1, 100, 0, true),
            test_task(1, 50, 10, 3, 200, 1, false),
        ])
        .expect("valid test task set");
        let plan = ReleasePlan::from_pairs(vec![
            (
                pmcs_model::TaskId(0),
                vec![Time::from_ticks(5), Time::from_ticks(105)],
            ),
            (
                pmcs_model::TaskId(1),
                vec![Time::ZERO, Time::from_ticks(200)],
            ),
        ]);
        let horizon = Time::from_ticks(400);
        (
            trace_stats(&simulate(&set, &plan, policy, horizon)),
            horizon,
        )
    }

    #[test]
    fn proposed_counts_cancellations_and_urgency() {
        let (stats, horizon) = run(Policy::Proposed);
        assert!(stats.cancellations >= 1, "LS release must cancel τ1's load");
        assert!(stats.urgent_executions >= 1);
        assert!(stats.cpu_utilization(horizon) > 0.0);
        assert!(stats.dma_utilization(horizon) > 0.0);
        assert!(stats.completed_jobs >= 3);
        assert!(stats.interval_lengths.count > 0);
        assert!(stats.interval_lengths.mean() > 0.0);
    }

    #[test]
    fn wp_has_no_protocol_events() {
        let (stats, _) = run(Policy::WaslyPellizzoni);
        assert_eq!(stats.cancellations, 0);
        assert_eq!(stats.urgent_executions, 0);
        assert_eq!(stats.canceled_dma, Time::ZERO);
    }

    #[test]
    fn nps_uses_no_dma() {
        let (stats, _) = run(Policy::Nps);
        assert_eq!(stats.dma_busy, Time::ZERO);
        assert_eq!(stats.interval_lengths.count, 0);
        assert!(stats.cpu_busy > Time::ZERO);
    }

    #[test]
    fn per_task_response_stats_cover_all_tasks() {
        let (stats, _) = run(Policy::Proposed);
        assert!(stats.responses.contains_key(&pmcs_model::TaskId(0)));
        assert!(stats.responses.contains_key(&pmcs_model::TaskId(1)));
        for s in stats.responses.values() {
            assert!(s.min <= s.max);
            assert!(s.mean() >= s.min.as_f64());
            assert!(s.mean() <= s.max.as_f64());
        }
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = DurationStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count, 0);
    }
}
