//! Rule-addressable R1–R6 protocol-conformance analysis of interval traces.
//!
//! [`validate`](crate::validate) re-checks the paper's *Properties 1–4* —
//! consequences of the protocol. This module checks the protocol *rules*
//! themselves: every diagnostic names the rule it violates (cross-referencing
//! the canonical statements in [`pmcs_core::protocol::RULES`]), the offending
//! job, and the interval span, so a bad trace explains *which rule* broke and
//! *where* instead of failing a property assertion downstream.
//!
//! The checks are one-directional and exact for traces produced by
//! [`crate::simulate`] under the interval policies: a clean simulator trace
//! yields an empty report (property-tested in `tests/protocol_properties.rs`),
//! and a tampered trace yields the diagnostic of the rule it breaks
//! (negative-tested below). NPS traces have no intervals, so the analysis
//! does not apply to them ([`ConformanceReport::not_applicable`]).
//!
//! | check | rule | what is verified |
//! |---|---|---|
//! | interval structure | R1 | starts non-decreasing (zero-length intervals arise from zero-duration phases); events within their interval span; at most one CPU execution / DMA copy-out / DMA copy-in per interval |
//! | DMA order & target | R2 | copy-out precedes copy-in; the copy-in target is the highest-priority job ready at the interval start |
//! | cancellation legality | R3 | every canceled copy-in is justified by a higher-priority LS activation inside the interval; the WP baseline never cancels |
//! | urgent promotion | R4 | a CPU copy-in follows an interval with a canceled/absent copy-in, serves the highest-priority LS job released there, and only under LS rules |
//! | CPU activity source | R5 | an execution is urgent (CPU copy-in immediately before it) or consumes a copy-in completed in the previous interval; operations start at the interval start and chain back-to-back |
//! | interval extent | R6 | the interval ends with its longest unit-chain; pending work (loaded input / waiting output / urgent task) forces the next interval to start immediately |

use std::fmt;

use pmcs_core::protocol::{ProtocolRule, RULES};
use pmcs_model::{JobId, Phase, TaskSet, Time};

use crate::trace::{JobRecord, SimResult, TraceEvent, TraceRef, TraceUnit};

/// Identifies one of the six protocol rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleTag {
    /// Partition swap / interval structure.
    R1,
    /// DMA copy-out then copy-in of the highest-priority ready task.
    R2,
    /// Copy-in cancellation on higher-priority LS release.
    R3,
    /// Urgent promotion of the highest-priority LS task.
    R4,
    /// CPU serves the urgent task or the previously loaded task.
    R5,
    /// Interval length is the longest of the CPU and DMA operations.
    R6,
}

impl RuleTag {
    /// All six tags in order.
    pub const ALL: [RuleTag; 6] = [
        RuleTag::R1,
        RuleTag::R2,
        RuleTag::R3,
        RuleTag::R4,
        RuleTag::R5,
        RuleTag::R6,
    ];

    /// The canonical statement of this rule from
    /// [`pmcs_core::protocol::RULES`].
    pub fn rule(self) -> &'static ProtocolRule {
        &RULES[self as usize]
    }

    /// The rule tag string (`"R1"`–`"R6"`).
    pub fn tag(self) -> &'static str {
        self.rule().tag
    }
}

impl fmt::Display for RuleTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One conformance diagnostic: a rule violation localized to a job and an
/// interval span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDiagnostic {
    /// The violated rule.
    pub rule: RuleTag,
    /// The job involved, when one can be identified.
    pub job: Option<JobId>,
    /// Inclusive interval-index span `[first, last]` the violation covers.
    pub intervals: (usize, usize),
    /// Human-readable explanation of what the trace does and what the rule
    /// requires.
    pub explanation: String,
}

impl fmt::Display for RuleDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.rule)?;
        if self.intervals.0 == self.intervals.1 {
            write!(f, "interval {}: ", self.intervals.0)?;
        } else {
            write!(f, "intervals {}-{}: ", self.intervals.0, self.intervals.1)?;
        }
        if let Some(job) = self.job {
            write!(f, "{job}: ")?;
        }
        write!(
            f,
            "{} (rule: {})",
            self.explanation,
            self.rule.rule().statement
        )
    }
}

/// Result of a conformance analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// All diagnostics, ordered by interval then rule.
    pub diagnostics: Vec<RuleDiagnostic>,
    /// Number of scheduling intervals analyzed.
    pub intervals_checked: usize,
    /// Number of trace events analyzed.
    pub events_checked: usize,
    /// `false` when the trace has no interval structure (NPS) and the
    /// rules do not apply.
    pub applicable: bool,
}

impl ConformanceReport {
    fn not_applicable() -> Self {
        ConformanceReport {
            applicable: false,
            ..ConformanceReport::default()
        }
    }

    /// `true` iff the analysis ran and found no violation.
    pub fn is_conformant(&self) -> bool {
        self.applicable && self.diagnostics.is_empty()
    }

    /// Diagnostics for one specific rule.
    pub fn by_rule(&self, rule: RuleTag) -> impl Iterator<Item = &RuleDiagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    fn push(
        &mut self,
        rule: RuleTag,
        job: Option<JobId>,
        intervals: (usize, usize),
        explanation: impl Into<String>,
    ) {
        self.diagnostics.push(RuleDiagnostic {
            rule,
            job,
            intervals,
            explanation: explanation.into(),
        });
    }
}

/// Per-interval view assembled from the flat event list.
#[derive(Debug, Default, Clone)]
struct IntervalView {
    start: Time,
    /// Latest end over the interval's events (`start` when empty).
    end: Time,
    cpu_copyin: Option<usize>,
    cpu_execs: Vec<usize>,
    dma_copyouts: Vec<usize>,
    dma_copyins: Vec<usize>,
}

/// Checks a simulated interval trace against the protocol rules R1–R6.
///
/// `ls_rules` selects the protocol variant: `true` for the proposed
/// protocol (R3/R4 active), `false` for the Wasly–Pellizzoni baseline
/// (cancellations and urgent promotions are themselves violations).
///
/// Traces without interval structure (NPS) yield a non-`applicable`
/// report with no diagnostics.
pub fn check_conformance(set: &TaskSet, result: &SimResult, ls_rules: bool) -> ConformanceReport {
    check_conformance_ref(set, result.as_trace(), ls_rules)
}

/// [`check_conformance`] over a borrowed trace view (e.g. one held by a
/// reused [`SimWorkspace`](crate::SimWorkspace)).
pub fn check_conformance_ref(
    set: &TaskSet,
    result: TraceRef<'_>,
    ls_rules: bool,
) -> ConformanceReport {
    let starts = result.interval_starts();
    if starts.is_empty() {
        return ConformanceReport::not_applicable();
    }
    let mut report = ConformanceReport {
        applicable: true,
        intervals_checked: starts.len(),
        events_checked: result.events().len(),
        ..ConformanceReport::default()
    };
    let events = result.events();

    let Some(views) = build_views(starts, events, &mut report) else {
        // Structurally broken beyond repair (events outside any interval):
        // the per-rule analyses below would only cascade noise.
        return report;
    };

    check_r1_structure(&views, events, &mut report);
    check_r2_dma(set, result, &views, events, &mut report);
    check_r3_cancellation(set, result, &views, events, ls_rules, &mut report);
    check_r4_urgency(set, result, &views, events, ls_rules, &mut report);
    check_r5_cpu(&views, events, &mut report);
    check_r6_extent(result, &views, events, &mut report);

    report.diagnostics.sort_by_key(|d| (d.intervals, d.rule));
    report
}

fn build_views(
    starts: &[Time],
    events: &[TraceEvent],
    report: &mut ConformanceReport,
) -> Option<Vec<IntervalView>> {
    let mut views: Vec<IntervalView> = starts
        .iter()
        .map(|&s| IntervalView {
            start: s,
            end: s,
            ..IntervalView::default()
        })
        .collect();
    let mut ok = true;
    for (i, e) in events.iter().enumerate() {
        let Some(view) = views.get_mut(e.interval) else {
            report.push(
                RuleTag::R1,
                Some(e.job),
                (
                    e.interval.min(starts.len() - 1),
                    e.interval.min(starts.len() - 1),
                ),
                format!(
                    "event {e} carries interval index {} but only {} intervals exist",
                    e.interval,
                    starts.len()
                ),
            );
            ok = false;
            continue;
        };
        view.end = view.end.max(e.end);
        match (e.unit, e.phase) {
            (TraceUnit::Cpu, Phase::CopyIn) => {
                if view.cpu_copyin.replace(i).is_some() {
                    report.push(
                        RuleTag::R5,
                        Some(e.job),
                        (e.interval, e.interval),
                        "more than one CPU copy-in in a single interval",
                    );
                }
            }
            (TraceUnit::Cpu, Phase::Execute) => view.cpu_execs.push(i),
            (TraceUnit::Dma, Phase::CopyOut) => view.dma_copyouts.push(i),
            (TraceUnit::Dma, Phase::CopyIn) => view.dma_copyins.push(i),
            (TraceUnit::Cpu, Phase::CopyOut) | (TraceUnit::Dma, Phase::Execute) => {
                report.push(
                    RuleTag::R5,
                    Some(e.job),
                    (e.interval, e.interval),
                    format!("phase {} cannot run on unit {}", e.phase, e.unit),
                );
            }
        }
    }
    ok.then_some(views)
}

/// R1: the interval skeleton itself — non-decreasing starts (an interval
/// whose activities all have zero duration legitimately collapses to a
/// point), events confined to their interval's span, single occupancy per
/// unit role.
fn check_r1_structure(
    views: &[IntervalView],
    events: &[TraceEvent],
    report: &mut ConformanceReport,
) {
    for (k, w) in views.windows(2).enumerate() {
        if w[1].start < w[0].start {
            report.push(
                RuleTag::R1,
                None,
                (k, k + 1),
                format!(
                    "interval starts go backwards ({} then {})",
                    w[0].start, w[1].start
                ),
            );
        }
    }
    for e in events {
        let Some(view) = views.get(e.interval) else {
            continue;
        };
        let next_start = views.get(e.interval + 1).map(|v| v.start);
        if e.start < view.start || next_start.is_some_and(|ns| e.end > ns) {
            report.push(
                RuleTag::R1,
                Some(e.job),
                (e.interval, e.interval),
                format!(
                    "event {e} escapes its interval span [{}, {})",
                    view.start,
                    next_start.map_or_else(|| "∞".to_string(), |t| t.to_string())
                ),
            );
        }
    }
    for (k, view) in views.iter().enumerate() {
        if view.cpu_execs.len() > 1 {
            report.push(
                RuleTag::R1,
                view.cpu_execs.get(1).map(|&i| events[i].job),
                (k, k),
                format!(
                    "{} CPU executions in one interval (the partition assignment \
                     admits exactly one)",
                    view.cpu_execs.len()
                ),
            );
        }
        if view.dma_copyouts.len() > 1 {
            report.push(
                RuleTag::R1,
                view.dma_copyouts.get(1).map(|&i| events[i].job),
                (k, k),
                format!("{} DMA copy-outs in one interval", view.dma_copyouts.len()),
            );
        }
        if view.dma_copyins.len() > 1 {
            report.push(
                RuleTag::R1,
                view.dma_copyins.get(1).map(|&i| events[i].job),
                (k, k),
                format!(
                    "{} DMA copy-in activities in one interval",
                    view.dma_copyins.len()
                ),
            );
        }
    }
}

/// Index of the interval in which `job` leaves the ready queue for good:
/// its first non-canceled copy-in (DMA or urgent CPU) or execution.
fn departure_interval(events: &[TraceEvent], job: JobId) -> Option<usize> {
    events
        .iter()
        .filter(|e| e.job == job)
        .filter(|e| match e.phase {
            Phase::CopyIn => !e.canceled,
            Phase::Execute => true,
            Phase::CopyOut => false,
        })
        .map(|e| e.interval)
        .min()
}

/// Jobs ready at the start of interval `k` (activated, not yet departed,
/// not being served as the urgent task of `k`).
fn ready_at(
    result: TraceRef<'_>,
    views: &[IntervalView],
    events: &[TraceEvent],
    k: usize,
) -> Vec<JobId> {
    let istart = views[k].start;
    let urgent_job = views[k].cpu_copyin.map(|i| events[i].job);
    result
        .jobs()
        .iter()
        .filter(|r| r.activation <= istart)
        .filter(|r| Some(r.job) != urgent_job)
        .filter(|r| departure_interval(events, r.job).is_none_or(|d| d >= k))
        .filter(|r| visible_at_selection(events, r, istart, k))
        .map(|r| r.job)
        .collect()
}

/// Whether a job activated no later than `istart` was already visible when
/// the copy-in target of interval `k` was selected.
///
/// The one subtle case: a job whose activation was *deferred by inter-job
/// precedence* to exactly `istart`. Its predecessor's copy-out then ends
/// precisely at the interval start — and when that copy-out belongs to
/// interval `k` itself (a zero-length transfer at the start instant), it is
/// processed *after* the target selection, so the successor was not yet in
/// the ready queue. A copy-out that ended at the boundary from within
/// interval `k−1` activates the successor in time.
fn visible_at_selection(events: &[TraceEvent], r: &JobRecord, istart: Time, k: usize) -> bool {
    if r.activation < istart || r.activation == r.release || r.job.index() == 0 {
        return true;
    }
    let prev = JobId::new(r.job.task(), r.job.index() - 1);
    events
        .iter()
        .find(|e| {
            e.job == prev && e.phase == Phase::CopyOut && !e.canceled && e.end == r.activation
        })
        .is_none_or(|e| e.interval < k)
}

/// R2: within each interval the DMA copies out before copying in, and the
/// copy-in serves the highest-priority ready job.
fn check_r2_dma(
    set: &TaskSet,
    result: TraceRef<'_>,
    views: &[IntervalView],
    events: &[TraceEvent],
    report: &mut ConformanceReport,
) {
    for (k, view) in views.iter().enumerate() {
        if let (Some(&out), Some(&inn)) = (view.dma_copyouts.first(), view.dma_copyins.first()) {
            if events[inn].start < events[out].end {
                report.push(
                    RuleTag::R2,
                    Some(events[inn].job),
                    (k, k),
                    format!(
                        "copy-in starts at {} before the copy-out ends at {}",
                        events[inn].start, events[out].end
                    ),
                );
            }
        }
        let Some(&inn) = view.dma_copyins.first() else {
            continue;
        };
        let target = events[inn].job;
        let Some(target_prio) = set.get(target.task()).map(|t| t.priority()) else {
            report.push(
                RuleTag::R2,
                Some(target),
                (k, k),
                "copy-in target's task is not in the task set",
            );
            continue;
        };
        let ready = ready_at(result, views, events, k);
        if !ready.contains(&target) {
            report.push(
                RuleTag::R2,
                Some(target),
                (k, k),
                "copy-in serves a job that was not in the ready queue at the \
                 interval start",
            );
            continue;
        }
        for job in ready {
            let Some(prio) = set.get(job.task()).map(|t| t.priority()) else {
                continue;
            };
            if prio.is_higher_than(target_prio) {
                report.push(
                    RuleTag::R2,
                    Some(target),
                    (k, k),
                    format!(
                        "copy-in serves {target} although higher-priority {job} \
                         was ready at the interval start"
                    ),
                );
            }
        }
    }
}

/// R3: a canceled copy-in requires a higher-priority LS activation inside
/// the interval; the WP baseline must never cancel.
fn check_r3_cancellation(
    set: &TaskSet,
    result: TraceRef<'_>,
    views: &[IntervalView],
    events: &[TraceEvent],
    ls_rules: bool,
    report: &mut ConformanceReport,
) {
    for e in events.iter().filter(|e| e.canceled) {
        let k = e.interval;
        if e.phase != Phase::CopyIn || e.unit != TraceUnit::Dma {
            report.push(
                RuleTag::R3,
                Some(e.job),
                (k, k),
                format!(
                    "only DMA copy-ins can be canceled, not {} {}",
                    e.unit, e.phase
                ),
            );
            continue;
        }
        if !ls_rules {
            report.push(
                RuleTag::R3,
                Some(e.job),
                (k, k),
                "the WP baseline has no cancellation rule, yet the copy-in is canceled",
            );
            continue;
        }
        let Some(victim_prio) = set.get(e.job.task()).map(|t| t.priority()) else {
            continue; // R2 already reported the unknown task.
        };
        let (istart, iend) = (views[k].start, views[k].end);
        let justified = result.jobs().iter().any(|r| {
            r.activation >= istart
                && r.activation <= iend
                && set
                    .get(r.job.task())
                    .is_some_and(|t| t.is_ls() && t.priority().is_higher_than(victim_prio))
        });
        if !justified {
            report.push(
                RuleTag::R3,
                Some(e.job),
                (k, k),
                "copy-in canceled without a higher-priority latency-sensitive \
                 activation inside the interval",
            );
        }
    }
}

/// R4: a CPU copy-in (urgent service) is legal only under LS rules, for an
/// LS task, after an interval whose copy-in was canceled or absent, for
/// the highest-priority LS job released in that interval.
fn check_r4_urgency(
    set: &TaskSet,
    result: TraceRef<'_>,
    views: &[IntervalView],
    events: &[TraceEvent],
    ls_rules: bool,
    report: &mut ConformanceReport,
) {
    for (k, view) in views.iter().enumerate() {
        let Some(ci) = view.cpu_copyin.map(|i| &events[i]) else {
            continue;
        };
        if !ls_rules {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k, k),
                "the WP baseline has no urgent promotion, yet the CPU performs a copy-in",
            );
            continue;
        }
        let task = set.get(ci.job.task());
        if !task.is_some_and(|t| t.is_ls()) {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k, k),
                "urgent service of a task that is not latency-sensitive",
            );
            continue;
        }
        let Some(prev) = k.checked_sub(1).map(|p| &views[p]) else {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k, k),
                "urgent service in the first interval (promotion needs a preceding one)",
            );
            continue;
        };
        let prev_completed_copyin = prev.dma_copyins.iter().any(|&i| !events[i].canceled);
        if prev_completed_copyin {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k - 1, k),
                "urgent promotion although the preceding interval completed a copy-in",
            );
        }
        // "Released in the interval", boundaries inclusive (the canceling
        // release may coincide with the interval end).
        let released_in_prev = result
            .job(ci.job)
            .is_some_and(|r| r.activation >= prev.start && r.activation <= prev.end);
        if !released_in_prev {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k - 1, k),
                "urgent job was not released within the preceding interval",
            );
        }
        let Some(urgent_prio) = set.get(ci.job.task()).map(|t| t.priority()) else {
            continue;
        };
        let overlooked = result.jobs().iter().find(|r| {
            r.job != ci.job
                && r.activation >= prev.start
                && r.activation <= prev.end
                && departure_interval(events, r.job).is_none_or(|d| d >= k)
                && set
                    .get(r.job.task())
                    .is_some_and(|t| t.is_ls() && t.priority().is_higher_than(urgent_prio))
        });
        if let Some(better) = overlooked {
            report.push(
                RuleTag::R4,
                Some(ci.job),
                (k - 1, k),
                format!(
                    "urgent promotion skipped the higher-priority latency-sensitive \
                     job {} released in the same interval",
                    better.job
                ),
            );
        }
    }
}

/// R5: the CPU serves the urgent task (copy-in immediately followed by its
/// execution, from the interval start) or the task loaded in the previous
/// interval (execution from the interval start).
fn check_r5_cpu(views: &[IntervalView], events: &[TraceEvent], report: &mut ConformanceReport) {
    for (k, view) in views.iter().enumerate() {
        let exec = view.cpu_execs.first().map(|&i| &events[i]);
        if let Some(ci) = view.cpu_copyin.map(|i| &events[i]) {
            if ci.start != view.start {
                report.push(
                    RuleTag::R5,
                    Some(ci.job),
                    (k, k),
                    format!(
                        "urgent copy-in starts at {} instead of the interval start {}",
                        ci.start, view.start
                    ),
                );
            }
            match exec {
                Some(e) if e.job == ci.job && e.start == ci.end => {}
                _ => report.push(
                    RuleTag::R5,
                    Some(ci.job),
                    (k, k),
                    "urgent copy-in is not immediately followed by the execution \
                     of the same job",
                ),
            }
            continue;
        }
        let Some(e) = exec else {
            continue; // CPU idles: allowed by R5.
        };
        if e.start != view.start {
            report.push(
                RuleTag::R5,
                Some(e.job),
                (k, k),
                format!(
                    "execution starts at {} instead of the interval start {}",
                    e.start, view.start
                ),
            );
        }
        let loaded_prev = k
            .checked_sub(1)
            .map(|p| &views[p])
            .and_then(|prev| prev.dma_copyins.first().map(|&i| &events[i]))
            .is_some_and(|ci| !ci.canceled && ci.job == e.job);
        if !loaded_prev {
            report.push(
                RuleTag::R5,
                Some(e.job),
                (k.saturating_sub(1), k),
                "executed job was not loaded by a completed copy-in in the \
                 previous interval and is not urgent",
            );
        }
    }
}

/// R6: each unit's operations chain back-to-back from the interval start,
/// so the interval's extent is the longest chain; pending work (a loaded
/// input, a waiting output, an urgent task) forces the next interval to
/// begin exactly when this one ends.
fn check_r6_extent(
    result: TraceRef<'_>,
    views: &[IntervalView],
    events: &[TraceEvent],
    report: &mut ConformanceReport,
) {
    for (k, view) in views.iter().enumerate() {
        for unit in [TraceUnit::Cpu, TraceUnit::Dma] {
            let mut ops: Vec<&TraceEvent> = events
                .iter()
                .filter(|e| e.interval == k && e.unit == unit)
                .collect();
            ops.sort_by_key(|e| e.start);
            let mut cursor = view.start;
            for op in ops {
                if op.start != cursor {
                    report.push(
                        RuleTag::R6,
                        Some(op.job),
                        (k, k),
                        format!(
                            "{unit} operation starts at {} leaving a gap after {} \
                             (operations must chain from the interval start)",
                            op.start, cursor
                        ),
                    );
                }
                cursor = cursor.max(op.end);
            }
        }

        let Some(next) = views.get(k + 1) else {
            continue;
        };
        let pending = view.dma_copyins.iter().any(|&i| !events[i].canceled)
            || !view.cpu_execs.is_empty()
            || next.cpu_copyin.is_some();
        if pending && next.start != view.end {
            report.push(
                RuleTag::R6,
                None,
                (k, k + 1),
                format!(
                    "interval ends at {} with work pending, but the next interval \
                     starts at {}",
                    view.end, next.start
                ),
            );
        }
        // A completed copy-in must be consumed by an execution in the next
        // interval; an execution's output must be copied out in the next.
        if let Some(loaded) = view
            .dma_copyins
            .iter()
            .map(|&i| &events[i])
            .find(|e| !e.canceled)
        {
            let consumed = next.cpu_execs.iter().any(|&i| events[i].job == loaded.job);
            if !consumed {
                report.push(
                    RuleTag::R5,
                    Some(loaded.job),
                    (k, k + 1),
                    "job loaded by a completed copy-in does not execute in the \
                     next interval",
                );
            }
        }
        if let Some(&ex) = view.cpu_execs.first() {
            let out_next = next
                .dma_copyouts
                .iter()
                .any(|&i| events[i].job == events[ex].job);
            if !out_next {
                report.push(
                    RuleTag::R2,
                    Some(events[ex].job),
                    (k, k + 1),
                    "output of the executed job is not copied out at the start of \
                     the next interval",
                );
            }
        }
    }
    let _ = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Policy, ReleasePlan};
    use pmcs_core::window::test_task;
    use pmcs_model::{TaskId, TaskSet};

    fn run(
        tasks: Vec<pmcs_model::Task>,
        plan: Vec<(u32, Vec<i64>)>,
        policy: Policy,
    ) -> (TaskSet, SimResult) {
        let set = TaskSet::new(tasks).expect("valid task set");
        let plan = ReleasePlan::from_pairs(
            plan.into_iter()
                .map(|(t, v)| {
                    (
                        TaskId(t),
                        v.into_iter().map(Time::from_ticks).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        let r = simulate(&set, &plan, policy, Time::from_secs(1));
        (set, r)
    }

    fn cancel_scenario() -> (TaskSet, SimResult) {
        // LS τ0 released at t=5 cancels τ1's copy-in and goes urgent.
        run(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, true),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![5]), (1, vec![0])],
            Policy::Proposed,
        )
    }

    #[test]
    fn clean_proposed_trace_is_conformant() {
        let (set, r) = run(
            vec![
                test_task(0, 10, 4, 1, 100, 0, true),
                test_task(1, 20, 10, 3, 200, 1, false),
                test_task(2, 30, 5, 5, 300, 2, false),
            ],
            vec![(0, vec![5, 105]), (1, vec![0, 90]), (2, vec![0])],
            Policy::Proposed,
        );
        let report = check_conformance(&set, &r, true);
        assert!(report.is_conformant(), "{:#?}", report.diagnostics);
        assert!(report.intervals_checked > 0);
    }

    #[test]
    fn clean_cancellation_trace_is_conformant() {
        let (set, r) = cancel_scenario();
        assert!(
            r.events().iter().any(|e| e.canceled),
            "scenario must cancel"
        );
        let report = check_conformance(&set, &r, true);
        assert!(report.is_conformant(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn clean_wp_trace_is_conformant() {
        let (set, r) = run(
            vec![
                test_task(0, 10, 4, 1, 100, 0, false),
                test_task(1, 20, 10, 3, 200, 1, false),
            ],
            vec![(0, vec![5, 100]), (1, vec![0])],
            Policy::WaslyPellizzoni,
        );
        let report = check_conformance(&set, &r, false);
        assert!(report.is_conformant(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn nps_trace_is_not_applicable() {
        let (set, r) = run(
            vec![test_task(0, 10, 2, 2, 100, 0, false)],
            vec![(0, vec![0])],
            Policy::Nps,
        );
        let report = check_conformance(&set, &r, false);
        assert!(!report.applicable);
        assert!(!report.is_conformant());
    }

    /// Re-assembles a trace with one event replaced (the corruption hook
    /// used by the negative tests).
    fn tamper(r: &SimResult, f: impl Fn(&mut TraceEvent)) -> SimResult {
        let mut events = r.events().to_vec();
        for e in &mut events {
            f(e);
        }
        SimResult::from_parts(events, r.jobs().to_vec(), r.interval_starts().to_vec())
    }

    #[test]
    fn unjustified_cancellation_yields_r3() {
        let (set, r) = run(
            vec![
                test_task(0, 10, 4, 1, 1_000, 0, false),
                test_task(1, 50, 10, 1, 1_000, 1, false),
            ],
            vec![(0, vec![300]), (1, vec![0])],
            Policy::Proposed,
        );
        // Mark τ1's completed copy-in as canceled: no LS release justifies it.
        let bad = tamper(&r, |e| {
            if e.job.task() == TaskId(1) && e.phase == Phase::CopyIn {
                e.canceled = true;
            }
        });
        let report = check_conformance(&set, &bad, true);
        assert!(
            report.by_rule(RuleTag::R3).next().is_some(),
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn wp_cancellation_yields_r3() {
        let (set, r) = cancel_scenario();
        // The same trace audited under WP rules: cancellation is illegal.
        let report = check_conformance(&set, &r, false);
        assert!(report
            .by_rule(RuleTag::R3)
            .any(|d| d.explanation.contains("WP")));
    }

    #[test]
    fn displaced_execution_yields_r5_and_r6() {
        let (set, r) = run(
            vec![
                test_task(0, 10, 2, 1, 1_000, 0, false),
                test_task(1, 10, 2, 1, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
        );
        // Push an execution one tick late: it no longer starts at its
        // interval start (R5) and leaves a gap in the CPU chain (R6).
        let bad = tamper(&r, |e| {
            if e.phase == Phase::Execute && e.job.task() == TaskId(1) {
                e.start += Time::from_ticks(1);
                e.end += Time::from_ticks(1);
            }
        });
        let report = check_conformance(&set, &bad, true);
        assert!(
            report.by_rule(RuleTag::R5).next().is_some(),
            "{:#?}",
            report.diagnostics
        );
        assert!(
            report.by_rule(RuleTag::R6).next().is_some(),
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn wrong_copyin_target_yields_r2() {
        let (set, r) = run(
            vec![
                test_task(0, 10, 2, 1, 1_000, 0, false),
                test_task(1, 10, 2, 1, 1_000, 1, false),
            ],
            vec![(0, vec![0]), (1, vec![0])],
            Policy::Proposed,
        );
        // Swap the first copy-in's beneficiary to the lower-priority job:
        // the higher-priority ready job is then overlooked.
        let victim = r
            .events()
            .iter()
            .find(|e| e.phase == Phase::CopyIn)
            .expect("a copy-in")
            .job;
        assert_eq!(victim.task(), TaskId(0));
        let bad = tamper(&r, |e| {
            if e.interval == 0 && e.phase == Phase::CopyIn {
                e.job = JobId::new(TaskId(1), 0);
            }
        });
        let report = check_conformance(&set, &bad, true);
        assert!(
            report.by_rule(RuleTag::R2).next().is_some(),
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn torn_interval_yields_r1() {
        let (set, r) = run(
            vec![test_task(0, 10, 2, 2, 1_000, 0, false)],
            vec![(0, vec![0])],
            Policy::Proposed,
        );
        // Claim the execution happened in interval 0 (alongside its own
        // copy-in): two DMA/CPU roles collapse into one interval.
        let bad = tamper(&r, |e| {
            if e.phase == Phase::Execute {
                e.interval = 0;
            }
        });
        let report = check_conformance(&set, &bad, true);
        assert!(
            report.by_rule(RuleTag::R1).next().is_some()
                || report.by_rule(RuleTag::R5).next().is_some(),
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn rule_tags_cross_reference_protocol_rules() {
        for (i, tag) in RuleTag::ALL.iter().enumerate() {
            assert_eq!(tag.rule().tag, format!("R{}", i + 1));
            assert_eq!(tag.tag(), tag.rule().tag);
        }
    }

    #[test]
    fn diagnostic_display_carries_rule_and_span() {
        let d = RuleDiagnostic {
            rule: RuleTag::R3,
            job: Some(JobId::new(TaskId(1), 0)),
            intervals: (2, 3),
            explanation: "example".into(),
        };
        let s = d.to_string();
        assert!(s.contains("[R3]") && s.contains("intervals 2-3") && s.contains("example"));
        assert!(
            s.contains("latency-sensitive task"),
            "statement text included"
        );
    }
}
