//! ASCII Gantt rendering of simulated schedules (Figure-1-style).

use std::fmt::Write as _;

use pmcs_model::{Phase, Time};

use crate::trace::{SimResult, TraceUnit};

/// Renders a two-row (CPU / DMA) ASCII Gantt chart of the first
/// `window` time units, at one character per `scale` ticks.
///
/// Phase glyphs: execution uses the task's digit, copy-in `>`, copy-out
/// `<`, canceled copy-in `x`, idle `.`; interval boundaries are marked
/// with `|` on the ruler row.
///
/// The renderer works off the unified trace of all three policies. For
/// interval-structured traces (proposed, WP) the ruler marks the R1/R6
/// interval starts; for serialized traces (NPS, which have no intervals)
/// it marks the non-preemptive dispatch instants — the start of each
/// job's copy-in block on the CPU — so Figure 1(b)-style charts keep
/// their job boundaries.
///
/// # Example
///
/// ```
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskSet, Time};
/// use pmcs_sim::{render_gantt, simulate, Policy, ReleasePlan};
///
/// let set = TaskSet::new(vec![test_task(0, 4, 2, 1, 50, 0, false)]).expect("valid test task set");
/// let plan = ReleasePlan::periodic(&set, Time::from_ticks(50));
/// let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(50));
/// let chart = render_gantt(&r, Time::from_ticks(20), Time::TICK);
/// assert!(chart.contains("CPU"));
/// assert!(chart.contains("DMA"));
/// ```
pub fn render_gantt(result: &SimResult, window: Time, scale: Time) -> String {
    assert!(scale > Time::ZERO, "scale must be positive");
    let cols = (window.as_ticks() as usize).div_ceil(scale.as_ticks() as usize);
    let mut cpu = vec!['.'; cols];
    let mut dma = vec!['.'; cols];
    let mut ruler = vec![' '; cols];

    let marks: Vec<Time> = if result.interval_starts().is_empty() {
        // Serialized trace (NPS): mark non-preemptive dispatch instants,
        // i.e. the start of each job's copy-in block.
        result
            .events()
            .iter()
            .filter(|e| e.phase == Phase::CopyIn)
            .map(|e| e.start)
            .collect()
    } else {
        result.interval_starts().to_vec()
    };
    for start in marks {
        if start < window {
            let c = (start.as_ticks() / scale.as_ticks()) as usize;
            if c < cols {
                ruler[c] = '|';
            }
        }
    }

    for e in result.events() {
        if e.start >= window {
            continue;
        }
        let glyph = match e.phase {
            Phase::Execute => char::from_digit(e.job.task().0 % 10, 10).unwrap_or('#'),
            Phase::CopyIn => {
                if e.canceled {
                    'x'
                } else {
                    '>'
                }
            }
            Phase::CopyOut => '<',
        };
        let row = match e.unit {
            TraceUnit::Cpu => &mut cpu,
            TraceUnit::Dma => &mut dma,
        };
        let from = (e.start.as_ticks() / scale.as_ticks()) as usize;
        let to =
            ((e.end.min(window).as_ticks() + scale.as_ticks() - 1) / scale.as_ticks()) as usize;
        for cell in row.iter_mut().take(to.min(cols)).skip(from) {
            *cell = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "CPU |{}|", cpu.iter().collect::<String>());
    let _ = writeln!(out, "DMA |{}|", dma.iter().collect::<String>());
    let _ = writeln!(out, "     {}", ruler.iter().collect::<String>());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Policy, ReleasePlan};
    use pmcs_core::window::test_task;
    use pmcs_model::{TaskId, TaskSet};

    #[test]
    fn chart_shows_phases() {
        let set = TaskSet::new(vec![
            test_task(0, 4, 2, 1, 100, 0, false),
            test_task(1, 6, 3, 2, 100, 1, false),
        ])
        .expect("valid test task set");
        let plan = ReleasePlan::from_pairs(vec![
            (TaskId(0), vec![Time::ZERO]),
            (TaskId(1), vec![Time::ZERO]),
        ]);
        let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(100));
        let chart = render_gantt(&r, Time::from_ticks(40), Time::TICK);
        assert!(chart.contains('0'), "{chart}");
        assert!(chart.contains('1'), "{chart}");
        assert!(chart.contains('>'), "{chart}");
        assert!(chart.contains('<'), "{chart}");
        assert!(chart.contains('|'), "{chart}");
    }

    #[test]
    fn scaling_reduces_width() {
        let set = TaskSet::new(vec![test_task(0, 40, 20, 10, 1_000, 0, false)])
            .expect("valid test task set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(1_000));
        let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(1_000));
        let fine = render_gantt(&r, Time::from_ticks(100), Time::TICK);
        let coarse = render_gantt(&r, Time::from_ticks(100), Time::from_ticks(10));
        assert!(fine.len() > coarse.len());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let r = SimResult::default();
        let _ = render_gantt(&r, Time::from_ticks(10), Time::ZERO);
    }

    /// The Figure 1 scenario of the paper (DESIGN.md §4): τ_i (= τ0,
    /// l=C=u=2, D=10) released at t=4 over two pending lower-priority
    /// tasks released at t=1 and a previously-running lowest-priority
    /// task released at t=0.
    fn figure1() -> (TaskSet, ReleasePlan) {
        let tau_i = pmcs_model::Task::builder(TaskId(0))
            .name("tau_i")
            .exec(Time::from_ticks(2))
            .copy_in(Time::from_ticks(2))
            .copy_out(Time::from_ticks(2))
            .sporadic(Time::from_ticks(1_000))
            .deadline(Time::from_ticks(10))
            .priority(pmcs_model::Priority(0))
            .sensitivity(pmcs_model::Sensitivity::Ls)
            .build()
            .expect("τ_i is a valid task");
        let set = TaskSet::new(vec![
            tau_i,
            test_task(1, 3, 1, 1, 1_000, 1, false), // τ_lp1
            test_task(2, 4, 3, 2, 1_000, 2, false), // τ_lp2
            test_task(3, 2, 1, 2, 1_000, 3, false), // τ_p
        ])
        .expect("Figure 1 set is valid");
        let plan = ReleasePlan::from_pairs(vec![
            (TaskId(0), vec![Time::from_ticks(4)]),
            (TaskId(1), vec![Time::from_ticks(1)]),
            (TaskId(2), vec![Time::from_ticks(1)]),
            (TaskId(3), vec![Time::ZERO]),
        ]);
        (set, plan)
    }

    #[test]
    fn figure_1a_wp_schedule_renders_from_unified_trace() {
        // Figure 1(a): under WP, τ_i is blocked by lower-priority copy
        // traffic and misses its deadline (release 4 + D 10 = 14).
        let (set, plan) = figure1();
        let horizon = Time::from_ticks(40);
        let r = simulate(&set, &plan, Policy::WaslyPellizzoni, horizon);
        let tau_i = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ_i job recorded");
        assert!(
            !tau_i.met_deadline(),
            "Figure 1(a): τ_i must miss its deadline under WP"
        );
        let chart = render_gantt(&r, Time::from_ticks(30), Time::TICK);
        // Interval ruler present, τ_i's execution visible on the CPU row.
        assert!(chart.contains('|'), "{chart}");
        assert!(
            chart.lines().next().expect("CPU row").contains('0'),
            "{chart}"
        );
    }

    #[test]
    fn figure_1b_nps_schedule_renders_from_unified_trace() {
        // Figure 1(b): under NPS, τ_i waits only for the in-flight job
        // and meets its deadline.
        let (set, plan) = figure1();
        let horizon = Time::from_ticks(40);
        let r = simulate(&set, &plan, Policy::Nps, horizon);
        let tau_i = r
            .jobs()
            .iter()
            .find(|j| j.job.task() == TaskId(0))
            .expect("τ_i job recorded");
        assert!(
            tau_i.met_deadline(),
            "Figure 1(b): τ_i must meet its deadline under NPS"
        );
        let chart = render_gantt(&r, Time::from_ticks(30), Time::TICK);
        let mut lines = chart.lines();
        let cpu = lines.next().expect("CPU row");
        let dma = lines.next().expect("DMA row");
        let ruler = lines.next().expect("ruler row");
        // Serialized mode: everything on the CPU, the DMA row stays idle,
        // and the ruler marks the non-preemptive dispatch boundaries.
        assert!(
            cpu.contains('0') && cpu.contains('>') && cpu.contains('<'),
            "{chart}"
        );
        assert!(!dma.contains('>') && !dma.contains('<'), "{chart}");
        assert!(
            ruler.contains('|'),
            "NPS ruler must mark dispatches:\n{chart}"
        );
    }
}
