//! ASCII Gantt rendering of simulated schedules (Figure-1-style).

use std::fmt::Write as _;

use pmcs_model::{Phase, Time};

use crate::trace::{SimResult, TraceUnit};

/// Renders a two-row (CPU / DMA) ASCII Gantt chart of the first
/// `window` time units, at one character per `scale` ticks.
///
/// Phase glyphs: execution uses the task's digit, copy-in `>`, copy-out
/// `<`, canceled copy-in `x`, idle `.`; interval boundaries are marked
/// with `|` on the ruler row.
///
/// # Example
///
/// ```
/// use pmcs_core::window::test_task;
/// use pmcs_model::{TaskSet, Time};
/// use pmcs_sim::{render_gantt, simulate, Policy, ReleasePlan};
///
/// let set = TaskSet::new(vec![test_task(0, 4, 2, 1, 50, 0, false)]).unwrap();
/// let plan = ReleasePlan::periodic(&set, Time::from_ticks(50));
/// let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(50));
/// let chart = render_gantt(&r, Time::from_ticks(20), Time::TICK);
/// assert!(chart.contains("CPU"));
/// assert!(chart.contains("DMA"));
/// ```
pub fn render_gantt(result: &SimResult, window: Time, scale: Time) -> String {
    assert!(scale > Time::ZERO, "scale must be positive");
    let cols = (window.as_ticks() as usize).div_ceil(scale.as_ticks() as usize);
    let mut cpu = vec!['.'; cols];
    let mut dma = vec!['.'; cols];
    let mut ruler = vec![' '; cols];

    for &start in result.interval_starts() {
        if start < window {
            let c = (start.as_ticks() / scale.as_ticks()) as usize;
            if c < cols {
                ruler[c] = '|';
            }
        }
    }

    for e in result.events() {
        if e.start >= window {
            continue;
        }
        let glyph = match e.phase {
            Phase::Execute => char::from_digit(e.job.task().0 % 10, 10).unwrap_or('#'),
            Phase::CopyIn => {
                if e.canceled {
                    'x'
                } else {
                    '>'
                }
            }
            Phase::CopyOut => '<',
        };
        let row = match e.unit {
            TraceUnit::Cpu => &mut cpu,
            TraceUnit::Dma => &mut dma,
        };
        let from = (e.start.as_ticks() / scale.as_ticks()) as usize;
        let to =
            ((e.end.min(window).as_ticks() + scale.as_ticks() - 1) / scale.as_ticks()) as usize;
        for cell in row.iter_mut().take(to.min(cols)).skip(from) {
            *cell = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "CPU |{}|", cpu.iter().collect::<String>());
    let _ = writeln!(out, "DMA |{}|", dma.iter().collect::<String>());
    let _ = writeln!(out, "     {}", ruler.iter().collect::<String>());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Policy, ReleasePlan};
    use pmcs_core::window::test_task;
    use pmcs_model::{TaskId, TaskSet};

    #[test]
    fn chart_shows_phases() {
        let set = TaskSet::new(vec![
            test_task(0, 4, 2, 1, 100, 0, false),
            test_task(1, 6, 3, 2, 100, 1, false),
        ])
        .unwrap();
        let plan = ReleasePlan::from_pairs(vec![
            (TaskId(0), vec![Time::ZERO]),
            (TaskId(1), vec![Time::ZERO]),
        ]);
        let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(100));
        let chart = render_gantt(&r, Time::from_ticks(40), Time::TICK);
        assert!(chart.contains('0'), "{chart}");
        assert!(chart.contains('1'), "{chart}");
        assert!(chart.contains('>'), "{chart}");
        assert!(chart.contains('<'), "{chart}");
        assert!(chart.contains('|'), "{chart}");
    }

    #[test]
    fn scaling_reduces_width() {
        let set = TaskSet::new(vec![test_task(0, 40, 20, 10, 1_000, 0, false)]).unwrap();
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(1_000));
        let r = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(1_000));
        let fine = render_gantt(&r, Time::from_ticks(100), Time::TICK);
        let coarse = render_gantt(&r, Time::from_ticks(100), Time::from_ticks(10));
        assert!(fine.len() > coarse.len());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let r = SimResult::default();
        let _ = render_gantt(&r, Time::from_ticks(10), Time::ZERO);
    }
}
