//! Tick-exact arbiter for the regulated shared memory bus.
//!
//! The single-core kernel treats every DMA interval as taking exactly
//! its demand: that is the contention-free crossbar of the paper. On a
//! [`BusModel::regulated`] bus the `M` per-core DMA engines contend,
//! and this module supplies the missing mechanics: feed it the DMA
//! transfer requests extracted from `M` per-core traces and it replays
//! them against a shared bus under **hard (non-work-conserving)
//! MemGuard-style regulation**:
//!
//! * each core `p_m` holds a budget of `Q_m` bus ticks, reset at every
//!   multiple of the replenishment period `P`;
//! * each bus tick serves exactly one core, chosen round-robin among
//!   the backlogged cores with remaining budget;
//! * a backlogged core whose budget is exhausted **stalls until the
//!   next replenishment even if the bus is idle** — no reclaiming.
//!   Hard regulation is what makes per-core interference bounds
//!   compositional: rivals can never transfer more than their summed
//!   budgets inside any period, whatever their demand.
//!
//! Transfers of one core are served FIFO (by release time, ties in
//! input order). The produced [`TransferRecord`]s carry each transfer's
//! *service time* — completion minus the instant it reached the head of
//! its core's queue — which is exactly the quantity the analytical
//! inflation `inflate(d)` of `pmcs_core::contention` bounds;
//! cross-validation refutes the bound if any observed service time
//! exceeds it.
//!
//! Buses that cannot contend (contention-free, or regulated with a
//! single core — see [`BusModel::is_contended`]) degenerate to the
//! crossbar: every transfer is served at full speed on release.

use pmcs_model::{BusModel, CoreId, Phase, TaskId, Time};

/// One DMA transfer request issued by a core's engine (a copy-in or
/// copy-out interval observed in a per-core trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferReq {
    /// Core whose DMA engine issues the transfer.
    pub core: CoreId,
    /// Task the transferred data belongs to.
    pub task: TaskId,
    /// Copy phase (`CopyIn` or `CopyOut`).
    pub phase: Phase,
    /// Instant the transfer is handed to the DMA engine.
    pub release: Time,
    /// Ticks of bus service required (the *uninflated* copy bound).
    pub demand: Time,
}

/// One serviced transfer, as replayed by [`arbitrate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// The request this record serves.
    pub req: TransferReq,
    /// Instant the transfer reached the head of its core's queue:
    /// `max(release, completion of the core's previous transfer)`.
    pub service_start: Time,
    /// Instant the last tick of the transfer finished.
    pub completion: Time,
}

impl TransferRecord {
    /// Head-of-queue to completion — the quantity the analytical
    /// inflation bounds.
    pub fn service_time(&self) -> Time {
        self.completion - self.service_start
    }

    /// Ticks spent stalled (service time minus pure transfer time).
    pub fn stalled(&self) -> Time {
        self.service_time() - self.req.demand.max(Time::ZERO)
    }
}

/// Replays `requests` against `bus` and returns one record per request,
/// in the input order. Per core, requests are served FIFO by release
/// time (ties keep input order); zero-demand requests complete the
/// instant they reach the head of the queue without touching the bus.
///
/// On a bus that cannot contend every transfer is served at full speed;
/// otherwise the hard-regulation tick arbiter described in the module
/// docs runs until all transfers complete.
pub fn arbitrate(bus: &BusModel, requests: &[TransferReq]) -> Vec<TransferRecord> {
    // Per-core FIFO queues of request indices, stably ordered by release.
    let cores = requests
        .iter()
        .map(|r| r.core.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); cores];
    for (i, r) in requests.iter().enumerate() {
        queues[r.core.0 as usize].push(i);
    }
    for q in &mut queues {
        q.sort_by_key(|&i| requests[i].release);
    }

    let mut records: Vec<Option<TransferRecord>> = vec![None; requests.len()];
    if bus.is_contended() {
        contended(bus, requests, &queues, &mut records);
    } else {
        for q in &queues {
            let mut prev = Time::ZERO;
            for &i in q {
                let r = &requests[i];
                let start = r.release.max(prev);
                let completion = start + r.demand.max(Time::ZERO);
                prev = completion;
                records[i] = Some(TransferRecord {
                    req: r.clone(),
                    service_start: start,
                    completion,
                });
            }
        }
    }
    records
        .into_iter()
        .map(|r| r.expect("every request is served"))
        .collect()
}

/// The hard-regulation tick loop (`bus` is contended).
fn contended(
    bus: &BusModel,
    requests: &[TransferReq],
    queues: &[Vec<usize>],
    records: &mut [Option<TransferRecord>],
) {
    let period = bus.period().expect("contended bus is regulated").as_ticks();
    let full: Vec<i64> = (0..queues.len())
        .map(|m| {
            bus.budget(CoreId(m as u32))
                .map(Time::as_ticks)
                .unwrap_or(0)
        })
        .collect();

    // Per-core cursor into the queue, remaining demand of the head, and
    // the head's service start (fixed when it becomes head).
    let m_cores = queues.len();
    let mut next: Vec<usize> = vec![0; m_cores];
    let mut remaining: Vec<i64> = vec![0; m_cores];
    let mut head_start: Vec<Time> = vec![Time::ZERO; m_cores];
    let mut prev_completion: Vec<Time> = vec![Time::ZERO; m_cores];
    let mut budget = full.clone();
    let mut cur_period: i64 = 0;
    let mut t: i64 = 0;
    let mut rr: usize = 0;

    // Promotes the next queued request (if any) to head of core `m`,
    // instantly completing zero-demand transfers along the way.
    let promote = |m: usize,
                   next: &mut Vec<usize>,
                   remaining: &mut Vec<i64>,
                   head_start: &mut Vec<Time>,
                   prev_completion: &mut Vec<Time>,
                   records: &mut [Option<TransferRecord>]| {
        while next[m] < queues[m].len() {
            let i = queues[m][next[m]];
            let r = &requests[i];
            let start = r.release.max(prev_completion[m]);
            if r.demand <= Time::ZERO {
                records[i] = Some(TransferRecord {
                    req: r.clone(),
                    service_start: start,
                    completion: start,
                });
                prev_completion[m] = start;
                next[m] += 1;
                continue;
            }
            remaining[m] = r.demand.as_ticks();
            head_start[m] = start;
            break;
        }
    };
    for m in 0..m_cores {
        promote(
            m,
            &mut next,
            &mut remaining,
            &mut head_start,
            &mut prev_completion,
            records,
        );
    }

    loop {
        // Lazy budget replenishment at period boundaries (also after
        // time jumps across several periods — budgets reset, never
        // accumulate).
        let p_idx = t.div_euclid(period);
        if p_idx > cur_period {
            cur_period = p_idx;
            budget.clone_from(&full);
        }

        let now = Time::from_ticks(t);
        let backlogged =
            |m: usize| next[m] < queues[m].len() && requests[queues[m][next[m]]].release <= now;
        let pending: Vec<usize> = (0..m_cores)
            .filter(|&m| next[m] < queues[m].len())
            .collect();
        if pending.is_empty() {
            break;
        }
        let ready: Vec<usize> = pending.iter().copied().filter(|&m| backlogged(m)).collect();
        if ready.is_empty() {
            // Bus idle: jump to the earliest future release.
            let jump = pending
                .iter()
                .map(|&m| requests[queues[m][next[m]]].release.as_ticks())
                .min()
                .expect("pending is non-empty");
            t = jump;
            continue;
        }
        let Some(serve) = (0..m_cores)
            .map(|k| (rr + k) % m_cores)
            .find(|&m| ready.contains(&m) && budget[m] > 0)
        else {
            // Every backlogged core is out of budget: hard stall until
            // the next replenishment (the bus stays idle — no reclaim).
            t = (cur_period + 1) * period;
            continue;
        };

        remaining[serve] -= 1;
        budget[serve] -= 1;
        t += 1;
        rr = (serve + 1) % m_cores;
        if remaining[serve] == 0 {
            let i = queues[serve][next[serve]];
            let completion = Time::from_ticks(t);
            records[i] = Some(TransferRecord {
                req: requests[i].clone(),
                service_start: head_start[serve],
                completion,
            });
            prev_completion[serve] = completion;
            next[serve] += 1;
            promote(
                serve,
                &mut next,
                &mut remaining,
                &mut head_start,
                &mut prev_completion,
                records,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: i64) -> Time {
        Time::from_ticks(ticks)
    }

    fn req(core: u32, release: i64, demand: i64) -> TransferReq {
        TransferReq {
            core: CoreId(core),
            task: TaskId(core),
            phase: Phase::CopyIn,
            release: t(release),
            demand: t(demand),
        }
    }

    #[test]
    fn contention_free_serves_at_full_speed() {
        let bus = BusModel::contention_free();
        let reqs = vec![req(0, 0, 10), req(1, 3, 5), req(0, 2, 4)];
        let recs = arbitrate(&bus, &reqs);
        assert_eq!(recs[0].completion, t(10));
        assert_eq!(recs[1].completion, t(8)); // other core, no interference
        assert_eq!(recs[2].service_start, t(10)); // FIFO behind the first
        assert_eq!(recs[2].completion, t(14));
        assert!(recs
            .iter()
            .all(|r| r.stalled() == Time::ZERO || r.req.core == CoreId(0)));
    }

    #[test]
    fn single_core_regulated_bus_degenerates_to_the_crossbar() {
        let bus = BusModel::regulated(t(10), vec![t(2)]).unwrap();
        let recs = arbitrate(&bus, &[req(0, 0, 9)]);
        assert_eq!(recs[0].completion, t(9), "a lone core is never regulated");
    }

    #[test]
    fn round_robin_shares_the_bus_tick_by_tick() {
        let bus = BusModel::regulated(t(10), vec![t(5), t(5)]).unwrap();
        let recs = arbitrate(&bus, &[req(0, 0, 10), req(1, 0, 10)]);
        // Ticks alternate 0,1,0,1,…; both exhaust at t=10, replenish,
        // and finish their second half interleaved.
        assert_eq!(recs[0].completion, t(19));
        assert_eq!(recs[1].completion, t(20));
        assert_eq!(recs[0].service_time(), t(19));
        assert_eq!(recs[1].service_time(), t(20));
    }

    #[test]
    fn exhausted_budget_stalls_even_on_an_idle_bus() {
        let bus = BusModel::regulated(t(10), vec![t(2), t(8)]).unwrap();
        // Core 0 alone: burns its 2-tick budget, then must idle-stall
        // to the replenishment at t=10 although nobody else transfers.
        let recs = arbitrate(&bus, &[req(0, 0, 4)]);
        assert_eq!(recs[0].completion, t(12));
        assert_eq!(recs[0].stalled(), t(8));
    }

    #[test]
    fn zero_demand_transfers_complete_instantly_in_fifo_order() {
        let bus = BusModel::regulated(t(10), vec![t(5), t(5)]).unwrap();
        let reqs = vec![req(0, 0, 3), req(0, 1, 0), req(1, 0, 3)];
        let recs = arbitrate(&bus, &reqs);
        assert_eq!(recs[1].completion, recs[0].completion);
        assert_eq!(recs[1].service_time(), Time::ZERO);
    }

    #[test]
    fn idle_gaps_are_skipped_without_losing_replenishments() {
        let bus = BusModel::regulated(t(10), vec![t(2), t(2)]).unwrap();
        // Nothing happens until t=95; budgets must be fresh there.
        let recs = arbitrate(&bus, &[req(0, 95, 2)]);
        assert_eq!(recs[0].service_start, t(95));
        assert_eq!(recs[0].completion, t(97));
    }

    #[test]
    fn queued_transfer_service_starts_at_predecessor_completion() {
        let bus = BusModel::regulated(t(10), vec![t(5), t(5)]).unwrap();
        let reqs = vec![req(0, 0, 10), req(0, 0, 5), req(1, 0, 10)];
        let recs = arbitrate(&bus, &reqs);
        assert_eq!(recs[1].service_start, recs[0].completion);
        assert!(recs[1].completion > recs[1].service_start);
    }
}
