//! # pmcs-sim
//!
//! A deterministic discrete-event simulator for the platform model of the
//! paper: one core with a dual-ported local memory split into two
//! partitions, a private DMA engine, and three-phase tasks.
//!
//! Three scheduling policies are implemented:
//!
//! * [`Policy::Proposed`] — the paper's protocol, rules R1–R6 (copy-in
//!   cancellation and urgent promotion for latency-sensitive tasks);
//! * [`Policy::WaslyPellizzoni`] — the protocol of reference \[3\]: same
//!   interval structure, but no cancellation/urgency (rules R1, R2, R5
//!   without the urgent branch, R6);
//! * [`Policy::Nps`] — classical non-preemptive fixed-priority scheduling
//!   with the memory phases serialized on the CPU (no DMA use), as in
//!   Figure 1(b).
//!
//! The simulator is exact on the integer `Time` tick grid
//! and fully deterministic; [`validate`] re-checks the paper's
//! Properties 1–4 on every produced trace, and [`gantt`] renders ASCII
//! schedules like Figure 1.
//!
//! ## Example
//!
//! ```
//! use pmcs_core::window::test_task;
//! use pmcs_model::{TaskSet, Time};
//! use pmcs_sim::{simulate, Policy, ReleasePlan};
//!
//! let set = TaskSet::new(vec![
//!     test_task(0, 10, 2, 2, 50, 0, false),
//!     test_task(1, 15, 3, 3, 80, 1, false),
//! ]).unwrap();
//! let plan = ReleasePlan::periodic(&set, Time::from_ticks(400));
//! let result = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(400));
//! assert!(result.jobs().iter().all(|j| j.met_deadline()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod conformance;
pub mod gantt;
pub mod interval_sim;
pub mod nps_sim;
pub mod release;
pub mod stats;
pub mod trace;
pub mod validate;

pub use conformance::{check_conformance, ConformanceReport, RuleDiagnostic, RuleTag};
pub use gantt::render_gantt;
pub use release::ReleasePlan;
pub use stats::{trace_stats, DurationStats, TraceStats};
pub use trace::{JobRecord, SimResult, TraceEvent, TraceUnit};
pub use validate::{validate_trace, Violation};

use pmcs_model::{TaskSet, Time};

/// Scheduling policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The paper's protocol (rules R1–R6).
    Proposed,
    /// The protocol of Wasly & Pellizzoni \[3\] (no LS support).
    WaslyPellizzoni,
    /// Classical non-preemptive scheduling, memory phases on the CPU.
    Nps,
}

/// Simulates `set` under `policy` with the given release plan until
/// `horizon` (events starting at or after the horizon are not begun).
///
/// # Panics
///
/// Panics if the plan references tasks outside the set.
pub fn simulate(set: &TaskSet, plan: &ReleasePlan, policy: Policy, horizon: Time) -> SimResult {
    match policy {
        Policy::Proposed => interval_sim::run(set, plan, true, horizon),
        Policy::WaslyPellizzoni => interval_sim::run(set, plan, false, horizon),
        Policy::Nps => nps_sim::run(set, plan, horizon),
    }
}
