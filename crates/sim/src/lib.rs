//! # pmcs-sim
//!
//! A deterministic discrete-event simulator for the platform model of the
//! paper: one core with a dual-ported local memory split into two
//! partitions, a private DMA engine, and three-phase tasks.
//!
//! The simulator is an event-driven [`kernel`] parameterized by a
//! [`ProtocolPolicy`]: the kernel owns the platform mechanics (release
//! activation, partitions, event emission, the horizon cut) and consults
//! the policy at every protocol decision point — CPU dispatch (R5),
//! copy-in target selection (R2), cancellation (R3), urgent promotion
//! (R4). Three policies ship, all running on the same kernel and
//! producing the same trace format:
//!
//! * [`policy::Proposed`] — the paper's protocol, rules R1–R6 (copy-in
//!   cancellation and urgent promotion for latency-sensitive tasks);
//! * [`policy::WaslyPellizzoni`] — the protocol of reference \[3\]: same
//!   interval structure, but no cancellation/urgency (rules R1, R2, R5
//!   without the urgent branch, R6);
//! * [`policy::Nps`] — classical non-preemptive fixed-priority scheduling
//!   with the memory phases serialized on the CPU (no DMA use), as in
//!   Figure 1(b).
//!
//! A name-keyed [`Registry`] maps the analyzer-registry approach names
//! (`proposed`, `wp`, `nps`, `nps-classic`) to their simulating policies
//! for cross-validation drivers; the convenience [`Policy`] enum covers
//! the common three-way choice.
//!
//! The simulator is exact on the integer `Time` tick grid
//! and fully deterministic; [`validate`] re-checks the paper's
//! Properties 1–4 on every produced trace, and [`gantt`] renders ASCII
//! schedules like Figure 1.
//!
//! ## Example
//!
//! ```
//! use pmcs_core::window::test_task;
//! use pmcs_model::{TaskSet, Time};
//! use pmcs_sim::{simulate, Policy, ReleasePlan};
//!
//! let set = TaskSet::new(vec![
//!     test_task(0, 10, 2, 2, 50, 0, false),
//!     test_task(1, 15, 3, 3, 80, 1, false),
//! ]).unwrap();
//! let plan = ReleasePlan::periodic(&set, Time::from_ticks(400));
//! let result = simulate(&set, &plan, Policy::Proposed, Time::from_ticks(400));
//! assert!(result.jobs().iter().all(|j| j.met_deadline()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod conformance;
pub mod gantt;
pub mod kernel;
pub mod policy;
pub mod registry;
pub mod release;
pub mod stats;
pub mod trace;
pub mod validate;

pub use bus::{arbitrate, TransferRecord, TransferReq};
pub use conformance::{
    check_conformance, check_conformance_ref, ConformanceReport, RuleDiagnostic, RuleTag,
};
pub use gantt::render_gantt;
pub use kernel::{run_into, run_streaming, JobState, KernelView, SimWorkspace, StreamStats};
pub use policy::{CancelWindow, CpuAction, IntervalOutcome, ProtocolPolicy};
pub use registry::Registry;
pub use release::ReleasePlan;
pub use stats::{trace_stats, DurationStats, TraceStats};
pub use trace::{JobRecord, SimResult, TraceEvent, TraceRef, TraceUnit};
pub use validate::{validate_trace, validate_trace_ref, Violation};

use pmcs_model::{TaskSet, Time};

/// Scheduling policy to simulate (the three shipped
/// [`ProtocolPolicy`] implementations as a convenience enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The paper's protocol (rules R1–R6).
    Proposed,
    /// The protocol of Wasly & Pellizzoni \[3\] (no LS support).
    WaslyPellizzoni,
    /// Classical non-preemptive scheduling, memory phases on the CPU.
    Nps,
}

impl Policy {
    /// The [`ProtocolPolicy`] implementation this variant selects.
    pub fn protocol(self) -> &'static dyn ProtocolPolicy {
        match self {
            Policy::Proposed => &policy::Proposed,
            Policy::WaslyPellizzoni => &policy::WaslyPellizzoni,
            Policy::Nps => &policy::Nps,
        }
    }
}

/// Simulates `set` under `policy` with the given release plan until
/// `horizon` (events starting at or after the horizon are not begun).
///
/// # Panics
///
/// Panics if the plan references tasks outside the set.
pub fn simulate(set: &TaskSet, plan: &ReleasePlan, policy: Policy, horizon: Time) -> SimResult {
    kernel::run(set, plan, policy.protocol(), horizon)
}

/// Simulates `set` under an arbitrary [`ProtocolPolicy`] — the extension
/// point a fourth policy would use (registry-driven callers go through
/// [`Registry::get`] and land here).
///
/// # Panics
///
/// Panics if the plan references tasks outside the set.
pub fn simulate_with(
    set: &TaskSet,
    plan: &ReleasePlan,
    policy: &dyn ProtocolPolicy,
    horizon: Time,
) -> SimResult {
    kernel::run(set, plan, policy, horizon)
}
