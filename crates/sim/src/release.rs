//! Job release plans: explicit, deterministic release instants per task.
//!
//! The simulator is driven by a fully explicit plan so runs are exactly
//! reproducible; random or adversarial plans are built by the caller
//! (e.g. `pmcs-workload`).

use std::collections::BTreeMap;

use pmcs_model::{ArrivalBound, TaskId, TaskSet, Time};

/// Release instants for every task, each list sorted ascending.
///
/// # Example
///
/// ```
/// use pmcs_model::{TaskId, Time};
/// use pmcs_sim::ReleasePlan;
///
/// let plan = ReleasePlan::from_pairs(vec![
///     (TaskId(0), vec![Time::ZERO, Time::from_ticks(100)]),
/// ]);
/// assert_eq!(plan.releases(TaskId(0)).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReleasePlan {
    releases: BTreeMap<TaskId, Vec<Time>>,
}

impl ReleasePlan {
    /// Builds a plan from explicit `(task, releases)` pairs; each list is
    /// sorted internally.
    pub fn from_pairs(pairs: Vec<(TaskId, Vec<Time>)>) -> Self {
        let mut releases = BTreeMap::new();
        for (task, mut times) in pairs {
            times.sort();
            releases.insert(task, times);
        }
        ReleasePlan { releases }
    }

    /// Strictly periodic releases at `0, T, 2T, …` up to (excluding)
    /// `horizon`, using each task's minimum inter-arrival time (tasks with
    /// bursty models release at their minimum distances).
    pub fn periodic(set: &TaskSet, horizon: Time) -> Self {
        Self::periodic_with_offsets(set, horizon, |_| Time::ZERO)
    }

    /// Periodic releases with a per-task offset.
    pub fn periodic_with_offsets(
        set: &TaskSet,
        horizon: Time,
        offset: impl Fn(TaskId) -> Time,
    ) -> Self {
        let mut plan = ReleasePlan::default();
        plan.fill_periodic_with_offsets(set, horizon, offset);
        plan
    }

    /// Clears the plan for reuse with `set`: entries of tasks outside the
    /// set are dropped, every remaining release list is emptied with its
    /// capacity retained, and every task of `set` gets an entry. Plan
    /// generators that refill a pooled plan (the `*_into` family in
    /// `pmcs-workload`) call this first, so regenerating plans in a hot
    /// loop allocates nothing once buffers reach steady-state size.
    pub fn reset_for(&mut self, set: &TaskSet) {
        self.releases.retain(|t, _| set.get(*t).is_some());
        for task in set.iter() {
            self.releases.entry(task.id()).or_default().clear();
        }
    }

    /// Appends a release instant for `task`. Callers that push out of
    /// ascending order must call [`ReleasePlan::sort_lists`] afterwards.
    pub fn push(&mut self, task: TaskId, at: Time) {
        self.releases.entry(task).or_default().push(at);
    }

    /// Sorts every release list ascending.
    pub fn sort_lists(&mut self) {
        for v in self.releases.values_mut() {
            v.sort();
        }
    }

    /// Refills this plan in place with the pattern of
    /// [`ReleasePlan::periodic`], reusing buffers.
    pub fn fill_periodic(&mut self, set: &TaskSet, horizon: Time) {
        self.fill_periodic_with_offsets(set, horizon, |_| Time::ZERO);
    }

    /// Refills this plan in place with the pattern of
    /// [`ReleasePlan::periodic_with_offsets`], reusing buffers.
    pub fn fill_periodic_with_offsets(
        &mut self,
        set: &TaskSet,
        horizon: Time,
        offset: impl Fn(TaskId) -> Time,
    ) {
        self.reset_for(set);
        for task in set.iter() {
            let times = self
                .releases
                .get_mut(&task.id())
                .expect("reset_for inserts every task of the set");
            let start = offset(task.id());
            let mut n = 1u64;
            loop {
                let t = start + task.arrival().min_distance(n);
                if t >= horizon {
                    break;
                }
                times.push(t);
                n += 1;
                if n > 10_000_000 {
                    break; // runaway guard for degenerate models
                }
            }
        }
    }

    /// The (sorted) release instants of a task; empty if absent.
    pub fn releases(&self, task: TaskId) -> &[Time] {
        self.releases.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates `(task, releases)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &[Time])> {
        self.releases.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Total number of releases in the plan.
    pub fn total_releases(&self) -> usize {
        self.releases.values().map(Vec::len).sum()
    }

    /// Latest release instant in the plan (`Time::ZERO` when empty).
    pub fn last_release(&self) -> Time {
        self.releases
            .values()
            .filter_map(|v| v.last().copied())
            .fold(Time::ZERO, Time::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::test_task;
    use pmcs_model::TaskSet;

    #[test]
    fn periodic_plan_releases_on_the_grid() {
        let set =
            TaskSet::new(vec![test_task(0, 5, 1, 1, 100, 0, false)]).expect("valid test task set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(350));
        assert_eq!(
            plan.releases(TaskId(0)),
            &[
                Time::ZERO,
                Time::from_ticks(100),
                Time::from_ticks(200),
                Time::from_ticks(300)
            ]
        );
        assert_eq!(plan.total_releases(), 4);
        assert_eq!(plan.last_release(), Time::from_ticks(300));
    }

    #[test]
    fn offsets_shift_the_grid() {
        let set =
            TaskSet::new(vec![test_task(0, 5, 1, 1, 100, 0, false)]).expect("valid test task set");
        let plan = ReleasePlan::periodic_with_offsets(&set, Time::from_ticks(250), |_| {
            Time::from_ticks(30)
        });
        assert_eq!(
            plan.releases(TaskId(0)),
            &[
                Time::from_ticks(30),
                Time::from_ticks(130),
                Time::from_ticks(230)
            ]
        );
    }

    #[test]
    fn explicit_pairs_are_sorted() {
        let plan =
            ReleasePlan::from_pairs(vec![(TaskId(3), vec![Time::from_ticks(50), Time::ZERO])]);
        assert_eq!(plan.releases(TaskId(3))[0], Time::ZERO);
        assert!(plan.releases(TaskId(9)).is_empty());
    }

    #[test]
    fn iter_covers_all_tasks() {
        let set = TaskSet::new(vec![
            test_task(0, 5, 1, 1, 100, 0, false),
            test_task(1, 5, 1, 1, 60, 1, false),
        ])
        .expect("valid test task set");
        let plan = ReleasePlan::periodic(&set, Time::from_ticks(120));
        assert_eq!(plan.iter().count(), 2);
    }
}
