//! Property tests for the workspace-reuse kernel entry points.
//!
//! Two contracts underpin the fleet-scale campaign drivers:
//!
//! 1. **Dirty reuse is invisible.** `run_into` against a workspace still
//!    warm from an arbitrary earlier simulation must produce a trace
//!    byte-identical to a fresh `run` — whatever set, plan, or policy
//!    the workspace last saw.
//! 2. **Streaming loses nothing it claims to keep.** `run_streaming`'s
//!    folded statistics (per-task worst response, release/completion
//!    counts, deadline misses) must equal the same numbers derived from
//!    the materialized trace, and the `on_response` hook must fire once
//!    per completion in trace order.

use proptest::prelude::*;

use pmcs_core::window::test_task;
use pmcs_model::{TaskSet, Time};
use pmcs_sim::kernel::{run, run_into, run_streaming};
use pmcs_sim::policy::{Nps, Proposed, WaslyPellizzoni};
use pmcs_sim::{ProtocolPolicy, ReleasePlan, SimWorkspace};

/// One generated scenario: a valid task set, a release plan respecting
/// each task's minimum inter-arrival time, a policy, and a horizon.
#[derive(Debug, Clone)]
struct Scenario {
    set: TaskSet,
    plan: ReleasePlan,
    policy: usize,
    horizon: Time,
}

fn policy_of(index: usize) -> &'static dyn ProtocolPolicy {
    match index % 3 {
        0 => &Proposed,
        1 => &WaslyPellizzoni,
        _ => &Nps,
    }
}

/// Task tuples: (period, copy, exec, ls). `test_task` sets deadline =
/// period, which keeps every generated set valid; unique priorities
/// follow the vector order.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let task = (10i64..60, 0i64..4, 1i64..8, any::<bool>());
    (
        proptest::collection::vec(task, 1..5),
        proptest::collection::vec((0i64..40, 0i64..10), 5),
        0usize..3,
        100i64..400,
    )
        .prop_map(|(specs, offsets, policy, horizon)| {
            let tasks: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, &(period, copy, exec, ls))| {
                    test_task(i as u32, exec, copy, copy, period, i as u32, ls)
                })
                .collect();
            let set = TaskSet::new(tasks).expect("generated tasks are valid");
            let mut plan = ReleasePlan::default();
            let horizon = Time::from_ticks(horizon);
            for (task, &(offset, jitter)) in set.iter().zip(offsets.iter().cycle()) {
                let gap = task
                    .arrival()
                    .min_inter_arrival()
                    .expect("periodic test tasks have a period")
                    + Time::from_ticks(jitter);
                let mut at = Time::from_ticks(offset);
                while at < horizon {
                    plan.push(task.id(), at);
                    at += gap;
                }
            }
            Scenario {
                set,
                plan,
                policy,
                horizon,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: a workspace dirtied by one scenario replays a second
    /// scenario byte-identically to a fresh allocation.
    #[test]
    fn dirty_workspace_reuse_is_byte_identical(
        first in scenario_strategy(),
        second in scenario_strategy(),
    ) {
        let mut ws = SimWorkspace::new();
        // Dirty the workspace with an unrelated simulation.
        let _ = run_into(
            &first.set,
            &first.plan,
            policy_of(first.policy),
            first.horizon,
            &mut ws,
        );
        let fresh = run(
            &second.set,
            &second.plan,
            policy_of(second.policy),
            second.horizon,
        );
        let reused = run_into(
            &second.set,
            &second.plan,
            policy_of(second.policy),
            second.horizon,
            &mut ws,
        );
        prop_assert_eq!(reused.events(), fresh.events());
        prop_assert_eq!(reused.jobs(), fresh.jobs());
        prop_assert_eq!(reused.interval_starts(), fresh.interval_starts());
        prop_assert_eq!(ws.runs(), 2);
        prop_assert_eq!(ws.reuses(), 1);
    }

    /// Contract 2: streaming statistics equal the trace-derived numbers
    /// and the response hook fires once per completion.
    #[test]
    fn streaming_stats_equal_trace_derived(s in scenario_strategy()) {
        let policy = policy_of(s.policy);
        let trace = run(&s.set, &s.plan, policy, s.horizon);

        let mut ws = SimWorkspace::new();
        let mut seen: Vec<(usize, Time)> = Vec::new();
        let stats = run_streaming(&s.set, &s.plan, policy, s.horizon, &mut ws, |ti, r| {
            seen.push((ti, r));
        });

        for (ti, task) in s.set.iter().enumerate() {
            let records: Vec<_> = trace
                .jobs()
                .iter()
                .filter(|j| j.job.task() == task.id())
                .collect();
            let completed: Vec<Time> = records
                .iter()
                .filter_map(|j| j.completion.map(|c| c - j.release))
                .collect();
            prop_assert_eq!(
                stats.released(ti),
                records.len() as u64,
                "released mismatch for {}", task.id()
            );
            prop_assert_eq!(
                stats.completed(ti),
                completed.len() as u64,
                "completed mismatch for {}", task.id()
            );
            prop_assert_eq!(
                stats.worst_response(ti),
                completed.iter().copied().max(),
                "worst mismatch for {}", task.id()
            );
            let misses = records
                .iter()
                .filter(|j| matches!(j.completion, Some(c) if c > j.absolute_deadline))
                .count() as u64;
            prop_assert_eq!(
                stats.deadline_misses(ti),
                misses,
                "miss mismatch for {}", task.id()
            );
        }
        prop_assert_eq!(stats.intervals() as usize, trace.interval_starts().len());

        // The hook fired once per completed job, each with the recorded
        // response.
        let total_completed: usize = trace
            .jobs()
            .iter()
            .filter(|j| j.completion.is_some())
            .count();
        prop_assert_eq!(seen.len(), total_completed);
        let mut worst_seen: Vec<Option<Time>> = vec![None; s.set.len()];
        for &(ti, r) in &seen {
            let cur = &mut worst_seen[ti];
            *cur = Some(cur.map_or(r, |w| w.max(r)));
        }
        for ti in 0..s.set.len() {
            prop_assert_eq!(worst_seen[ti], stats.worst_response(ti));
        }
    }
}
