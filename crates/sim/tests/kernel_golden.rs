//! Differential golden test: the policy-pluggable kernel must reproduce
//! the pre-refactor simulators *byte for byte*.
//!
//! The `legacy` module below is the monolithic simulator text from before
//! the kernel/policy split — `interval_sim::run(set, plan, ls_enabled,
//! horizon)` plus the standalone `nps_sim::run` event loop — adapted only
//! at the seams (public trait-object-free API, `SimResult::from_parts`).
//! For a corpus of hand-built and seeded-random task sets and release
//! plans, the refactored `Proposed`/`WaslyPellizzoni`/`Nps` policies must
//! produce identical events, `JobRecord`s, and interval starts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmcs_core::window::test_task;
use pmcs_model::{Task, TaskId, TaskSet, Time};
use pmcs_sim::{simulate, Policy, ReleasePlan, SimResult};

/// The pre-refactor simulators, preserved verbatim as the golden oracle.
mod legacy {
    use std::collections::VecDeque;

    use pmcs_model::{JobId, Phase, Task, TaskSet, Time};
    use pmcs_sim::{JobRecord, ReleasePlan, SimResult, TraceEvent, TraceUnit};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum PartitionContent {
        Empty,
        Loaded(JobId, usize),
        Output(JobId, usize),
    }

    #[derive(Debug)]
    struct TaskRt {
        info: Task,
        releases: VecDeque<Time>,
        next_index: u64,
        last_completion: Time,
        current: Option<CurrentJob>,
    }

    #[derive(Debug, Clone, Copy)]
    struct CurrentJob {
        job: JobId,
        activation: Time,
        state: JobState,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum JobState {
        Ready,
        Urgent,
        CopyingIn,
        Loaded,
        AwaitingCopyOut,
    }

    pub fn interval_run(
        set: &TaskSet,
        plan: &ReleasePlan,
        ls_rules: bool,
        horizon: Time,
    ) -> SimResult {
        let mut tasks: Vec<TaskRt> = set
            .iter()
            .map(|t| TaskRt {
                releases: plan.releases(t.id()).iter().copied().collect(),
                next_index: 0,
                last_completion: Time::ZERO,
                current: None,
                info: t.clone(),
            })
            .collect();

        let mut events: Vec<TraceEvent> = Vec::new();
        let mut jobs: Vec<JobRecord> = Vec::new();
        let mut interval_starts: Vec<Time> = Vec::new();

        let mut partitions = [PartitionContent::Empty, PartitionContent::Empty];
        let mut cpu_part = 0usize;
        let mut urgent: Option<usize> = None;

        let mut now = Time::ZERO;
        let max_steps = 100_000_000u64;
        let mut steps = 0u64;

        loop {
            steps += 1;
            assert!(steps < max_steps, "simulation failed to make progress");

            activate(&mut tasks, &mut jobs, now);

            let work_pending = urgent.is_some()
                || partitions
                    .iter()
                    .any(|p| !matches!(p, PartitionContent::Empty))
                || tasks
                    .iter()
                    .any(|t| matches!(t.current.map(|c| c.state), Some(JobState::Ready)));
            if !work_pending {
                match next_activation(&tasks) {
                    Some(t) if t < horizon => {
                        now = t;
                        continue;
                    }
                    _ => break,
                }
            }
            if now >= horizon {
                break;
            }

            // ----- Interval start: R1 partition swap ---------------------
            let k = interval_starts.len();
            interval_starts.push(now);
            cpu_part = 1 - cpu_part;
            let dma_part = 1 - cpu_part;

            // ----- CPU side (R5) -----------------------------------------
            let mut cpu_end = now;
            if let Some(ti) = urgent.take() {
                let job = tasks[ti].current.expect("urgent task must have a job");
                debug_assert_eq!(job.state, JobState::Urgent);
                let l = tasks[ti].info.copy_in();
                let c = tasks[ti].info.exec();
                events.push(TraceEvent {
                    start: now,
                    end: now + l,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::CopyIn,
                    canceled: false,
                    interval: k,
                });
                events.push(TraceEvent {
                    start: now + l,
                    end: now + l + c,
                    unit: TraceUnit::Cpu,
                    job: job.job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                record_exec_start(&mut jobs, job.job, now + l);
                cpu_end = now + l + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                debug_assert_eq!(partitions[cpu_part], PartitionContent::Empty);
                partitions[cpu_part] = PartitionContent::Output(job.job, ti);
            } else if let PartitionContent::Loaded(job, ti) = partitions[cpu_part] {
                let c = tasks[ti].info.exec();
                events.push(TraceEvent {
                    start: now,
                    end: now + c,
                    unit: TraceUnit::Cpu,
                    job,
                    phase: Phase::Execute,
                    canceled: false,
                    interval: k,
                });
                record_exec_start(&mut jobs, job, now);
                cpu_end = now + c;
                set_state(&mut tasks[ti], JobState::AwaitingCopyOut);
                partitions[cpu_part] = PartitionContent::Output(job, ti);
            }

            // ----- DMA side (R2, R3) -------------------------------------
            let target = highest_priority_ready(&tasks);
            if let Some(ti) = target {
                set_state(&mut tasks[ti], JobState::CopyingIn);
            }

            let mut dma_t = now;
            if let PartitionContent::Output(job, ti) = partitions[dma_part] {
                let u = tasks[ti].info.copy_out();
                events.push(TraceEvent {
                    start: dma_t,
                    end: dma_t + u,
                    unit: TraceUnit::Dma,
                    job,
                    phase: Phase::CopyOut,
                    canceled: false,
                    interval: k,
                });
                dma_t += u;
                partitions[dma_part] = PartitionContent::Empty;
                complete_job(&mut tasks[ti], &mut jobs, job, dma_t);
            }

            let mut copyin_executed = false;
            let mut canceled = false;
            if let Some(ti) = target {
                let job = tasks[ti].current.expect("selected task has a job");
                let start = dma_t;
                let full_end = start + tasks[ti].info.copy_in();
                let tentative_end = cpu_end.max(full_end);
                let cancel_at = if ls_rules {
                    earliest_canceling_release(&tasks, ti, now, tentative_end)
                        .map(|rc| rc.clamp(start, full_end))
                } else {
                    None
                };
                match cancel_at {
                    Some(rc) => {
                        events.push(TraceEvent {
                            start,
                            end: rc,
                            unit: TraceUnit::Dma,
                            job: job.job,
                            phase: Phase::CopyIn,
                            canceled: true,
                            interval: k,
                        });
                        dma_t = rc;
                        set_state(&mut tasks[ti], JobState::Ready);
                        canceled = true;
                        activate(&mut tasks, &mut jobs, rc);
                    }
                    None => {
                        events.push(TraceEvent {
                            start,
                            end: full_end,
                            unit: TraceUnit::Dma,
                            job: job.job,
                            phase: Phase::CopyIn,
                            canceled: false,
                            interval: k,
                        });
                        dma_t = full_end;
                        set_state(&mut tasks[ti], JobState::Loaded);
                        debug_assert_eq!(partitions[dma_part], PartitionContent::Empty);
                        partitions[dma_part] = PartitionContent::Loaded(job.job, ti);
                        copyin_executed = true;
                    }
                }
            }

            // ----- Interval end (R6) -------------------------------------
            let interval_end = cpu_end.max(dma_t);
            activate(&mut tasks, &mut jobs, interval_end);

            // ----- R4: urgent promotion ----------------------------------
            if ls_rules && (canceled || !copyin_executed) {
                let candidate = tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.info.is_ls())
                    .filter(|(_, t)| {
                        t.current.is_some_and(|c| {
                            c.state == JobState::Ready
                                && c.activation >= now
                                && c.activation <= interval_end
                        })
                    })
                    .min_by_key(|(_, t)| t.info.priority())
                    .map(|(i, _)| i);
                if let Some(ti) = candidate {
                    set_state(&mut tasks[ti], JobState::Urgent);
                    urgent = Some(ti);
                }
            }

            now = interval_end;
        }

        jobs.sort_by_key(|j| (j.release, j.job));
        SimResult::from_parts(events, jobs, interval_starts)
    }

    fn activate(tasks: &mut [TaskRt], jobs: &mut Vec<JobRecord>, upto: Time) {
        for t in tasks.iter_mut() {
            if t.current.is_some() {
                continue;
            }
            let Some(&release) = t.releases.front() else {
                continue;
            };
            let activation = release.max(t.last_completion);
            if activation <= upto {
                t.releases.pop_front();
                let job = JobId::new(t.info.id(), t.next_index);
                t.next_index += 1;
                t.current = Some(CurrentJob {
                    job,
                    activation,
                    state: JobState::Ready,
                });
                jobs.push(JobRecord {
                    job,
                    release,
                    activation,
                    absolute_deadline: release + t.info.deadline(),
                    exec_start: None,
                    completion: None,
                });
            }
        }
    }

    fn next_activation(tasks: &[TaskRt]) -> Option<Time> {
        tasks
            .iter()
            .filter(|t| t.current.is_none())
            .filter_map(|t| t.releases.front().map(|&r| r.max(t.last_completion)))
            .min()
    }

    fn highest_priority_ready(tasks: &[TaskRt]) -> Option<usize> {
        tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.current.is_some_and(|c| c.state == JobState::Ready))
            .min_by_key(|(_, t)| t.info.priority())
            .map(|(i, _)| i)
    }

    fn earliest_canceling_release(
        tasks: &[TaskRt],
        target: usize,
        start: Time,
        end: Time,
    ) -> Option<Time> {
        let target_prio = tasks[target].info.priority();
        tasks
            .iter()
            .filter(|t| t.info.is_ls() && t.info.priority().is_higher_than(target_prio))
            .filter(|t| t.current.is_none())
            .filter_map(|t| {
                let &r = t.releases.front()?;
                let activation = r.max(t.last_completion);
                (activation >= start && activation < end).then_some(activation)
            })
            .min()
    }

    fn set_state(task: &mut TaskRt, state: JobState) {
        if let Some(c) = task.current.as_mut() {
            c.state = state;
        }
    }

    fn record_exec_start(jobs: &mut [JobRecord], job: JobId, at: Time) {
        if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
            r.exec_start = Some(at);
        }
    }

    fn complete_job(task: &mut TaskRt, jobs: &mut [JobRecord], job: JobId, at: Time) {
        if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
            r.completion = Some(at);
        }
        task.last_completion = at;
        task.current = None;
    }

    // ---- nps_sim.rs ----------------------------------------------------

    struct NpsTaskRt {
        releases: VecDeque<Time>,
        next_index: u64,
        last_completion: Time,
        ready: Option<(JobId, Time)>,
    }

    pub fn nps_run(set: &TaskSet, plan: &ReleasePlan, horizon: Time) -> SimResult {
        let infos: Vec<_> = set.iter().collect();
        let mut rt: Vec<NpsTaskRt> = infos
            .iter()
            .map(|t| NpsTaskRt {
                releases: plan.releases(t.id()).iter().copied().collect(),
                next_index: 0,
                last_completion: Time::ZERO,
                ready: None,
            })
            .collect();

        let mut events = Vec::new();
        let mut jobs: Vec<JobRecord> = Vec::new();
        let mut now = Time::ZERO;

        loop {
            for (i, t) in rt.iter_mut().enumerate() {
                if t.ready.is_some() {
                    continue;
                }
                if let Some(&r) = t.releases.front() {
                    let activation = r.max(t.last_completion);
                    if activation <= now {
                        t.releases.pop_front();
                        let job = JobId::new(infos[i].id(), t.next_index);
                        t.next_index += 1;
                        t.ready = Some((job, activation));
                        jobs.push(JobRecord {
                            job,
                            release: r,
                            activation,
                            absolute_deadline: r + infos[i].deadline(),
                            exec_start: None,
                            completion: None,
                        });
                    }
                }
            }

            let next = rt
                .iter()
                .enumerate()
                .filter(|(_, t)| t.ready.is_some())
                .min_by_key(|(i, _)| infos[*i].priority())
                .map(|(i, _)| i);
            match next {
                Some(i) => {
                    if now >= horizon {
                        break;
                    }
                    let (job, _) = rt[i].ready.take().expect("ready job");
                    let (l, c, u) = (infos[i].copy_in(), infos[i].exec(), infos[i].copy_out());
                    let phases = [
                        (Phase::CopyIn, now, now + l),
                        (Phase::Execute, now + l, now + l + c),
                        (Phase::CopyOut, now + l + c, now + l + c + u),
                    ];
                    for (phase, start, end) in phases {
                        events.push(TraceEvent {
                            start,
                            end,
                            unit: TraceUnit::Cpu,
                            job,
                            phase,
                            canceled: false,
                            interval: usize::MAX,
                        });
                    }
                    let completion = now + l + c + u;
                    if let Some(r) = jobs.iter_mut().find(|r| r.job == job) {
                        r.exec_start = Some(now + l);
                        r.completion = Some(completion);
                    }
                    rt[i].last_completion = completion;
                    now = completion;
                }
                None => {
                    let next_t = rt
                        .iter()
                        .filter(|t| t.ready.is_none())
                        .filter_map(|t| t.releases.front().map(|&r| r.max(t.last_completion)))
                        .min();
                    match next_t {
                        Some(t) if t < horizon => now = now.max(t),
                        _ => break,
                    }
                }
            }
        }

        jobs.sort_by_key(|j| (j.release, j.job));
        SimResult::from_parts(events, jobs, Vec::new())
    }
}

// ---- corpus -------------------------------------------------------------

const HORIZON: i64 = 2_000;

/// Hand-built task sets covering the protocol's decision surface: LS
/// flags, priority inversions, zero copy phases, copies longer than
/// execution, overload.
fn corpus_sets() -> Vec<Vec<Task>> {
    vec![
        // Single task.
        vec![test_task(0, 10, 3, 2, 100, 0, false)],
        // Two NLS tasks, back-to-back pipelining.
        vec![
            test_task(0, 10, 5, 5, 100, 0, false),
            test_task(1, 10, 5, 5, 120, 1, false),
        ],
        // LS over a long lp copy-in — exercises R3/R4.
        vec![
            test_task(0, 10, 4, 1, 60, 0, true),
            test_task(1, 50, 10, 1, 200, 1, false),
        ],
        // Two LS tasks over two lp tasks.
        vec![
            test_task(0, 5, 2, 1, 40, 0, true),
            test_task(1, 8, 3, 2, 60, 1, true),
            test_task(2, 30, 6, 4, 150, 2, false),
            test_task(3, 40, 8, 5, 200, 3, false),
        ],
        // Zero-length copy phases.
        vec![
            test_task(0, 10, 0, 0, 50, 0, false),
            test_task(1, 20, 0, 0, 100, 1, true),
        ],
        // Copies dominating execution.
        vec![
            test_task(0, 2, 9, 9, 100, 0, true),
            test_task(1, 3, 7, 8, 120, 1, false),
            test_task(2, 4, 6, 6, 140, 2, false),
        ],
        // LS task at *lower* priority than an NLS task.
        vec![
            test_task(0, 6, 2, 2, 50, 0, false),
            test_task(1, 8, 3, 3, 80, 1, true),
            test_task(2, 20, 5, 5, 160, 2, false),
        ],
        // Overloaded single task (deferred activations).
        vec![test_task(0, 30, 5, 5, 35, 0, true)],
    ]
}

/// Release-plan patterns per set: synchronous, staggered, burst, overload.
fn corpus_plans(set: &TaskSet) -> Vec<ReleasePlan> {
    let n = set.len() as i64;
    let mut plans = vec![
        // Synchronous critical instant, repeating.
        ReleasePlan::periodic(set, Time::from_ticks(HORIZON)),
        // Staggered by index.
        ReleasePlan::from_pairs(
            set.iter()
                .enumerate()
                .map(|(i, t)| {
                    (
                        t.id(),
                        (0..5)
                            .map(|j| Time::from_ticks(i as i64 * 7 + j * 90))
                            .collect(),
                    )
                })
                .collect(),
        ),
        // Burst: everyone shortly after the lowest-priority task.
        ReleasePlan::from_pairs(
            set.iter()
                .enumerate()
                .map(|(i, t)| {
                    let off = if i as i64 == n - 1 { 0 } else { 3 };
                    (
                        t.id(),
                        (0..4).map(|j| Time::from_ticks(off + j * 110)).collect(),
                    )
                })
                .collect(),
        ),
    ];
    // Seeded sporadic jitter.
    for seed in [1u64, 42, 4242] {
        let mut rng = StdRng::seed_from_u64(seed);
        plans.push(ReleasePlan::from_pairs(
            set.iter()
                .map(|t| {
                    let mut at = Time::from_ticks(rng.gen_range(0..20));
                    let mut rel = Vec::new();
                    while at < Time::from_ticks(HORIZON) {
                        rel.push(at);
                        let gap = t
                            .arrival()
                            .min_inter_arrival()
                            .expect("corpus tasks are sporadic")
                            .as_ticks()
                            + rng.gen_range(0i64..30);
                        at = at + Time::from_ticks(gap);
                    }
                    (t.id(), rel)
                })
                .collect(),
        ));
    }
    plans
}

fn assert_identical(new: &SimResult, old: &SimResult, what: &str, si: usize, pi: usize) {
    assert_eq!(
        new.events(),
        old.events(),
        "{what}: events diverge on set {si}, plan {pi}"
    );
    assert_eq!(
        new.jobs(),
        old.jobs(),
        "{what}: job records diverge on set {si}, plan {pi}"
    );
    assert_eq!(
        new.interval_starts(),
        old.interval_starts(),
        "{what}: interval starts diverge on set {si}, plan {pi}"
    );
    // Belt and braces: the full Debug rendering, byte for byte.
    assert_eq!(
        format!("{new:?}"),
        format!("{old:?}"),
        "{what}: debug rendering diverges on set {si}, plan {pi}"
    );
}

#[test]
fn kernel_matches_legacy_simulators_on_corpus() {
    let horizon = Time::from_ticks(HORIZON);
    let mut cases = 0usize;
    for (si, tasks) in corpus_sets().into_iter().enumerate() {
        let set = TaskSet::new(tasks).expect("corpus set is valid");
        for (pi, plan) in corpus_plans(&set).into_iter().enumerate() {
            let proposed = simulate(&set, &plan, Policy::Proposed, horizon);
            let wp = simulate(&set, &plan, Policy::WaslyPellizzoni, horizon);
            let nps = simulate(&set, &plan, Policy::Nps, horizon);

            assert_identical(
                &proposed,
                &legacy::interval_run(&set, &plan, true, horizon),
                "proposed vs interval_sim(ls=true)",
                si,
                pi,
            );
            assert_identical(
                &wp,
                &legacy::interval_run(&set, &plan, false, horizon),
                "wp vs interval_sim(ls=false)",
                si,
                pi,
            );
            assert_identical(
                &nps,
                &legacy::nps_run(&set, &plan, horizon),
                "nps vs nps_sim",
                si,
                pi,
            );
            cases += 1;
        }
    }
    assert!(cases >= 48, "corpus unexpectedly small: {cases} cases");
}

#[test]
fn registry_policies_match_legacy_by_name() {
    let horizon = Time::from_ticks(HORIZON);
    let registry = pmcs_sim::Registry::standard();
    let set = TaskSet::new(vec![
        test_task(0, 5, 2, 1, 40, 0, true),
        test_task(1, 30, 6, 4, 150, 1, false),
        test_task(2, 40, 8, 5, 200, 2, false),
    ])
    .expect("valid set");
    let plan = ReleasePlan::periodic(&set, horizon);

    for (name, policy) in registry.iter() {
        let new = pmcs_sim::simulate_with(&set, &plan, policy, horizon);
        let old = match name {
            "proposed" => legacy::interval_run(&set, &plan, true, horizon),
            "wp" => legacy::interval_run(&set, &plan, false, horizon),
            "nps" | "nps-classic" => legacy::nps_run(&set, &plan, horizon),
            other => panic!("unexpected registry entry {other:?}"),
        };
        assert_identical(&new, &old, name, 0, 0);
    }
}

#[test]
fn job_id_task_accessor_used_by_oracle_exists() {
    // Guards the oracle's adaptation seams: JobId::new + task() round-trip.
    let id = pmcs_model::JobId::new(TaskId(3), 7);
    assert_eq!(id.task(), TaskId(3));
}
