//! Property tests for the simulation-vs-analysis cross-validation layer:
//! the analyzer and simulator registries stay aligned, and on random
//! small task sets no registered approach is refuted by adversarial
//! simulation — under the exact engine and under both LP backends.

use proptest::prelude::*;

use pmcs_analysis::{cross_validate, AnalysisConfig, AnalysisContext, Registry};
use pmcs_core::BackendKind;
use pmcs_model::TaskSet;
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

/// The analyzer registry and the simulator registry agree on approach
/// names *and presentation order*, so every standard analysis column can
/// be cross-validated by name and reports line up across the stack.
#[test]
fn registries_agree_on_names_and_ordering() {
    let analyzers = Registry::standard();
    let sims = pmcs_sim::Registry::standard();
    assert_eq!(analyzers.labels(), sims.labels());
}

fn random_set(n: usize, util_step: u8, seed: u64) -> TaskSet {
    TaskSetGenerator::new(
        TaskSetConfig {
            n,
            utilization: f64::from(util_step) * 0.05,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        },
        seed,
    )
    .generate()
}

proptest! {
    // Each case analyzes + simulates every approach under three engine
    // stacks, so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// No registered approach is refuted on random small sets: traces
    /// satisfy Properties 1–4 and R1–R6, and observed worst responses
    /// stay within the analytical WCRT — whichever engine stack produced
    /// the bounds (exact, MILP on the dense LP backend, MILP on the
    /// revised backend).
    #[test]
    fn no_refutations_on_random_sets_under_any_backend(
        n in 3usize..=5,
        util_step in 2u8..=8,
        seed in any::<u64>(),
    ) {
        let set = random_set(n, util_step, seed);
        let approaches = Registry::standard().labels();
        for backend in [None, Some(BackendKind::Dense), Some(BackendKind::Revised)] {
            let cfg = AnalysisConfig::default().with_lp_backend(backend);
            let ctx = AnalysisContext::new(&cfg);
            for approach in &approaches {
                let (_, counters, refutations) =
                    cross_validate(&set, approach, 3, seed, &ctx).expect("cross-validation runs");
                prop_assert_eq!(counters.plans_run, 3, "{}", approach);
                prop_assert!(
                    refutations.is_empty(),
                    "{} refuted under backend {:?}: {:?}",
                    approach,
                    backend,
                    refutations,
                );
            }
        }
    }
}
