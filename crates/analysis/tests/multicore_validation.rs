//! Integration tests for the multi-core contention layer: degeneracy
//! differentials (contention-free and `M = 1` platforms are
//! byte-identical to the legacy single-core path, down to cache
//! counters and certificates), zero-refutation cross-validation of a
//! regulated two-core platform on every LP backend, a negative test
//! showing the arbiter refutes a deliberately weakened inflation
//! bound, and a property test that simulated bus service times never
//! exceed the analytical inflation.

use proptest::prelude::*;

use pmcs_analysis::{
    cross_validate_platform, refute_bus_bounds, AnalysisConfig, AnalysisContext, Analyzer,
    ContentionAware, ProposedAnalyzer, RefutationKind,
};
use pmcs_cert::{encode_certificate_set, CertificateSet, UpperProof};
use pmcs_core::{certify_task_set, BackendKind, ExactEngine, Inflation};
use pmcs_model::{BusModel, CoreId, Phase, Platform, TaskId, TaskSet, Time};
use pmcs_sim::bus::TransferReq;
use pmcs_workload::{adversarial_specs, TaskSetConfig, TaskSetGenerator};

/// A light, memory-moderate workload in the fine-grained regulation
/// regime (small copies relative to a 200-tick bus period).
fn light_set(seed: u64) -> TaskSet {
    TaskSetGenerator::new(
        TaskSetConfig {
            n: 3,
            utilization: 0.25,
            gamma: 0.15,
            ..TaskSetConfig::default()
        },
        seed,
    )
    .generate()
}

/// Encodes a certificate bundle with every DP memo table in a canonical
/// order. The emitter dumps memo tables in `HashMap` iteration order,
/// which varies run to run; the checker is order-insensitive, so the
/// byte-identity claim is up to that permutation.
fn canonical_certs(mut certs: CertificateSet) -> String {
    for w in &mut certs.windows {
        if let UpperProof::DpTable(entries) = &mut w.upper {
            entries.sort_by_key(|e| format!("{e:?}"));
        }
    }
    encode_certificate_set(&certs)
}

/// Asserts that analyzing `set` through a [`ContentionAware`] decorator
/// over `bus` is indistinguishable from the undecorated analyzer: same
/// approach name, byte-identical report, identical cache counters from
/// fresh contexts, and an identical certificate bundle.
fn assert_degenerate(set: &TaskSet, bus: &BusModel) {
    let inflation = Inflation::for_core(bus, CoreId(0));
    assert!(inflation.is_identity(), "expected a degenerate platform");

    let cfg = AnalysisConfig::default();
    let plain_ctx = AnalysisContext::new(&cfg);
    let plain = ProposedAnalyzer
        .analyze_with(set, &plain_ctx)
        .expect("plain analysis");

    let decorated = ContentionAware::for_core(ProposedAnalyzer, bus, CoreId(0));
    assert_eq!(decorated.name(), "proposed", "identity decorator renames");
    let wrapped_ctx = AnalysisContext::new(&cfg);
    let wrapped = decorated
        .analyze_with(set, &wrapped_ctx)
        .expect("decorated analysis");

    assert_eq!(plain, wrapped, "identity decorator changed the report");
    assert_eq!(
        plain_ctx.cache_stats(),
        wrapped_ctx.cache_stats(),
        "identity decorator changed the cache behaviour"
    );

    // The inflated set is the same set, so its certificate bundle must
    // encode byte-for-byte identically.
    let engine = ExactEngine::default();
    let (_, plain_certs) = certify_task_set(set, &engine).expect("plain certificates");
    let inflated = inflation.inflate_set(set).expect("identity inflation");
    assert_eq!(&inflated, set, "identity inflation changed the set");
    let (_, wrapped_certs) = certify_task_set(&inflated, &engine).expect("wrapped certificates");
    assert_eq!(
        canonical_certs(plain_certs),
        canonical_certs(wrapped_certs),
        "identity decorator changed the certificates"
    );
}

#[test]
fn contention_free_platform_matches_the_legacy_path() {
    assert_degenerate(&light_set(11), &BusModel::contention_free());
}

#[test]
fn single_core_regulated_platform_matches_the_legacy_path() {
    // A lone regulated core has no rivals: σ = 0, identity inflation.
    let bus =
        BusModel::regulated(Time::from_ticks(200), vec![Time::from_ticks(100)]).expect("Q ≤ P");
    assert!(!bus.is_contended());
    assert_degenerate(&light_set(12), &bus);
}

/// Builds a regulated two-core platform in the schedulable regime.
fn two_core_platform() -> Platform {
    let bus = BusModel::uniform(Time::from_ticks(200), 2, Time::from_ticks(100)).expect("ΣQ = P");
    Platform::builder()
        .core(light_set(2))
        .core(light_set(102))
        .bus(bus)
        .build()
        .expect("two-core platform")
}

#[test]
fn two_core_cross_validation_is_clean_on_every_backend() {
    let platform = two_core_platform();
    let backends = [None, Some(BackendKind::Dense), Some(BackendKind::Revised)];
    for backend in backends {
        let cfg = AnalysisConfig::default().with_lp_backend(backend);
        let ctx = AnalysisContext::new(&cfg);
        let pv = cross_validate_platform(&platform, "proposed", 2, 0x5eed_0001, &ctx)
            .expect("platform validation");
        assert!(
            pv.schedulable(),
            "backend {backend:?}: inflated sets should be schedulable in this regime"
        );
        assert!(
            pv.transfers_checked > 0,
            "backend {backend:?}: the bus layer never ran"
        );
        assert!(
            pv.clean(),
            "backend {backend:?}: refutations: {:?}",
            pv.refutations()
        );
    }
}

/// Two starved cores colliding on the bus: the hard-regulation arbiter
/// must refute the raw-demand bound (which pretends contention away)
/// while the analytical inflation survives the very same trace.
#[test]
fn weakened_identity_bound_is_refuted_where_inflation_is_not() {
    let bus = BusModel::uniform(Time::from_ticks(10), 2, Time::from_ticks(2)).expect("ΣQ ≤ P");
    let spec = adversarial_specs(1, 0xbad_b0a7)[0];
    let requests: Vec<TransferReq> = (0..2)
        .map(|core| TransferReq {
            core: CoreId(core),
            task: TaskId(core),
            phase: Phase::CopyIn,
            release: Time::ZERO,
            demand: Time::from_ticks(6),
        })
        .collect();

    // Weakened bound: raw demand, as if each core owned the bus.
    let weakened = refute_bus_bounds(&bus, &requests, &|_, d| d, "proposed", spec);
    assert_eq!(
        weakened.len(),
        2,
        "every starved transfer must overrun the contention-blind bound"
    );
    for r in &weakened {
        assert!(
            matches!(r.kind, RefutationKind::BusOverrun { observed, bound, .. }
                if observed > bound),
            "unexpected refutation: {r:?}"
        );
    }

    // The analytical inflation over-covers the same trace.
    let sound = refute_bus_bounds(
        &bus,
        &requests,
        &|core, d| Inflation::for_core(&bus, core).inflate(d),
        "proposed",
        spec,
    );
    assert!(sound.is_empty(), "sound bound refuted: {sound:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-core transfer streams through the hard-regulation
    /// arbiter never observe a service time above the analytical
    /// inflation — the soundness contract the bus layer of
    /// [`cross_validate_platform`] enforces on real traces.
    #[test]
    fn arbiter_service_times_never_exceed_the_inflation(
        p in 4i64..=60,
        cores in 2usize..=4,
        q in 1i64..=30,
        reqs in prop::collection::vec((0usize..4, 0i64..200, 1i64..40, any::<bool>()), 1..24),
    ) {
        let q = q.clamp(1, (p / cores as i64).max(1));
        let bus = BusModel::uniform(Time::from_ticks(p), cores, Time::from_ticks(q))
            .expect("ΣQ ≤ P by clamping");
        let requests: Vec<TransferReq> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(core, release, demand, out))| TransferReq {
                core: CoreId((core % cores) as u32),
                task: TaskId(i as u32),
                phase: if out { Phase::CopyOut } else { Phase::CopyIn },
                release: Time::from_ticks(release),
                demand: Time::from_ticks(demand),
            })
            .collect();
        let spec = adversarial_specs(1, 0x51_5eed)[0];
        let overruns = refute_bus_bounds(
            &bus,
            &requests,
            &|core, d| Inflation::for_core(&bus, core).inflate(d),
            "proposed",
            spec,
        );
        prop_assert!(overruns.is_empty(), "inflation refuted: {:?}", overruns);
    }
}
