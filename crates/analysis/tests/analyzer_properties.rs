//! Property tests for the analysis facade: every registered analyzer is
//! deterministic (same set + config → same report) and agrees with the
//! legacy entry point it wraps.

use proptest::prelude::*;

use pmcs_analysis::{AnalysisConfig, AnalysisContext, Registry};
use pmcs_baselines::{NpsAnalysis, WpAnalysis};
use pmcs_core::{analyze_task_set, ExactEngine};
use pmcs_model::TaskSet;
use pmcs_workload::{TaskSetConfig, TaskSetGenerator};

fn random_set(n: usize, util_step: u8, seed: u64) -> TaskSet {
    TaskSetGenerator::new(
        TaskSetConfig {
            n,
            utilization: f64::from(util_step) * 0.05,
            gamma: 0.3,
            beta: 0.4,
            ..TaskSetConfig::default()
        },
        seed,
    )
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same set + same config → identical reports, for every registered
    /// analyzer, with and without the cache layer.
    #[test]
    fn analyzers_are_deterministic(
        n in 3usize..=5,
        util_step in 2u8..=8,
        seed in any::<u64>(),
    ) {
        let set = random_set(n, util_step, seed);
        let registry = Registry::standard();
        for cfg in [AnalysisConfig::default(), AnalysisConfig::default().with_cache(false)] {
            for analyzer in registry.iter() {
                let a = analyzer.analyze(&set, &cfg).expect("analysis");
                let b = analyzer.analyze(&set, &cfg).expect("analysis");
                prop_assert_eq!(&a, &b, "{} is nondeterministic", analyzer.name());
                prop_assert_eq!(a.tasks.len(), set.len());
            }
        }
    }

    /// Each facade analyzer reproduces its legacy entry point's verdicts
    /// exactly — per task, not just the set-level bool.
    #[test]
    fn analyzers_agree_with_legacy_entry_points(
        n in 3usize..=5,
        util_step in 2u8..=8,
        seed in any::<u64>(),
    ) {
        let set = random_set(n, util_step, seed);
        let registry = Registry::standard();
        let ctx = AnalysisContext::new(&AnalysisConfig::default());

        let proposed = registry.require("proposed").unwrap()
            .analyze_with(&set, &ctx).expect("analysis");
        let legacy = analyze_task_set(&set, &ExactEngine::default()).expect("analysis");
        prop_assert_eq!(proposed.schedulable(), legacy.schedulable());
        prop_assert_eq!(proposed.rounds, Some(legacy.rounds()));
        prop_assert_eq!(proposed.assignment.as_ref(), Some(legacy.assignment()));
        for (t, v) in proposed.tasks.iter().zip(legacy.verdicts()) {
            prop_assert_eq!(t.task, v.task);
            prop_assert_eq!(t.wcrt, v.wcrt);
            prop_assert_eq!(t.schedulable, v.schedulable);
        }

        let wp = registry.require("wp").unwrap()
            .analyze_with(&set, &ctx).expect("analysis");
        for (t, r) in wp.tasks.iter().zip(WpAnalysis::default().analyze(&set)) {
            prop_assert_eq!(t.task, r.task);
            prop_assert_eq!(t.wcrt, r.wcrt);
            prop_assert_eq!(t.schedulable, r.schedulable);
        }

        for (name, legacy) in [
            ("nps", NpsAnalysis::with_carry()),
            ("nps-classic", NpsAnalysis::new()),
        ] {
            let report = registry.require(name).unwrap()
                .analyze_with(&set, &ctx).expect("analysis");
            for (t, r) in report.tasks.iter().zip(legacy.analyze(&set)) {
                prop_assert_eq!(t.task, r.task);
                prop_assert_eq!(t.wcrt, r.wcrt);
                prop_assert_eq!(t.schedulable, r.schedulable);
            }
        }
    }
}
