//! Unified analysis facade for the PMCS co-scheduling analyses.
//!
//! Every schedulability approach the paper evaluates — the proposed
//! MILP-plus-greedy-marking protocol, the Wasly–Pellizzoni baseline and
//! the two NPS variants — hides behind one [`Analyzer`] trait returning
//! one [`ApproachReport`] shape. A dynamic [`Registry`] replaces the old
//! fixed-arity `[bool; 4]` dispatch, and the delay-engine configuration
//! (cache, audit, solver limits, worker count) lives in one typed
//! [`AnalysisConfig`] resolved exactly once at the CLI edge.
//!
//! ```text
//!          CLI flags + env (PMCS_JOBS, PMCS_AUDIT)
//!                        │  AnalysisConfig::resolve  (CLI edge, once)
//!                        ▼
//!                 AnalysisConfig ──────────┐
//!                        │                 │
//!        EngineStack::build (per worker)   │
//!                        ▼                 ▼
//!   CachedEngine ▸ AuditedEngine ▸ ExactEngine     Registry::standard()
//!                        │                 │
//!                        └── AnalysisContext ── Analyzer::analyze_with
//!                                          │
//!                                          ▼
//!                                   ApproachReport
//! ```
//!
//! # Example
//!
//! ```
//! use pmcs_analysis::{AnalysisConfig, Analyzer, Registry};
//! use pmcs_core::window::test_task;
//! use pmcs_model::TaskSet;
//!
//! let set = TaskSet::new(vec![
//!     test_task(0, 10, 2, 2, 1_000, 0, false),
//!     test_task(1, 20, 4, 4, 2_000, 1, false),
//! ]).unwrap();
//!
//! let cfg = AnalysisConfig::default();
//! for analyzer in Registry::standard().iter() {
//!     let report = analyzer.analyze(&set, &cfg).unwrap();
//!     println!("{}: {}", analyzer.name(), report.schedulable());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
pub mod approaches;
pub mod config;
pub mod cross_validate;
pub mod engine_stack;
pub mod error;
pub mod multicore;
pub mod registry;
pub mod report;

pub use analyzer::{AnalysisContext, Analyzer};
pub use approaches::{NpsAnalyzer, ProposedAnalyzer, WpAnalyzer, WpMilpAnalyzer};
pub use config::{
    AnalysisConfig, CliOverrides, CROSS_VALIDATE_ENV_VAR, EMIT_CERTS_ENV_VAR, JOBS_ENV_VAR,
    LP_BACKEND_ENV_VAR,
};
pub use cross_validate::{
    cross_validate, cross_validate_bounds, cross_validate_bounds_in, cross_validate_report,
    cross_validate_report_in, plan_horizon, Refutation, RefutationKind, SimCounters, SimScratch,
};
pub use engine_stack::{milp_engine, AuditedEngine, EngineStack, StackEngine};
pub use error::AnalysisError;
pub use multicore::{
    cross_validate_platform, extract_transfers, extract_transfers_into, refute_bus_bounds,
    ContentionAware, CoreValidation, PlatformValidation,
};
pub use registry::Registry;
pub use report::{ApproachReport, TaskReport};
