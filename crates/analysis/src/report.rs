//! The uniform per-task report every [`Analyzer`](crate::Analyzer)
//! returns.
//!
//! Pre-facade, each approach spoke its own dialect — the proposed
//! pipeline returned a `SchedulabilityReport`, WP a `Vec<WpTaskResult>`,
//! NPS a `Vec<NpsTaskResult>` — and sweep code flattened all of them to a
//! bare `bool`, discarding WCRT bounds and the LS assignment.
//! [`ApproachReport`] keeps the full verdict while staying
//! approach-agnostic: fields an approach cannot produce (LS assignment,
//! greedy rounds for the baselines) are simply `None`.

use std::fmt;

use pmcs_baselines::{NpsTaskResult, WpTaskResult};
use pmcs_core::schedulability::{LsAssignment, SchedulabilityReport};
use pmcs_core::SolverStats;
use pmcs_model::{Sensitivity, TaskId, TaskSet, Time};

/// One task's verdict inside an [`ApproachReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// The analyzed task.
    pub task: TaskId,
    /// WCRT bound under this approach ([`Time::MAX`] on divergence).
    pub wcrt: Time,
    /// The task's relative deadline.
    pub deadline: Time,
    /// `wcrt ≤ deadline`.
    pub schedulable: bool,
    /// Final LS/NLS marking, for approaches that have one (`None` for
    /// the baselines, which have no sensitivity concept).
    pub sensitivity: Option<Sensitivity>,
}

/// The uniform outcome of one analysis approach on one task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproachReport {
    /// Stable name of the approach that produced this report.
    pub approach: String,
    /// Per-task verdicts, in decreasing priority order.
    pub tasks: Vec<TaskReport>,
    /// Final latency-sensitivity assignment, where the approach chooses
    /// one (the proposed greedy marking); `None` otherwise.
    pub assignment: Option<LsAssignment>,
    /// Greedy rounds performed, where applicable.
    pub rounds: Option<usize>,
    /// Solver effort this analysis spent (B&B nodes, LP pivots, presolve
    /// reductions, warm-start hits). All-zero for closed-form approaches
    /// and for analyzers run outside an engine-stack context.
    pub solver: SolverStats,
}

impl ApproachReport {
    /// `true` iff every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.tasks.iter().all(|t| t.schedulable)
    }

    /// The verdict for one task.
    pub fn verdict(&self, task: TaskId) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.task == task)
    }

    /// Builds a report from the proposed pipeline's
    /// [`SchedulabilityReport`].
    pub fn from_schedulability(approach: &str, r: &SchedulabilityReport) -> Self {
        ApproachReport {
            approach: approach.to_string(),
            tasks: r
                .verdicts()
                .iter()
                .map(|v| TaskReport {
                    task: v.task,
                    wcrt: v.wcrt,
                    deadline: v.deadline,
                    schedulable: v.schedulable,
                    sensitivity: Some(v.sensitivity),
                })
                .collect(),
            assignment: Some(r.assignment().clone()),
            rounds: Some(r.rounds()),
            solver: SolverStats::default(),
        }
    }

    /// A copy carrying the solver effort spent producing it.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverStats) -> Self {
        self.solver = solver;
        self
    }

    /// Builds a report from the closed-form WP results (deadlines looked
    /// up in `set`; tasks absent from the set keep a `Time::MAX`
    /// deadline placeholder, which cannot happen for results produced by
    /// `WpAnalysis::analyze` on the same set).
    pub fn from_wp(approach: &str, set: &TaskSet, results: &[WpTaskResult]) -> Self {
        ApproachReport {
            approach: approach.to_string(),
            tasks: results
                .iter()
                .map(|r| TaskReport {
                    task: r.task,
                    wcrt: r.wcrt,
                    deadline: set.get(r.task).map(|t| t.deadline()).unwrap_or(Time::MAX),
                    schedulable: r.schedulable,
                    sensitivity: None,
                })
                .collect(),
            assignment: None,
            rounds: None,
            solver: SolverStats::default(),
        }
    }

    /// Builds a report from NPS results (deadline lookup as in
    /// [`ApproachReport::from_wp`]).
    pub fn from_nps(approach: &str, set: &TaskSet, results: &[NpsTaskResult]) -> Self {
        ApproachReport {
            approach: approach.to_string(),
            tasks: results
                .iter()
                .map(|r| TaskReport {
                    task: r.task,
                    wcrt: r.wcrt,
                    deadline: set.get(r.task).map(|t| t.deadline()).unwrap_or(Time::MAX),
                    schedulable: r.schedulable,
                    sensitivity: None,
                })
                .collect(),
            assignment: None,
            rounds: None,
            solver: SolverStats::default(),
        }
    }
}

impl fmt::Display for ApproachReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}",
            self.approach,
            if self.schedulable() {
                "SCHEDULABLE"
            } else {
                "NOT SCHEDULABLE"
            }
        )?;
        if let Some(rounds) = self.rounds {
            write!(f, " after {rounds} round(s)")?;
        }
        if let Some(assignment) = &self.assignment {
            write!(f, "; {assignment}")?;
        }
        writeln!(f)?;
        for t in &self.tasks {
            write!(f, "  {} R={} D={}", t.task, t.wcrt, t.deadline)?;
            if let Some(s) = t.sensitivity {
                write!(f, " [{s}]")?;
            }
            writeln!(f, " {}", if t.schedulable { "ok" } else { "MISS" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_baselines::{NpsAnalysis, WpAnalysis};
    use pmcs_core::window::test_task;
    use pmcs_core::{analyze_task_set, ExactEngine};

    fn demo_set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .expect("valid task set")
    }

    #[test]
    fn schedulability_report_round_trips() {
        let set = demo_set();
        let legacy = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let report = ApproachReport::from_schedulability("proposed", &legacy);
        assert_eq!(report.schedulable(), legacy.schedulable());
        assert_eq!(report.rounds, Some(legacy.rounds()));
        assert_eq!(report.assignment.as_ref(), Some(legacy.assignment()));
        for (t, v) in report.tasks.iter().zip(legacy.verdicts()) {
            assert_eq!(t.task, v.task);
            assert_eq!(t.wcrt, v.wcrt);
            assert_eq!(t.sensitivity, Some(v.sensitivity));
        }
        assert!(report.verdict(TaskId(0)).is_some());
        assert!(report.verdict(TaskId(99)).is_none());
    }

    #[test]
    fn baseline_reports_carry_deadlines_but_no_assignment() {
        let set = demo_set();
        let wp = ApproachReport::from_wp("wp", &set, &WpAnalysis::default().analyze(&set));
        let nps = ApproachReport::from_nps("nps", &set, &NpsAnalysis::default().analyze(&set));
        for report in [&wp, &nps] {
            assert!(report.assignment.is_none());
            assert!(report.rounds.is_none());
            for t in &report.tasks {
                assert_eq!(t.deadline, set.get(t.task).unwrap().deadline());
                assert!(t.sensitivity.is_none());
            }
        }
    }

    #[test]
    fn display_mentions_approach_and_verdicts() {
        let set = demo_set();
        let legacy = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        let s = ApproachReport::from_schedulability("proposed", &legacy).to_string();
        assert!(s.contains("[proposed]"));
        assert!(s.contains("SCHEDULABLE"));
        assert!(s.contains("τ0"));
    }
}
