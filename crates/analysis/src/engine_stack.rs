//! The composable delay-engine stack.
//!
//! Pre-facade, engine assembly was scattered: the bench sweeps hid a
//! `WorkerEngine` enum special-casing the cached/uncached split, and the
//! `PMCS_AUDIT` environment variable flipped the MILP engine into audited
//! mode from deep inside `pmcs-core`. Here the stack is built in one
//! place, from one [`AnalysisConfig`], as plain decorator layers:
//!
//! ```text
//! CachedEngine           (cfg.cache — window-level delay-bound memo)
//!   └─ AuditedEngine     (cfg.audit — cross-check vs audited MILP)
//!        └─ ExactEngine  (always — memoized-DP base, cfg.max_states)
//! ```
//!
//! The cache sits outermost so that audited solves only run on cache
//! misses. Each layer implements [`StackEngine`] — [`DelayEngine`] plus
//! cache-statistics observability — so the stack composes without any
//! enum dispatch and a new layer is one `impl` away.

use std::fmt;
use std::sync::Arc;

use pmcs_core::bnb::BnbConfig;
use pmcs_core::wcrt::DelayBound;
use pmcs_core::{
    BackendKind, CacheStats, CachedEngine, CoreError, DelayEngine, ExactEngine, MilpEngine,
    SharedCachedEngine, SharedDelayCache, SolverStats, WindowModel,
};

use crate::config::AnalysisConfig;

/// A delay engine usable as a stack layer: a [`DelayEngine`] that can be
/// moved to a worker thread and reports cache statistics (zero for
/// layers that do not cache) plus cumulative solver effort.
pub trait StackEngine: DelayEngine + Send {
    /// Hit/miss counters of every cache in this layer and below.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Cumulative solver effort (nodes, LP pivots, presolve reductions,
    /// warm starts) of this layer and below.
    fn solver_stats(&self) -> SolverStats {
        SolverStats::default()
    }
}

impl StackEngine for ExactEngine {
    fn solver_stats(&self) -> SolverStats {
        self.solver_stats()
    }
}

impl StackEngine for MilpEngine {
    fn solver_stats(&self) -> SolverStats {
        self.solver_stats()
    }
}

impl<E: StackEngine> StackEngine for CachedEngine<E> {
    fn cache_stats(&self) -> CacheStats {
        let mut stats = self.stats();
        stats.merge(self.inner().cache_stats());
        stats
    }

    fn solver_stats(&self) -> SolverStats {
        self.inner().solver_stats()
    }
}

impl<E: StackEngine> StackEngine for SharedCachedEngine<E> {
    /// Local counters only (this stack's lookups into the shared cache),
    /// so per-worker merging never double-counts — see
    /// [`SharedDelayCache::stats`] for the global view.
    fn cache_stats(&self) -> CacheStats {
        let mut stats = self.stats();
        stats.merge(self.inner().cache_stats());
        stats
    }

    fn solver_stats(&self) -> SolverStats {
        self.inner().solver_stats()
    }
}

impl DelayEngine for Box<dyn StackEngine> {
    fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
        (**self).max_total_delay(w)
    }
}

impl StackEngine for Box<dyn StackEngine> {
    fn cache_stats(&self) -> CacheStats {
        (**self).cache_stats()
    }

    fn solver_stats(&self) -> SolverStats {
        (**self).solver_stats()
    }
}

/// Decorator that cross-checks every delay bound against the paper's
/// MILP formulation solved in audited mode (exact rational arithmetic,
/// see [`pmcs_milp::audit`]).
///
/// * Both bounds exact → they must agree tick-for-tick.
/// * Inner bound inexact (budget fallback) → it must still dominate the
///   certified exact optimum (safety of the over-approximation).
/// * Reference inexact → nothing can be certified; the inner bound
///   passes through (the MILP relaxation bound is itself audit-checked).
///
/// Exponentially slower than the bare engine on large windows; meant for
/// validation runs, enabled by `AnalysisConfig { audit: true, .. }`.
#[derive(Debug)]
pub struct AuditedEngine<E> {
    inner: E,
    reference: MilpEngine,
}

impl<E> AuditedEngine<E> {
    /// Wraps `inner` with an audited-MILP cross-check.
    pub fn new(inner: E) -> Self {
        AuditedEngine {
            inner,
            reference: MilpEngine::audited(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: DelayEngine> DelayEngine for AuditedEngine<E> {
    fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
        let bound = self.inner.max_total_delay(w)?;
        let reference = self.reference.max_total_delay(w)?;
        if reference.exact {
            if bound.exact && bound.delay != reference.delay {
                return Err(CoreError::AuditFailed {
                    check: "engine-vs-audited-milp",
                    detail: format!(
                        "engine bound {} disagrees with the audited MILP optimum {}",
                        bound.delay, reference.delay
                    ),
                });
            }
            if !bound.exact && bound.delay < reference.delay {
                return Err(CoreError::AuditFailed {
                    check: "fallback-dominates-optimum",
                    detail: format!(
                        "inexact fallback bound {} is below the audited optimum {}",
                        bound.delay, reference.delay
                    ),
                });
            }
        }
        Ok(bound)
    }
}

impl<E: StackEngine> StackEngine for AuditedEngine<E> {
    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    fn solver_stats(&self) -> SolverStats {
        let mut stats = self.inner.solver_stats();
        stats.merge(self.reference.solver_stats());
        stats
    }
}

/// Effort gate for the MILP stack base: windows whose formulation has
/// more integral variables than this are not solved — the engine
/// substitutes the formulation's deterministic safe delay cap instead
/// (see `MilpEngine::bin_budget`). Calibrated on the Figure 2 workloads,
/// where windows below this size solve in at most a few thousand
/// branch-and-bound nodes and windows above it exhaust any node budget
/// (the big-M relaxation cannot prune the symmetric placement tree).
const MILP_BASE_BIN_BUDGET: usize = 60;

/// Node budget backstop for gated sweeps: generous headroom over the
/// worst observed node count (< 2 000) for windows under
/// [`MILP_BASE_BIN_BUDGET`], so both LP backends solve every admitted
/// window to proven optimality and agree on every verdict.
const MILP_BASE_MAX_NODES: usize = 20_000;

/// The assembled engine stack: a boxed pile of [`StackEngine`] layers
/// built by [`EngineStack::build`] from one [`AnalysisConfig`].
///
/// Holds per-call scratch and cache state behind interior mutability, so
/// it is cheap to call but not `Sync`: parallel drivers build one stack
/// per worker (see [`AnalysisContext`](crate::AnalysisContext)).
pub struct EngineStack {
    engine: Box<dyn StackEngine>,
    layers: &'static str,
}

impl EngineStack {
    /// Assembles the stack described by `cfg` with a private (per-stack)
    /// window cache when `cfg.cache` is on.
    ///
    /// `cfg.lp_backend` picks the base: `None` keeps the exact
    /// combinatorial engine, `Some(kind)` substitutes the MILP engine on
    /// that LP backend (with the revised backend this is the incremental
    /// presolve-once / warm-start pipeline).
    pub fn build(cfg: &AnalysisConfig) -> Self {
        Self::assemble(cfg, None)
    }

    /// Like [`build`](EngineStack::build), but the window-cache layer
    /// (when `cfg.cache` is on) reads and writes `shared` instead of a
    /// private map, so every stack handed the same `Arc` — bench workers,
    /// server threads — shares one warm cache. Bounds are
    /// content-addressed, so results are identical either way; only
    /// hit/miss telemetry depends on who solved a window first. With
    /// `cfg.cache` off the `Arc` is ignored.
    pub fn build_with_cache(cfg: &AnalysisConfig, shared: Arc<SharedDelayCache>) -> Self {
        Self::assemble(cfg, Some(shared))
    }

    fn assemble(cfg: &AnalysisConfig, shared: Option<Arc<SharedDelayCache>>) -> Self {
        // The audited (but uncached) pile plus its layer names with and
        // without the cache wrapper; the cache layer itself is decided
        // once, below, so private and shared caching cannot drift.
        let (inner, plain, cached): (Box<dyn StackEngine>, &'static str, &'static str) =
            match cfg.lp_backend {
                None => {
                    let mut base = ExactEngine::with_max_states(cfg.max_states);
                    // Branch-and-bound rescues are exact but carry no
                    // replayable DP table, so certificate runs force the
                    // rescue off and keep the certifiable fallback cap.
                    let bnb = cfg.bnb_jobs > 0 && !cfg.emit_certs;
                    if bnb {
                        base = base.with_branch_and_bound(BnbConfig {
                            jobs: cfg.bnb_jobs,
                            lp_depth: cfg.bnb_lp_depth,
                            ..BnbConfig::default()
                        });
                    }
                    match (cfg.audit, bnb) {
                        (false, false) => (Box::new(base) as _, "exact", "cached(exact)"),
                        (false, true) => (Box::new(base) as _, "exact+bnb", "cached(exact+bnb)"),
                        (true, false) => (
                            Box::new(AuditedEngine::new(base)) as _,
                            "audited(exact)",
                            "cached(audited(exact))",
                        ),
                        (true, true) => (
                            Box::new(AuditedEngine::new(base)) as _,
                            "audited(exact+bnb)",
                            "cached(audited(exact+bnb))",
                        ),
                    }
                }
                Some(kind) => {
                    let mut base = MilpEngine::new()
                        .with_backend(kind)
                        .with_bin_budget(Some(MILP_BASE_BIN_BUDGET));
                    base.limits.max_nodes = MILP_BASE_MAX_NODES;
                    match (cfg.audit, kind) {
                        (false, BackendKind::Dense) => {
                            (Box::new(base) as _, "milp:dense", "cached(milp:dense)")
                        }
                        (false, BackendKind::Revised) => {
                            (Box::new(base) as _, "milp:revised", "cached(milp:revised)")
                        }
                        (true, BackendKind::Dense) => (
                            Box::new(AuditedEngine::new(base)) as _,
                            "audited(milp:dense)",
                            "cached(audited(milp:dense))",
                        ),
                        (true, BackendKind::Revised) => (
                            Box::new(AuditedEngine::new(base)) as _,
                            "audited(milp:revised)",
                            "cached(audited(milp:revised))",
                        ),
                    }
                }
            };
        let (engine, layers): (Box<dyn StackEngine>, &'static str) = match (cfg.cache, shared) {
            (false, _) => (inner, plain),
            (true, None) => (Box::new(CachedEngine::new(inner)) as _, cached),
            (true, Some(shared)) => (
                Box::new(SharedCachedEngine::new(inner, shared)) as _,
                cached,
            ),
        };
        EngineStack { engine, layers }
    }

    /// Hit/miss counters of every caching layer in the stack.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Cumulative solver effort of every layer in the stack.
    pub fn solver_stats(&self) -> SolverStats {
        self.engine.solver_stats()
    }

    /// Human-readable layer composition, outermost first.
    pub fn layers(&self) -> &'static str {
        self.layers
    }
}

impl DelayEngine for EngineStack {
    fn max_total_delay(&self, w: &WindowModel) -> Result<DelayBound, CoreError> {
        self.engine.max_total_delay(w)
    }
}

impl fmt::Debug for EngineStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineStack")
            .field("layers", &self.layers)
            .finish()
    }
}

/// Builds the MILP engine the way the stack would: solver limits at
/// their defaults, audited mode from `cfg.audit`, LP backend from
/// `cfg.lp_backend` (the dense reference backend when unset). The
/// `pmcs-audit` CLI uses this instead of assembling engines by hand.
pub fn milp_engine(cfg: &AnalysisConfig) -> MilpEngine {
    let engine = if cfg.audit {
        MilpEngine::audited()
    } else {
        MilpEngine::new()
    };
    engine.with_backend(cfg.lp_backend.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_core::window::{test_task, WindowCase};
    use pmcs_model::{TaskId, TaskSet, Time};

    fn demo_window() -> WindowModel {
        let set = TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 5, 5, 1_000, 1, false),
        ])
        .expect("valid task set");
        WindowModel::build(&set, TaskId(1), WindowCase::Nls, Time::from_ticks(10))
            .expect("task id is in the set")
    }

    #[test]
    fn every_stack_shape_agrees_with_the_bare_engine() {
        let w = demo_window();
        let reference = ExactEngine::default()
            .max_total_delay(&w)
            .expect("engine result");
        for (cache, audit) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = AnalysisConfig {
                cache,
                audit,
                ..AnalysisConfig::default()
            };
            let stack = EngineStack::build(&cfg);
            let bound = stack.max_total_delay(&w).expect("stack result");
            assert_eq!(bound.delay, reference.delay, "stack {}", stack.layers());
        }
    }

    #[test]
    fn cached_stack_reports_hits_on_repeat_solves() {
        let cfg = AnalysisConfig::default();
        let stack = EngineStack::build(&cfg);
        let w = demo_window();
        let _ = stack.max_total_delay(&w).expect("stack result");
        let _ = stack.max_total_delay(&w).expect("stack result");
        let stats = stack.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn uncached_stack_reports_zero_stats() {
        let cfg = AnalysisConfig {
            cache: false,
            ..AnalysisConfig::default()
        };
        let stack = EngineStack::build(&cfg);
        let _ = stack.max_total_delay(&demo_window()).expect("stack result");
        assert_eq!(stack.cache_stats(), CacheStats::default());
    }

    #[test]
    fn audited_layer_passes_agreeing_bounds() {
        let audited = AuditedEngine::new(ExactEngine::default());
        let bound = audited.max_total_delay(&demo_window()).expect("agreement");
        assert!(bound.exact);
    }

    #[test]
    fn audited_layer_refutes_a_lying_engine() {
        /// An engine that returns an exact-but-wrong bound.
        #[derive(Debug)]
        struct Liar;
        impl DelayEngine for Liar {
            fn max_total_delay(&self, _: &WindowModel) -> Result<DelayBound, CoreError> {
                Ok(DelayBound {
                    delay: Time::from_ticks(1),
                    exact: true,
                    nodes: 0,
                })
            }
        }
        let audited = AuditedEngine::new(Liar);
        let err = audited
            .max_total_delay(&demo_window())
            .expect_err("the audit must refute the wrong bound");
        assert!(matches!(err, CoreError::AuditFailed { .. }), "{err}");
    }

    #[test]
    fn layer_descriptions_match_configuration() {
        let cfg = AnalysisConfig {
            cache: true,
            audit: true,
            ..AnalysisConfig::default()
        };
        assert_eq!(EngineStack::build(&cfg).layers(), "cached(audited(exact))");
        assert!(format!("{:?}", EngineStack::build(&cfg)).contains("cached"));
    }

    #[test]
    fn bnb_stacks_agree_and_certificate_runs_force_the_rescue_off() {
        let w = demo_window();
        let reference = ExactEngine::default()
            .max_total_delay(&w)
            .expect("engine result");
        let cfg = AnalysisConfig::default().with_bnb_jobs(2).with_cache(false);
        let stack = EngineStack::build(&cfg);
        assert_eq!(stack.layers(), "exact+bnb");
        let bound = stack.max_total_delay(&w).expect("stack result");
        assert_eq!(bound.delay, reference.delay);
        let certifying = EngineStack::build(&cfg.with_emit_certs(true));
        assert_eq!(certifying.layers(), "exact", "emit-certs must drop bnb");
    }

    #[test]
    fn milp_engine_honors_audit_flag() {
        assert!(!milp_engine(&AnalysisConfig::default()).audit);
        let cfg = AnalysisConfig {
            audit: true,
            ..AnalysisConfig::default()
        };
        assert!(milp_engine(&cfg).audit);
    }

    #[test]
    fn milp_engine_honors_lp_backend() {
        assert_eq!(
            milp_engine(&AnalysisConfig::default()).backend,
            BackendKind::Dense
        );
        let cfg = AnalysisConfig {
            lp_backend: Some(BackendKind::Revised),
            ..AnalysisConfig::default()
        };
        assert_eq!(milp_engine(&cfg).backend, BackendKind::Revised);
    }

    #[test]
    fn milp_based_stacks_agree_with_the_exact_base() {
        let w = demo_window();
        let reference = ExactEngine::default()
            .max_total_delay(&w)
            .expect("engine result");
        for backend in [BackendKind::Dense, BackendKind::Revised] {
            let cfg = AnalysisConfig {
                lp_backend: Some(backend),
                ..AnalysisConfig::default()
            };
            let stack = EngineStack::build(&cfg);
            let bound = stack.max_total_delay(&w).expect("stack result");
            assert_eq!(bound.delay, reference.delay, "stack {}", stack.layers());
        }
    }

    #[test]
    fn milp_layer_strings_name_the_backend() {
        for (cache, audit, backend, expected) in [
            (true, false, BackendKind::Dense, "cached(milp:dense)"),
            (false, false, BackendKind::Revised, "milp:revised"),
            (
                true,
                true,
                BackendKind::Revised,
                "cached(audited(milp:revised))",
            ),
        ] {
            let cfg = AnalysisConfig {
                cache,
                audit,
                lp_backend: Some(backend),
                ..AnalysisConfig::default()
            };
            assert_eq!(EngineStack::build(&cfg).layers(), expected);
        }
    }

    #[test]
    fn solver_stats_flow_through_the_stack() {
        let cfg = AnalysisConfig {
            lp_backend: Some(BackendKind::Revised),
            cache: false,
            ..AnalysisConfig::default()
        };
        let stack = EngineStack::build(&cfg);
        assert!(stack.solver_stats().is_empty());
        let _ = stack.max_total_delay(&demo_window()).expect("stack result");
        let stats = stack.solver_stats();
        assert!(stats.lp_solves > 0, "stats not threaded: {stats}");
        // The exact base reports its search nodes through the same shape.
        let exact = EngineStack::build(&AnalysisConfig {
            cache: false,
            ..AnalysisConfig::default()
        });
        let _ = exact.max_total_delay(&demo_window()).expect("stack result");
        assert!(exact.solver_stats().bb_nodes > 0);
    }
}
