//! The [`Analyzer`] trait and the per-worker [`AnalysisContext`].

use std::sync::Arc;

use pmcs_core::{CacheStats, SharedDelayCache, SolverStats};
use pmcs_model::TaskSet;

use crate::config::AnalysisConfig;
use crate::engine_stack::EngineStack;
use crate::error::AnalysisError;
use crate::report::ApproachReport;

/// Per-worker analysis state: the resolved configuration plus the engine
/// stack built from it.
///
/// The stack holds scratch and cache state behind interior mutability,
/// so a context is cheap to call into but not `Sync`. Sweep drivers
/// build **one context per worker thread** and reuse it across task
/// sets — that is what makes the window-level delay cache pay off across
/// sets, exactly as the old `WorkerEngine` did.
#[derive(Debug)]
pub struct AnalysisContext {
    cfg: AnalysisConfig,
    engine: EngineStack,
}

impl AnalysisContext {
    /// Builds a context (and its engine stack) for `cfg`.
    pub fn new(cfg: &AnalysisConfig) -> Self {
        AnalysisContext {
            cfg: cfg.clone(),
            engine: EngineStack::build(cfg),
        }
    }

    /// Builds a context whose cache layer shares `cache` with every
    /// other context built from the same `Arc` (see
    /// [`EngineStack::build_with_cache`]). Parallel drivers create one
    /// process-wide [`SharedDelayCache`] and hand a clone of the `Arc`
    /// to each worker's context, so a window solved by any worker is a
    /// hit for all. [`cache_stats`](AnalysisContext::cache_stats) still
    /// reports only *this* context's lookups, so merging per-worker
    /// stats never double-counts.
    pub fn with_shared_cache(cfg: &AnalysisConfig, cache: Arc<SharedDelayCache>) -> Self {
        AnalysisContext {
            cfg: cfg.clone(),
            engine: EngineStack::build_with_cache(cfg, cache),
        }
    }

    /// The configuration this context was built from.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The engine stack (for analyzers that run the MILP pipeline).
    pub fn engine(&self) -> &EngineStack {
        &self.engine
    }

    /// Hit/miss counters accumulated by the stack's caching layers.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Cumulative solver effort accumulated by the stack's engines.
    /// Analyzers snapshot this before and after a run and attribute the
    /// difference (via [`SolverStats::since`]) to their report.
    pub fn solver_stats(&self) -> SolverStats {
        self.engine.solver_stats()
    }
}

/// A schedulability-analysis approach with a stable name and a uniform
/// report shape.
///
/// Implementations must be stateless apart from their construction-time
/// parameters (`Send + Sync`, shared across worker threads); all mutable
/// analysis state lives in the [`AnalysisContext`].
pub trait Analyzer: Send + Sync {
    /// Stable machine-readable name ("proposed", "wp", "nps", ...); used
    /// as the registry key and as the CSV column header.
    fn name(&self) -> &str;

    /// Analyzes `set` using a caller-provided context.
    ///
    /// Sweeps call this with a long-lived per-worker context so delay
    /// bounds cache across task sets.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when the analysis *fails* (solver
    /// failure, non-convergence, audit refutation) — as opposed to
    /// completing with an unschedulable verdict, which is an `Ok` report.
    fn analyze_with(
        &self,
        set: &TaskSet,
        ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError>;

    /// Analyzes `set` with a fresh context built from `cfg`.
    ///
    /// One-shot convenience; see [`Analyzer::analyze_with`] for the
    /// reusable-context variant and the error contract.
    ///
    /// # Errors
    ///
    /// As for [`Analyzer::analyze_with`].
    fn analyze(
        &self,
        set: &TaskSet,
        cfg: &AnalysisConfig,
    ) -> Result<ApproachReport, AnalysisError> {
        self.analyze_with(set, &AnalysisContext::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_exposes_its_config_and_stack() {
        let cfg = AnalysisConfig::default().with_cache(false);
        let ctx = AnalysisContext::new(&cfg);
        assert_eq!(ctx.config(), &cfg);
        assert_eq!(ctx.engine().layers(), "exact");
        assert_eq!(ctx.cache_stats(), CacheStats::default());
    }
}
