//! Simulation-vs-analysis cross-validation: a mass falsification harness
//! for the analytical WCRT bounds.
//!
//! The paper's protocol is defined operationally (rules R1–R6) while its
//! guarantees are analytical (the WCRT bounds of Sections V–VI). This
//! module closes the loop: for a task set and an analysis approach it
//! simulates a family of adversarial release plans under the *simulating*
//! policy of the same approach (looked up in [`pmcs_sim::Registry`]),
//! validates every trace (Properties 1–4 plus R1–R6 conformance, where
//! the trace has interval structure), and asserts
//! `observed worst response ≤ analytical WCRT` for every task.
//!
//! **Semantics.** Any violation is a [`Refutation`]: a machine-readable
//! record naming the approach, the plan (family + seed — fully
//! reproducing the run), the task, the observed response, the violated
//! bound and a trace excerpt. A refutation *refutes the analysis* (or the
//! simulator — either way the stack is broken). A clean pass is
//! **necessary, not sufficient**: simulation explores finitely many
//! plans, analysis quantifies over all of them.
//!
//! Bounds are only checked when the approach reports the set
//! *schedulable*: for unschedulable sets the analytical per-task numbers
//! are not sound operational bounds (inter-job precedence defers releases
//! once some task overruns, shifting every later response).

use std::time::Instant;

use pmcs_model::{CoreId, TaskId, TaskSet, Time};
use pmcs_sim::{
    check_conformance_ref, kernel::run_into, validate_trace_ref, ProtocolPolicy, ReleasePlan,
    SimWorkspace, TraceRef,
};
use pmcs_workload::{adversarial_plan_into, adversarial_specs, PlanSpec};

use crate::analyzer::AnalysisContext;
use crate::error::AnalysisError;
use crate::registry::Registry;
use crate::report::ApproachReport;

/// Aggregate simulation-effort counters for one cross-validation run
/// (the `sim_*` keys of the bench perf records).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimCounters {
    /// Release plans simulated.
    pub plans_run: u64,
    /// Traces checked against Properties 1–4 and R1–R6 (serialized NPS
    /// traces have no interval structure and are not counted).
    pub traces_validated: u64,
    /// Refutations found (bound violations, invalid traces,
    /// non-conformant traces).
    pub refutations: u64,
    /// Wall-clock seconds spent simulating and validating.
    pub sim_secs: f64,
    /// Simulation runs that reused a warm [`SimWorkspace`] (pooled
    /// buffers, no per-run allocation) instead of allocating fresh.
    pub ws_reused: u64,
}

impl SimCounters {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &SimCounters) {
        self.plans_run += other.plans_run;
        self.traces_validated += other.traces_validated;
        self.refutations += other.refutations;
        self.sim_secs += other.sim_secs;
        self.ws_reused += other.ws_reused;
    }

    /// Simulated plans per wall-clock second (`0.0` before any run).
    pub fn plans_per_sec(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.plans_run as f64 / self.sim_secs
        } else {
            0.0
        }
    }
}

/// Per-worker reusable simulation scratch: a pooled [`SimWorkspace`]
/// plus a release-plan buffer. Drivers that evaluate many plans hold one
/// of these per worker thread and pass it to the `*_in` cross-validation
/// entry points, so steady-state simulation allocates nothing.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Pooled kernel buffers.
    pub ws: SimWorkspace,
    /// Pooled release-plan buffer (refilled per spec).
    pub plan: ReleasePlan,
}

impl SimScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        SimScratch::default()
    }
}

/// What a refutation refutes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationKind {
    /// A task's observed worst response exceeded its analytical WCRT.
    BoundExceeded {
        /// The violating task.
        task: TaskId,
        /// Observed worst response under the plan.
        observed: Time,
        /// The violated analytical bound.
        bound: Time,
    },
    /// The trace violated one of the paper's Properties 1–4.
    InvalidTrace {
        /// Rendered violation list.
        violations: String,
    },
    /// The trace violated the R1–R6 conformance rules.
    NonConformant {
        /// Rendered diagnostic list.
        diagnostics: String,
    },
    /// A DMA transfer replayed on the regulated shared bus took longer
    /// than the analytical copy-phase inflation allows (multi-core
    /// cross-validation, see `pmcs_analysis::multicore`).
    BusOverrun {
        /// Core whose transfer overran.
        core: CoreId,
        /// Task the transfer belongs to.
        task: TaskId,
        /// Uninflated transfer demand.
        demand: Time,
        /// Observed bus service time (head-of-queue to completion).
        observed: Time,
        /// The violated inflated bound.
        bound: Time,
    },
}

/// A machine-readable cross-validation failure: enough to reproduce the
/// run (approach + plan spec) and to locate the defect (kind + excerpt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refutation {
    /// Name of the refuted analysis approach.
    pub approach: String,
    /// The adversarial plan that produced the counterexample (its seed
    /// fully reproduces the plan).
    pub plan: PlanSpec,
    /// What went wrong.
    pub kind: RefutationKind,
    /// A short excerpt of the offending trace region.
    pub excerpt: String,
}

impl std::fmt::Display for Refutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "REFUTATION approach={} plan={}",
            self.approach, self.plan
        )?;
        match &self.kind {
            RefutationKind::BoundExceeded {
                task,
                observed,
                bound,
            } => write!(
                f,
                " kind=bound-exceeded task={task} observed={observed} bound={bound}"
            ),
            RefutationKind::InvalidTrace { violations } => {
                write!(f, " kind=invalid-trace violations=[{violations}]")
            }
            RefutationKind::NonConformant { diagnostics } => {
                write!(f, " kind=non-conformant diagnostics=[{diagnostics}]")
            }
            RefutationKind::BusOverrun {
                core,
                task,
                demand,
                observed,
                bound,
            } => write!(
                f,
                " kind=bus-overrun core={core} task={task} demand={demand} observed={observed} bound={bound}"
            ),
        }?;
        write!(f, " excerpt=[{}]", self.excerpt)
    }
}

/// The horizon over which adversarial plans release jobs: several
/// periods of the slowest task plus slack, so every task sees multiple
/// activations under every plan family.
pub fn plan_horizon(set: &TaskSet) -> Time {
    let max_t = set
        .iter()
        .filter_map(|t| t.arrival().min_inter_arrival())
        .max()
        .unwrap_or(Time::ZERO);
    let total_wcet: i64 = set.iter().map(|t| t.wcet_serialized().as_ticks()).sum();
    max_t * 3 + Time::from_ticks(2 * total_wcet)
}

/// The simulation horizon: the plan horizon plus enough tail for every
/// released job of a schedulable set to complete (jobs cut by the
/// horizon are skipped by `worst_response` — conservative, part of why a
/// pass is necessary-not-sufficient).
pub(crate) fn sim_horizon(set: &TaskSet) -> Time {
    let max_d = set.iter().map(|t| t.deadline()).max().unwrap_or(Time::ZERO);
    let total_wcet: i64 = set.iter().map(|t| t.wcet_serialized().as_ticks()).sum();
    plan_horizon(set) + max_d + Time::from_ticks(2 * total_wcet)
}

/// A compact excerpt of the trace around a task's worst-response job
/// (or the trace tail when no task is singled out).
fn trace_excerpt(result: TraceRef<'_>, task: Option<TaskId>) -> String {
    let events: Vec<String> = match task {
        Some(task) => result
            .events()
            .iter()
            .filter(|e| e.job.task() == task)
            .map(|e| e.to_string())
            .collect(),
        None => result.events().iter().map(|e| e.to_string()).collect(),
    };
    let tail = events.len().saturating_sub(6);
    events[tail..].join("; ")
}

/// The innermost driver: simulates each plan spec under `policy` and
/// checks the supplied `(task, bound)` pairs directly.
///
/// This is the layer negative tests target: hand it a deliberately
/// weakened bound (analytical WCRT minus one tick) and it must produce a
/// [`RefutationKind::BoundExceeded`] naming the task, plan seed and
/// observed response.
pub fn cross_validate_bounds(
    set: &TaskSet,
    policy: &dyn ProtocolPolicy,
    bounds: &[(TaskId, Time)],
    specs: &[PlanSpec],
    approach: &str,
) -> (SimCounters, Vec<Refutation>) {
    cross_validate_bounds_in(set, policy, bounds, specs, approach, &mut SimScratch::new())
}

/// [`cross_validate_bounds`] against a caller-owned [`SimScratch`] —
/// the zero-allocation path drivers thread one scratch per worker
/// through. Results are identical to the allocating wrapper.
pub fn cross_validate_bounds_in(
    set: &TaskSet,
    policy: &dyn ProtocolPolicy,
    bounds: &[(TaskId, Time)],
    specs: &[PlanSpec],
    approach: &str,
    scratch: &mut SimScratch,
) -> (SimCounters, Vec<Refutation>) {
    let started = Instant::now();
    let reuses_before = scratch.ws.reuses();
    let mut counters = SimCounters::default();
    let mut refutations = Vec::new();
    let release_horizon = plan_horizon(set);
    let horizon = sim_horizon(set);

    for &spec in specs {
        adversarial_plan_into(set, release_horizon, spec, &mut scratch.plan);
        let result = run_into(set, &scratch.plan, policy, horizon, &mut scratch.ws);
        counters.plans_run += 1;

        if policy.interval_structured() {
            let violations = validate_trace_ref(set, result, policy.ls_rules());
            if !violations.is_empty() {
                refutations.push(Refutation {
                    approach: approach.to_string(),
                    plan: spec,
                    kind: RefutationKind::InvalidTrace {
                        violations: violations
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join("; "),
                    },
                    excerpt: trace_excerpt(result, None),
                });
            }
            let conformance = check_conformance_ref(set, result, policy.ls_rules());
            if conformance.applicable && !conformance.is_conformant() {
                refutations.push(Refutation {
                    approach: approach.to_string(),
                    plan: spec,
                    kind: RefutationKind::NonConformant {
                        diagnostics: conformance
                            .diagnostics
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join("; "),
                    },
                    excerpt: trace_excerpt(result, None),
                });
            }
            counters.traces_validated += 1;
        }

        for &(task, bound) in bounds {
            if let Some(observed) = result.worst_response(task) {
                if observed > bound {
                    refutations.push(Refutation {
                        approach: approach.to_string(),
                        plan: spec,
                        kind: RefutationKind::BoundExceeded {
                            task,
                            observed,
                            bound,
                        },
                        excerpt: trace_excerpt(result, Some(task)),
                    });
                }
            }
        }
    }

    counters.refutations = refutations.len() as u64;
    counters.sim_secs = started.elapsed().as_secs_f64();
    counters.ws_reused = scratch.ws.reuses() - reuses_before;
    (counters, refutations)
}

/// Cross-validates an [`ApproachReport`] against simulation.
///
/// Applies the report's final LS marking to the set (the proposed
/// analysis chooses sensitivities; the simulator must run the set the
/// analysis actually bounded), always validates traces, and checks WCRT
/// bounds only when the report says *schedulable* (see the module docs
/// for why unschedulable bounds are not operational).
///
/// # Errors
///
/// Returns a model error if the report's sensitivity marking references
/// tasks absent from `set`.
pub fn cross_validate_report(
    set: &TaskSet,
    policy: &dyn ProtocolPolicy,
    report: &ApproachReport,
    specs: &[PlanSpec],
) -> Result<(SimCounters, Vec<Refutation>), AnalysisError> {
    cross_validate_report_in(set, policy, report, specs, &mut SimScratch::new())
}

/// [`cross_validate_report`] against a caller-owned [`SimScratch`] (see
/// [`cross_validate_bounds_in`]).
///
/// # Errors
///
/// Same conditions as [`cross_validate_report`].
pub fn cross_validate_report_in(
    set: &TaskSet,
    policy: &dyn ProtocolPolicy,
    report: &ApproachReport,
    specs: &[PlanSpec],
    scratch: &mut SimScratch,
) -> Result<(SimCounters, Vec<Refutation>), AnalysisError> {
    let mut marked = set.clone();
    for task in &report.tasks {
        if let Some(s) = task.sensitivity {
            marked = marked
                .with_sensitivity(task.task, s)
                .map_err(|e| AnalysisError::Core(pmcs_core::CoreError::Model(e)))?;
        }
    }
    let bounds: Vec<(TaskId, Time)> = if report.schedulable() {
        report.tasks.iter().map(|t| (t.task, t.wcrt)).collect()
    } else {
        Vec::new()
    };
    Ok(cross_validate_bounds_in(
        &marked,
        policy,
        &bounds,
        specs,
        &report.approach,
        scratch,
    ))
}

/// The one-call convenience: analyzes `set` under the named approach,
/// looks up its simulating policy, and cross-validates the resulting
/// report over `plans` adversarial plans seeded from `base_seed`.
///
/// # Errors
///
/// Returns [`AnalysisError::UnknownApproach`] if `approach` is in
/// neither the analyzer registry nor the simulator registry, or any
/// error the analysis itself produces.
pub fn cross_validate(
    set: &TaskSet,
    approach: &str,
    plans: usize,
    base_seed: u64,
    ctx: &AnalysisContext,
) -> Result<(ApproachReport, SimCounters, Vec<Refutation>), AnalysisError> {
    let analyzers = Registry::standard();
    let analyzer = analyzers.require(approach)?;
    let sims = pmcs_sim::Registry::standard();
    let policy = sims
        .get(approach)
        .ok_or_else(|| AnalysisError::UnknownApproach(approach.to_string()))?;
    let report = analyzer.analyze_with(set, ctx)?;
    let specs = adversarial_specs(plans, base_seed);
    let (counters, refutations) = cross_validate_report(set, policy, &report, &specs)?;
    Ok((report, counters, refutations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use pmcs_core::window::test_task;

    fn two_task_set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
        ])
        .expect("valid test task set")
    }

    #[test]
    fn clean_set_produces_no_refutations_for_all_approaches() {
        let set = two_task_set();
        let ctx = AnalysisContext::new(&AnalysisConfig::default());
        for approach in ["proposed", "wp", "nps", "nps-classic"] {
            let (report, counters, refutations) =
                cross_validate(&set, approach, 6, 42, &ctx).expect("cross-validation runs");
            assert!(report.schedulable(), "{approach}: demo set is schedulable");
            assert_eq!(counters.plans_run, 6, "{approach}");
            assert!(
                refutations.is_empty(),
                "{approach}: unexpected refutations: {refutations:?}"
            );
        }
    }

    #[test]
    fn weakened_bound_is_refuted_with_task_seed_and_response() {
        // Single task: completion is exactly l + C + u = 2 + 10 + 2 = 14
        // under the proposed protocol, so the analytical WCRT is tight.
        let set = TaskSet::new(vec![test_task(0, 10, 2, 2, 1_000, 0, false)])
            .expect("valid test task set");
        let specs = adversarial_specs(3, 7);
        let tight = Time::from_ticks(14);
        let weakened = tight - Time::TICK;
        let (counters, refutations) = cross_validate_bounds(
            &set,
            &pmcs_sim::policy::Proposed,
            &[(TaskId(0), weakened)],
            &specs,
            "proposed",
        );
        assert!(counters.refutations > 0, "weakened bound must be refuted");
        let r = refutations
            .iter()
            .find(|r| {
                matches!(
                    r.kind,
                    RefutationKind::BoundExceeded { task, observed, bound }
                        if task == TaskId(0) && observed == tight && bound == weakened
                )
            })
            .expect("a bound-exceeded refutation naming task, observed, bound");
        let line = r.to_string();
        assert!(line.contains("REFUTATION"), "{line}");
        assert!(line.contains("approach=proposed"), "{line}");
        assert!(line.contains("seed="), "{line}");
        assert!(line.contains("task=τ0"), "{line}");
        assert!(line.contains("observed=14"), "{line}");
        // The tight bound itself passes.
        let (_, ok) = cross_validate_bounds(
            &set,
            &pmcs_sim::policy::Proposed,
            &[(TaskId(0), tight)],
            &specs,
            "proposed",
        );
        assert!(ok.is_empty(), "tight bound must not be refuted: {ok:?}");
    }

    #[test]
    fn nps_blocking_bound_is_tight_and_weakening_it_refutes() {
        // The classical NPS blocking example: τ0 (T=1000, serialized 12)
        // released at 1 behind lp τ1 (serialized 62) released at 0. The
        // classic analysis bounds R(τ0) = B + C' = 61 + 12 = 73 and the
        // burst plan family observes exactly that.
        let set = TaskSet::new(vec![
            test_task(0, 10, 1, 1, 1_000, 0, false),
            test_task(1, 60, 1, 1, 10_000, 1, false),
        ])
        .expect("valid test task set");
        let specs = adversarial_specs(6, 11);
        let (_, refuted) = cross_validate_bounds(
            &set,
            &pmcs_sim::policy::Nps,
            &[(TaskId(0), Time::from_ticks(72))],
            &specs,
            "nps-classic",
        );
        assert!(
            refuted
                .iter()
                .any(|r| matches!(r.kind, RefutationKind::BoundExceeded { task, .. } if task == TaskId(0))),
            "weakened NPS bound must be refuted: {refuted:?}"
        );
        let (_, ok) = cross_validate_bounds(
            &set,
            &pmcs_sim::policy::Nps,
            &[(TaskId(0), Time::from_ticks(73))],
            &specs,
            "nps-classic",
        );
        assert!(ok.is_empty(), "classic bound holds: {ok:?}");
    }

    #[test]
    fn unschedulable_reports_skip_bound_checks_but_still_validate() {
        let set = two_task_set();
        let ctx = AnalysisContext::new(&AnalysisConfig::default());
        let analyzers = Registry::standard();
        let analyzer = analyzers.require("wp").expect("wp registered");
        let mut report = analyzer.analyze_with(&set, &ctx).expect("analysis runs");
        // Forge an unschedulable verdict with absurd (tiny) bounds: they
        // must NOT be checked.
        for t in &mut report.tasks {
            t.wcrt = Time::ZERO;
            t.schedulable = false;
        }
        let specs = adversarial_specs(3, 5);
        let (counters, refutations) =
            cross_validate_report(&set, &pmcs_sim::policy::WaslyPellizzoni, &report, &specs)
                .expect("cross-validation runs");
        assert!(refutations.is_empty(), "{refutations:?}");
        assert_eq!(counters.traces_validated, 3);
    }

    #[test]
    fn unknown_approach_errors() {
        let set = two_task_set();
        let ctx = AnalysisContext::new(&AnalysisConfig::default());
        assert!(cross_validate(&set, "bogus", 1, 1, &ctx).is_err());
    }

    #[test]
    fn counters_merge() {
        let mut a = SimCounters {
            plans_run: 2,
            traces_validated: 1,
            refutations: 0,
            sim_secs: 0.5,
            ws_reused: 1,
        };
        let b = SimCounters {
            plans_run: 3,
            traces_validated: 3,
            refutations: 2,
            sim_secs: 1.0,
            ws_reused: 3,
        };
        a.merge(&b);
        assert_eq!(a.plans_run, 5);
        assert_eq!(a.traces_validated, 4);
        assert_eq!(a.refutations, 2);
        assert!((a.sim_secs - 1.5).abs() < 1e-9);
        assert_eq!(a.ws_reused, 4);
        assert!(a.plans_per_sec() > 0.0);
    }
}
