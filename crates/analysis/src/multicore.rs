//! Multi-core analysis and cross-validation on a regulated shared bus.
//!
//! Single-core analysis carries over to a contended platform through
//! one transform: inflate every copy-phase bound by the worst-case bus
//! service time ([`pmcs_core::contention::Inflation`]), then run the
//! unchanged per-core machinery. This module packages that transform
//! two ways:
//!
//! * [`ContentionAware`] — an [`Analyzer`] decorator that inflates the
//!   set, delegates to the wrapped analyzer, and tags the report. Under
//!   the identity transform (contention-free bus, `M = 1`) it is fully
//!   transparent: same name, byte-identical report.
//! * [`cross_validate_platform`] — the multi-core falsification
//!   harness, two layers deep:
//!
//!   1. **Per-core layer.** Every core's *inflated* set is analyzed and
//!      cross-validated exactly like a single-core set (same adversarial
//!      plans, trace validation, and `observed response ≤ WCRT` checks
//!      via [`cross_validate_report`]). This is sound for the platform
//!      *if* every DMA interval of the inflated set really over-covers
//!      the shared-bus service time of the original transfer.
//!   2. **Bus layer.** That "if" is itself falsified: the DMA request
//!      streams of all cores are extracted from the per-core traces,
//!      replayed *coupled* through the hard-regulation arbiter
//!      ([`pmcs_sim::bus::arbitrate`]), and every transfer's observed
//!      service time is checked against the analytical inflation
//!      `inflate(d)`. Any overrun is a [`RefutationKind::BusOverrun`].
//!
//! The bus-layer check is deliberately a *service-time* check
//! (completion minus head-of-queue instant), not a response-time check:
//! for a dense stream of queued transfers, queueing delay behind
//! predecessors is already accounted for by the per-core layer, while
//! the inflation bound covers exactly the service of one transfer.

use std::time::Instant;

use pmcs_core::contention::Inflation;
use pmcs_model::{BusModel, CoreId, Phase, Platform, TaskSet, Time};
use pmcs_sim::bus::{arbitrate, TransferReq};
use pmcs_sim::{kernel::run_into, SimResult, TraceRef, TraceUnit};
use pmcs_workload::{adversarial_plan_into, adversarial_specs, PlanSpec};

use crate::analyzer::{AnalysisContext, Analyzer};
use crate::cross_validate::{
    cross_validate_report_in, plan_horizon, sim_horizon, Refutation, RefutationKind, SimCounters,
    SimScratch,
};
use crate::error::AnalysisError;
use crate::registry::Registry;
use crate::report::ApproachReport;

/// Analyzer decorator that runs the wrapped analyzer on the
/// contention-inflated task set.
///
/// Under a non-identity inflation the report is tagged
/// `"<inner>+bus"`; under the identity transform the decorator is
/// transparent (same name, byte-identical report), which keeps
/// contention-free and single-core platforms on the legacy path.
///
/// # Example
///
/// ```
/// use pmcs_analysis::{AnalysisConfig, Analyzer, ContentionAware, ProposedAnalyzer};
/// use pmcs_core::window::test_task;
/// use pmcs_model::{BusModel, CoreId, TaskSet, Time};
///
/// let bus = BusModel::uniform(Time::from_ticks(100), 2, Time::from_ticks(40))?;
/// let analyzer = ContentionAware::for_core(ProposedAnalyzer, &bus, CoreId(0));
/// assert_eq!(analyzer.name(), "proposed+bus");
/// let set = TaskSet::new(vec![test_task(0, 10, 2, 2, 1_000, 0, false)])?;
/// let report = analyzer.analyze(&set, &AnalysisConfig::default())?;
/// assert!(report.schedulable());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ContentionAware<A> {
    inner: A,
    inflation: Inflation,
    name: String,
}

impl<A: Analyzer> ContentionAware<A> {
    /// Wraps `inner` with an explicit inflation transform.
    pub fn new(inner: A, inflation: Inflation) -> Self {
        let name = if inflation.is_identity() {
            inner.name().to_string()
        } else {
            format!("{}+bus", inner.name())
        };
        ContentionAware {
            inner,
            inflation,
            name,
        }
    }

    /// Wraps `inner` with the inflation core `core` experiences on
    /// `bus` when every other core contends.
    pub fn for_core(inner: A, bus: &BusModel, core: CoreId) -> Self {
        ContentionAware::new(inner, Inflation::for_core(bus, core))
    }

    /// The inflation transform this decorator applies.
    pub fn inflation(&self) -> &Inflation {
        &self.inflation
    }
}

impl<A: Analyzer> Analyzer for ContentionAware<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze_with(
        &self,
        set: &TaskSet,
        ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError> {
        let inflated = self
            .inflation
            .inflate_set(set)
            .map_err(AnalysisError::Core)?;
        let mut report = self.inner.analyze_with(&inflated, ctx)?;
        report.approach = self.name.clone();
        Ok(report)
    }
}

/// Per-core outcome of [`cross_validate_platform`].
#[derive(Debug, Clone)]
pub struct CoreValidation {
    /// The core this entry describes.
    pub core: CoreId,
    /// The inflation applied to its set.
    pub inflation: Inflation,
    /// Analysis report of the inflated set.
    pub report: ApproachReport,
    /// Per-core simulation counters.
    pub counters: SimCounters,
    /// Per-core refutations (bound violations, invalid traces, …).
    pub refutations: Vec<Refutation>,
}

/// Outcome of [`cross_validate_platform`]: per-core validations plus
/// the coupled bus-layer replay.
#[derive(Debug, Clone)]
pub struct PlatformValidation {
    /// One entry per platform core, in core order.
    pub cores: Vec<CoreValidation>,
    /// Counters of the bus-layer replay (one "plan" per simulated
    /// per-core trace fed into the arbiter).
    pub bus_counters: SimCounters,
    /// Bus-layer refutations ([`RefutationKind::BusOverrun`]).
    pub bus_refutations: Vec<Refutation>,
    /// Transfers replayed and checked on the shared bus.
    pub transfers_checked: u64,
}

impl PlatformValidation {
    /// `true` iff every core's inflated set is schedulable.
    pub fn schedulable(&self) -> bool {
        self.cores.iter().all(|c| c.report.schedulable())
    }

    /// All refutations of both layers, core order first, bus last.
    pub fn refutations(&self) -> Vec<&Refutation> {
        self.cores
            .iter()
            .flat_map(|c| c.refutations.iter())
            .chain(self.bus_refutations.iter())
            .collect()
    }

    /// `true` iff no layer found a refutation.
    pub fn clean(&self) -> bool {
        self.refutations().is_empty()
    }

    /// Merged counters of both layers.
    pub fn counters(&self) -> SimCounters {
        let mut merged = self.bus_counters;
        for c in &self.cores {
            merged.merge(&c.counters);
        }
        merged
    }
}

/// Extracts the DMA request stream core `core` issues in `result` (a
/// trace of the core's *inflated* set): one request per completed DMA
/// event, released when the event started, demanding the **original**
/// (uninflated) copy bound of its task from `original`. Canceled
/// events and zero-demand copies issue no bus transfer.
pub fn extract_transfers(core: CoreId, original: &TaskSet, result: &SimResult) -> Vec<TransferReq> {
    let mut out = Vec::new();
    extract_transfers_into(core, original, result.as_trace(), &mut out);
    out
}

/// [`extract_transfers`] over a borrowed trace view, appending into a
/// caller-owned (pooled) request buffer.
pub fn extract_transfers_into(
    core: CoreId,
    original: &TaskSet,
    result: TraceRef<'_>,
    out: &mut Vec<TransferReq>,
) {
    for e in result.events() {
        if e.unit != TraceUnit::Dma || e.canceled {
            continue;
        }
        let Some(task) = original.get(e.job.task()) else {
            continue;
        };
        let demand = match e.phase {
            Phase::CopyIn => task.copy_in(),
            Phase::CopyOut => task.copy_out(),
            Phase::Execute => continue,
        };
        if demand <= Time::ZERO {
            continue;
        }
        out.push(TransferReq {
            core,
            task: task.id(),
            phase: e.phase,
            release: e.start,
            demand,
        });
    }
}

/// Replays `requests` through the regulated-bus arbiter and refutes
/// `bound` wherever an observed service time exceeds it.
///
/// The bound is a closure so negative tests can feed a deliberately
/// weakened bound (e.g. the raw demand, ignoring contention) and assert
/// that the arbiter refutes it; [`cross_validate_platform`] passes the
/// analytical inflation.
pub fn refute_bus_bounds(
    bus: &BusModel,
    requests: &[TransferReq],
    bound: &dyn Fn(CoreId, Time) -> Time,
    approach: &str,
    plan: PlanSpec,
) -> Vec<Refutation> {
    let mut refutations = Vec::new();
    for rec in arbitrate(bus, requests) {
        let limit = bound(rec.req.core, rec.req.demand);
        let observed = rec.service_time();
        if observed > limit {
            refutations.push(Refutation {
                approach: approach.to_string(),
                plan,
                kind: RefutationKind::BusOverrun {
                    core: rec.req.core,
                    task: rec.req.task,
                    demand: rec.req.demand,
                    observed,
                    bound: limit,
                },
                excerpt: format!(
                    "{} {} on {}: release={} start={} completion={}",
                    rec.req.phase,
                    rec.req.task,
                    rec.req.core,
                    rec.req.release,
                    rec.service_start,
                    rec.completion
                ),
            });
        }
    }
    refutations
}

/// Multi-core cross-validation of `platform` under the named approach:
/// per-core analysis and cross-validation of the inflated sets, plus a
/// coupled replay of all cores' DMA streams through the regulated-bus
/// arbiter checking every transfer's service time against the
/// analytical inflation (see the module docs for the two layers).
///
/// On a bus that cannot contend the bus layer is skipped (there is
/// nothing to arbitrate) and the result reduces to independent per-core
/// cross-validation — byte-identical to the legacy path.
///
/// # Errors
///
/// Returns [`AnalysisError::UnknownApproach`] for an unregistered
/// approach, and propagates analysis and model errors.
pub fn cross_validate_platform(
    platform: &Platform,
    approach: &str,
    plans: usize,
    base_seed: u64,
    ctx: &AnalysisContext,
) -> Result<PlatformValidation, AnalysisError> {
    let analyzers = Registry::standard();
    let analyzer = analyzers.require(approach)?;
    let sims = pmcs_sim::Registry::standard();
    let policy = sims
        .get(approach)
        .ok_or_else(|| AnalysisError::UnknownApproach(approach.to_string()))?;
    let specs = adversarial_specs(plans, base_seed);
    let bus = platform.bus();
    // One reusable workspace + plan buffer for every simulation this
    // validation performs (both layers).
    let mut scratch = SimScratch::new();

    // Layer 1: per-core analysis + cross-validation on the inflated sets.
    let mut cores = Vec::with_capacity(platform.num_cores());
    for (core, set) in platform.iter() {
        let inflation = Inflation::for_core(bus, core);
        let inflated = inflation.inflate_set(set).map_err(AnalysisError::Core)?;
        let report = analyzer.analyze_with(&inflated, ctx)?;
        let (counters, refutations) =
            cross_validate_report_in(&inflated, policy, &report, &specs, &mut scratch)?;
        cores.push(CoreValidation {
            core,
            inflation,
            report,
            counters,
            refutations,
        });
    }

    // Layer 2: coupled bus replay of all cores' DMA streams.
    let mut bus_counters = SimCounters::default();
    let mut bus_refutations = Vec::new();
    let mut transfers_checked = 0u64;
    if bus.is_contended() {
        let started = Instant::now();
        // The simulator must run the marked sets the analysis bounded.
        let mut marked = Vec::with_capacity(cores.len());
        for cv in &cores {
            let set = platform.core(cv.core).expect("iterated core exists");
            let mut inflated = cv.inflation.inflate_set(set).map_err(AnalysisError::Core)?;
            for t in &cv.report.tasks {
                if let Some(s) = t.sensitivity {
                    inflated = inflated
                        .with_sensitivity(t.task, s)
                        .map_err(|e| AnalysisError::Core(pmcs_core::CoreError::Model(e)))?;
                }
            }
            marked.push(inflated);
        }
        let reuses_before = scratch.ws.reuses();
        let mut requests = Vec::new();
        for &spec in &specs {
            requests.clear();
            for (cv, inflated) in cores.iter().zip(&marked) {
                adversarial_plan_into(inflated, plan_horizon(inflated), spec, &mut scratch.plan);
                let result = run_into(
                    inflated,
                    &scratch.plan,
                    policy,
                    sim_horizon(inflated),
                    &mut scratch.ws,
                );
                bus_counters.plans_run += 1;
                let original = platform.core(cv.core).expect("iterated core exists");
                extract_transfers_into(cv.core, original, result, &mut requests);
            }
            transfers_checked += requests.len() as u64;
            let inflations: Vec<Inflation> = cores.iter().map(|c| c.inflation).collect();
            bus_refutations.extend(refute_bus_bounds(
                bus,
                &requests,
                &|core, demand| inflations[core.0 as usize].inflate(demand),
                approach,
                spec,
            ));
        }
        bus_counters.refutations = bus_refutations.len() as u64;
        bus_counters.sim_secs = started.elapsed().as_secs_f64();
        bus_counters.ws_reused = scratch.ws.reuses() - reuses_before;
    }

    Ok(PlatformValidation {
        cores,
        bus_counters,
        bus_refutations,
        transfers_checked,
    })
}
