//! Typed analysis configuration, resolved exactly once at the CLI edge.
//!
//! Every knob that used to leak through scattered `std::env` reads
//! (`PMCS_JOBS` in the bench worker pool, `PMCS_AUDIT` deep inside the
//! MILP engine) now lives on [`AnalysisConfig`]. Binaries call
//! [`AnalysisConfig::resolve`] with whatever their command line provided;
//! the environment is consulted **only there**, with the documented
//! precedence *flag > environment > default*. Library code receives the
//! resolved struct and never touches the process environment.

use std::thread;

use pmcs_core::{BackendKind, AUDIT_ENV_VAR};

/// Environment variable naming the worker-thread count (CLI edge only;
/// an explicit `--jobs` flag wins).
pub const JOBS_ENV_VAR: &str = "PMCS_JOBS";

/// Environment variable selecting the LP backend for MILP-based analysis
/// (`dense` or `revised`; CLI edge only, an explicit `--lp-backend` flag
/// wins). Unset means the analysis keeps its default exact-engine base
/// and the MILP engine, where used, runs its dense reference backend.
pub const LP_BACKEND_ENV_VAR: &str = "PMCS_LP_BACKEND";

/// Environment variable naming the number of adversarial release plans
/// to cross-validate per schedulable set (CLI edge only; an explicit
/// `--cross-validate` flag wins). `0` (the default) disables
/// cross-validation.
pub const CROSS_VALIDATE_ENV_VAR: &str = "PMCS_CROSS_VALIDATE";

/// Environment variable naming the worker count of the exact engine's
/// branch-and-bound rescue path (CLI edge only; an explicit `--bnb-jobs`
/// flag wins). `0` (the default) disables branch-and-bound: windows that
/// exhaust the memo budget fall back to the safe cap instead.
pub const BNB_JOBS_ENV_VAR: &str = "PMCS_BNB_JOBS";

/// Environment variable naming the slot depth up to which the
/// branch-and-bound rescue additionally prunes with LP-relaxation bounds
/// (CLI edge only; an explicit `--bnb-lp-depth` flag wins).
pub const BNB_LP_DEPTH_ENV_VAR: &str = "PMCS_BNB_LP_DEPTH";

/// Environment variable enabling certificate emission (`1`/`true`; CLI
/// edge only, an explicit `--emit-certs` flag wins). When on, every
/// analyzed set is re-certified *outside* the timed regions: the
/// proposed analysis re-runs with its proof transcript recorded, the
/// resulting bundle is validated by the independent `pmcs-cert` checker,
/// and `cert_*` counters land in the perf record.
pub const EMIT_CERTS_ENV_VAR: &str = "PMCS_EMIT_CERTS";

/// Resolved analysis configuration.
///
/// Construction paths:
///
/// * [`AnalysisConfig::default`] — single-threaded, cached, unaudited,
///   default solver limits; what library callers and tests want.
/// * [`AnalysisConfig::resolve`] — the CLI edge: merges explicit flags
///   with the `PMCS_JOBS` / `PMCS_AUDIT` environment variables
///   (precedence flag > env > default) and defaults `jobs` to the
///   machine's available parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Worker threads for sweep executors (always ≥ 1).
    pub jobs: usize,
    /// Wrap the delay engine in a window-level delay-bound cache.
    pub cache: bool,
    /// Cross-check every delay bound against the audited MILP
    /// formulation (exact rational arithmetic). Orders of magnitude
    /// slower; meant for validation runs.
    pub audit: bool,
    /// Memoization-entry budget of the exact engine (the solver limit:
    /// roughly bounds per-window memory and time).
    pub max_states: usize,
    /// `Some(kind)` replaces the exact-engine base of the stack with the
    /// MILP engine on that LP backend ([`BackendKind::Revised`] enables
    /// presolve, incremental RHS updates and warm starts). `None` (the
    /// default) keeps the exact combinatorial engine.
    pub lp_backend: Option<BackendKind>,
    /// Number of adversarial release plans to simulate per schedulable
    /// set, checking observed worst responses against the analytical WCRT
    /// bounds (`0` disables cross-validation).
    pub cross_validate: usize,
    /// Emit a machine-checkable certificate bundle for every analyzed
    /// set (outside the timed regions) and validate it with the
    /// independent `pmcs-cert` checker.
    pub emit_certs: bool,
    /// Worker threads of the exact engine's parallel branch-and-bound
    /// rescue for windows that exhaust the memo budget (`0` disables the
    /// rescue; the engine then reports its safe fallback cap). Ignored —
    /// forced off — when `emit_certs` is set, because branch-and-bound
    /// results carry no replayable DP table to certify.
    pub bnb_jobs: usize,
    /// Slot depth up to which branch-and-bound nodes additionally prune
    /// with LP-relaxation bounds (`0` disables LP bounding).
    pub bnb_lp_depth: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            jobs: 1,
            cache: true,
            audit: false,
            max_states: pmcs_core::engine::DEFAULT_MAX_STATES,
            lp_backend: None,
            cross_validate: 0,
            emit_certs: false,
            bnb_jobs: 0,
            bnb_lp_depth: 0,
        }
    }
}

/// Explicit command-line overrides handed to [`AnalysisConfig::resolve`].
/// `None` means "the flag was not given" and falls through to the
/// environment, then the default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliOverrides {
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--no-cache` (as `Some(false)`) / `--cache` (as `Some(true)`).
    pub cache: Option<bool>,
    /// `--audit` / `--no-audit`.
    pub audit: Option<bool>,
    /// `--max-states N`.
    pub max_states: Option<usize>,
    /// `--lp-backend dense|revised`.
    pub lp_backend: Option<BackendKind>,
    /// `--cross-validate N`.
    pub cross_validate: Option<usize>,
    /// `--emit-certs`.
    pub emit_certs: Option<bool>,
    /// `--bnb-jobs N`.
    pub bnb_jobs: Option<usize>,
    /// `--bnb-lp-depth N`.
    pub bnb_lp_depth: Option<usize>,
}

impl AnalysisConfig {
    /// Resolves the effective configuration at the CLI edge.
    ///
    /// Precedence per field: explicit flag > environment > default.
    /// Honored environment variables: [`JOBS_ENV_VAR`] (`PMCS_JOBS`,
    /// a thread count) and [`AUDIT_ENV_VAR`] (`PMCS_AUDIT`, `1`/`true`
    /// enables auditing). `jobs` defaults to
    /// [`std::thread::available_parallelism`] rather than 1, matching
    /// the historical bench-binary behavior.
    pub fn resolve(cli: &CliOverrides) -> Self {
        let defaults = AnalysisConfig::default();
        let jobs = cli
            .jobs
            .or_else(|| {
                std::env::var(JOBS_ENV_VAR)
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        let audit = cli.audit.unwrap_or_else(|| {
            std::env::var(AUDIT_ENV_VAR)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(defaults.audit)
        });
        let lp_backend = cli.lp_backend.or_else(|| {
            std::env::var(LP_BACKEND_ENV_VAR)
                .ok()
                .and_then(|v| BackendKind::parse(&v))
        });
        let cross_validate = cli
            .cross_validate
            .or_else(|| {
                std::env::var(CROSS_VALIDATE_ENV_VAR)
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(defaults.cross_validate);
        let emit_certs = cli.emit_certs.unwrap_or_else(|| {
            std::env::var(EMIT_CERTS_ENV_VAR)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(defaults.emit_certs)
        });
        let bnb_jobs = cli
            .bnb_jobs
            .or_else(|| {
                std::env::var(BNB_JOBS_ENV_VAR)
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(defaults.bnb_jobs);
        let bnb_lp_depth = cli
            .bnb_lp_depth
            .or_else(|| {
                std::env::var(BNB_LP_DEPTH_ENV_VAR)
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(defaults.bnb_lp_depth);
        AnalysisConfig {
            jobs,
            cache: cli.cache.unwrap_or(defaults.cache),
            audit,
            max_states: cli.max_states.unwrap_or(defaults.max_states).max(1),
            lp_backend,
            cross_validate,
            emit_certs,
            bnb_jobs,
            bnb_lp_depth,
        }
    }

    /// A copy with a different worker count (convenience for sweeps).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// A copy with the delay cache enabled or disabled.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// A copy with the MILP base engine on the given LP backend
    /// (`None` restores the exact-engine base).
    pub fn with_lp_backend(mut self, backend: Option<BackendKind>) -> Self {
        self.lp_backend = backend;
        self
    }

    /// A copy with a different number of cross-validation plans per
    /// schedulable set (`0` disables cross-validation).
    pub fn with_cross_validate(mut self, plans: usize) -> Self {
        self.cross_validate = plans;
        self
    }

    /// A copy with certificate emission enabled or disabled.
    pub fn with_emit_certs(mut self, emit: bool) -> Self {
        self.emit_certs = emit;
        self
    }

    /// A copy with the branch-and-bound rescue enabled on `jobs` workers
    /// (`0` disables it).
    pub fn with_bnb_jobs(mut self, jobs: usize) -> Self {
        self.bnb_jobs = jobs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_threaded_cached_unaudited() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.jobs, 1);
        assert!(cfg.cache);
        assert!(!cfg.audit);
        assert!(cfg.max_states > 0);
    }

    #[test]
    fn explicit_flags_win() {
        let cfg = AnalysisConfig::resolve(&CliOverrides {
            jobs: Some(3),
            cache: Some(false),
            audit: Some(true),
            max_states: Some(7),
            lp_backend: Some(BackendKind::Revised),
            cross_validate: Some(5),
            emit_certs: Some(true),
            bnb_jobs: Some(2),
            bnb_lp_depth: Some(3),
        });
        assert_eq!(cfg.jobs, 3);
        assert!(!cfg.cache);
        assert!(cfg.audit);
        assert_eq!(cfg.max_states, 7);
        assert_eq!(cfg.lp_backend, Some(BackendKind::Revised));
        assert_eq!(cfg.cross_validate, 5);
        assert!(cfg.emit_certs);
        assert_eq!(cfg.bnb_jobs, 2);
        assert_eq!(cfg.bnb_lp_depth, 3);
    }

    #[test]
    fn lp_backend_defaults_to_none() {
        assert_eq!(AnalysisConfig::default().lp_backend, None);
        let cfg = AnalysisConfig::default().with_lp_backend(Some(BackendKind::Dense));
        assert_eq!(cfg.lp_backend, Some(BackendKind::Dense));
    }

    #[test]
    fn zero_requests_are_clamped() {
        let cfg = AnalysisConfig::resolve(&CliOverrides {
            jobs: Some(0),
            max_states: Some(0),
            ..CliOverrides::default()
        });
        assert_eq!(cfg.jobs, 1);
        assert_eq!(cfg.max_states, 1);
    }

    #[test]
    fn builder_helpers_compose() {
        let cfg = AnalysisConfig::default()
            .with_jobs(4)
            .with_cache(false)
            .with_cross_validate(3);
        assert_eq!(cfg.jobs, 4);
        assert!(!cfg.cache);
        assert_eq!(cfg.cross_validate, 3);
    }

    #[test]
    fn cross_validate_defaults_off() {
        assert_eq!(AnalysisConfig::default().cross_validate, 0);
    }

    #[test]
    fn bnb_defaults_off() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.bnb_jobs, 0);
        assert_eq!(cfg.bnb_lp_depth, 0);
        assert_eq!(AnalysisConfig::default().with_bnb_jobs(4).bnb_jobs, 4);
    }

    #[test]
    fn emit_certs_defaults_off() {
        assert!(!AnalysisConfig::default().emit_certs);
        assert!(AnalysisConfig::default().with_emit_certs(true).emit_certs);
    }
}
