//! Typed analysis configuration, resolved exactly once at the CLI edge.
//!
//! Every knob that used to leak through scattered `std::env` reads
//! (`PMCS_JOBS` in the bench worker pool, `PMCS_AUDIT` deep inside the
//! MILP engine) now lives on [`AnalysisConfig`]. Binaries call
//! [`AnalysisConfig::resolve`] with whatever their command line provided;
//! the environment is consulted **only there**, with the documented
//! precedence *flag > environment > default*. Library code receives the
//! resolved struct and never touches the process environment.

use std::thread;

use pmcs_core::AUDIT_ENV_VAR;

/// Environment variable naming the worker-thread count (CLI edge only;
/// an explicit `--jobs` flag wins).
pub const JOBS_ENV_VAR: &str = "PMCS_JOBS";

/// Resolved analysis configuration.
///
/// Construction paths:
///
/// * [`AnalysisConfig::default`] — single-threaded, cached, unaudited,
///   default solver limits; what library callers and tests want.
/// * [`AnalysisConfig::resolve`] — the CLI edge: merges explicit flags
///   with the `PMCS_JOBS` / `PMCS_AUDIT` environment variables
///   (precedence flag > env > default) and defaults `jobs` to the
///   machine's available parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Worker threads for sweep executors (always ≥ 1).
    pub jobs: usize,
    /// Wrap the delay engine in a window-level delay-bound cache.
    pub cache: bool,
    /// Cross-check every delay bound against the audited MILP
    /// formulation (exact rational arithmetic). Orders of magnitude
    /// slower; meant for validation runs.
    pub audit: bool,
    /// Memoization-entry budget of the exact engine (the solver limit:
    /// roughly bounds per-window memory and time).
    pub max_states: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            jobs: 1,
            cache: true,
            audit: false,
            max_states: pmcs_core::engine::DEFAULT_MAX_STATES,
        }
    }
}

/// Explicit command-line overrides handed to [`AnalysisConfig::resolve`].
/// `None` means "the flag was not given" and falls through to the
/// environment, then the default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliOverrides {
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--no-cache` (as `Some(false)`) / `--cache` (as `Some(true)`).
    pub cache: Option<bool>,
    /// `--audit` / `--no-audit`.
    pub audit: Option<bool>,
    /// `--max-states N`.
    pub max_states: Option<usize>,
}

impl AnalysisConfig {
    /// Resolves the effective configuration at the CLI edge.
    ///
    /// Precedence per field: explicit flag > environment > default.
    /// Honored environment variables: [`JOBS_ENV_VAR`] (`PMCS_JOBS`,
    /// a thread count) and [`AUDIT_ENV_VAR`] (`PMCS_AUDIT`, `1`/`true`
    /// enables auditing). `jobs` defaults to
    /// [`std::thread::available_parallelism`] rather than 1, matching
    /// the historical bench-binary behavior.
    pub fn resolve(cli: &CliOverrides) -> Self {
        let defaults = AnalysisConfig::default();
        let jobs = cli
            .jobs
            .or_else(|| {
                std::env::var(JOBS_ENV_VAR)
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        let audit = cli.audit.unwrap_or_else(|| {
            std::env::var(AUDIT_ENV_VAR)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(defaults.audit)
        });
        AnalysisConfig {
            jobs,
            cache: cli.cache.unwrap_or(defaults.cache),
            audit,
            max_states: cli.max_states.unwrap_or(defaults.max_states).max(1),
        }
    }

    /// A copy with a different worker count (convenience for sweeps).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// A copy with the delay cache enabled or disabled.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_threaded_cached_unaudited() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.jobs, 1);
        assert!(cfg.cache);
        assert!(!cfg.audit);
        assert!(cfg.max_states > 0);
    }

    #[test]
    fn explicit_flags_win() {
        let cfg = AnalysisConfig::resolve(&CliOverrides {
            jobs: Some(3),
            cache: Some(false),
            audit: Some(true),
            max_states: Some(7),
        });
        assert_eq!(cfg.jobs, 3);
        assert!(!cfg.cache);
        assert!(cfg.audit);
        assert_eq!(cfg.max_states, 7);
    }

    #[test]
    fn zero_requests_are_clamped() {
        let cfg = AnalysisConfig::resolve(&CliOverrides {
            jobs: Some(0),
            max_states: Some(0),
            ..CliOverrides::default()
        });
        assert_eq!(cfg.jobs, 1);
        assert_eq!(cfg.max_states, 1);
    }

    #[test]
    fn builder_helpers_compose() {
        let cfg = AnalysisConfig::default().with_jobs(4).with_cache(false);
        assert_eq!(cfg.jobs, 4);
        assert!(!cfg.cache);
    }
}
