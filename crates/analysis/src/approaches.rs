//! [`Analyzer`] implementations for every approach the paper evaluates.
//!
//! | name          | analyzer                | legacy entry point                  |
//! |---------------|-------------------------|-------------------------------------|
//! | `proposed`    | [`ProposedAnalyzer`]    | `pmcs_core::analyze_task_set`       |
//! | `wp`          | [`WpAnalyzer`]          | `pmcs_baselines::WpAnalysis`        |
//! | `nps`         | [`NpsAnalyzer`] (carry) | `pmcs_baselines::NpsAnalysis::with_carry` |
//! | `nps-classic` | [`NpsAnalyzer`]         | `pmcs_baselines::NpsAnalysis::new`  |
//! | `wp-milp`     | [`WpMilpAnalyzer`]      | `pmcs_baselines::wp_milp_analysis`  |
//!
//! The first four make up [`Registry::standard`](crate::Registry::standard)
//! — the paper's Fig. 2 comparison. `wp-milp` (the paper's improved
//! analysis of \[3\]: the MILP formulation pinned to all-NLS markings) is
//! provided but not registered by default, so standard sweep output stays
//! exactly four columns; registering it is the one-liner the README
//! walkthrough demonstrates.

use pmcs_baselines::{wp_milp_analysis, NpsAnalysis, WpAnalysis};
use pmcs_core::analyze_task_set;
use pmcs_model::TaskSet;

use crate::analyzer::{AnalysisContext, Analyzer};
use crate::error::AnalysisError;
use crate::report::ApproachReport;

/// The paper's proposed protocol: MILP-based per-window delay bounds
/// plus the greedy latency-sensitivity marking of Section VI.
///
/// Runs on the context's engine stack, so it honors the configured
/// cache/audit layers and solver limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposedAnalyzer;

impl Analyzer for ProposedAnalyzer {
    fn name(&self) -> &str {
        "proposed"
    }

    fn analyze_with(
        &self,
        set: &TaskSet,
        ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError> {
        let before = ctx.solver_stats();
        let r = analyze_task_set(set, ctx.engine())?;
        let spent = ctx.solver_stats().since(&before);
        Ok(ApproachReport::from_schedulability(self.name(), &r).with_solver(spent))
    }
}

/// The closed-form Wasly–Pellizzoni interval-counting analysis
/// (reference \[3\], Section III-A).
#[derive(Debug, Clone, Default)]
pub struct WpAnalyzer {
    analysis: WpAnalysis,
}

impl WpAnalyzer {
    /// Creates the analyzer with default iteration limits.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Analyzer for WpAnalyzer {
    fn name(&self) -> &str {
        "wp"
    }

    fn analyze_with(
        &self,
        set: &TaskSet,
        _ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError> {
        Ok(ApproachReport::from_wp(
            self.name(),
            set,
            &self.analysis.analyze(set),
        ))
    }
}

/// Non-preemptive serialized-phases analysis (reference \[16\]), in the
/// paper's carry-in convention or the classical critical-instant one.
#[derive(Debug, Clone)]
pub struct NpsAnalyzer {
    analysis: NpsAnalysis,
    name: &'static str,
}

impl NpsAnalyzer {
    /// The paper's carry-in convention (`η_j + 1` interfering jobs);
    /// registered as `"nps"`.
    pub fn carry() -> Self {
        NpsAnalyzer {
            analysis: NpsAnalysis::with_carry(),
            name: "nps",
        }
    }

    /// The classical closed-window critical-instant convention;
    /// registered as `"nps-classic"`.
    pub fn classic() -> Self {
        NpsAnalyzer {
            analysis: NpsAnalysis::new(),
            name: "nps-classic",
        }
    }
}

impl Analyzer for NpsAnalyzer {
    fn name(&self) -> &str {
        self.name
    }

    fn analyze_with(
        &self,
        set: &TaskSet,
        _ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError> {
        Ok(ApproachReport::from_nps(
            self.name,
            set,
            &self.analysis.analyze(set),
        ))
    }
}

/// The paper's improved analysis of \[3\]: the MILP formulation with all
/// tasks pinned NLS (rules R3–R5 never fire, degenerating the proposed
/// protocol to Wasly–Pellizzoni).
///
/// Not part of [`Registry::standard`](crate::Registry::standard); the
/// ablation study registers it explicitly.
#[derive(Debug, Clone, Copy, Default)]
pub struct WpMilpAnalyzer;

impl Analyzer for WpMilpAnalyzer {
    fn name(&self) -> &str {
        "wp-milp"
    }

    fn analyze_with(
        &self,
        set: &TaskSet,
        ctx: &AnalysisContext,
    ) -> Result<ApproachReport, AnalysisError> {
        let before = ctx.solver_stats();
        let r = wp_milp_analysis(set, ctx.engine())?;
        let spent = ctx.solver_stats().since(&before);
        Ok(ApproachReport::from_schedulability(self.name(), &r).with_solver(spent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use pmcs_core::window::test_task;
    use pmcs_core::ExactEngine;

    fn demo_set() -> TaskSet {
        TaskSet::new(vec![
            test_task(0, 10, 2, 2, 1_000, 0, false),
            test_task(1, 20, 4, 4, 2_000, 1, false),
            test_task(2, 30, 3, 3, 3_000, 2, false),
        ])
        .expect("valid task set")
    }

    #[test]
    fn every_analyzer_agrees_with_its_legacy_entry_point() {
        let set = demo_set();
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&cfg);

        let proposed = ProposedAnalyzer.analyze_with(&set, &ctx).unwrap();
        let legacy = analyze_task_set(&set, &ExactEngine::default()).unwrap();
        assert_eq!(proposed.schedulable(), legacy.schedulable());

        let wp = WpAnalyzer::new().analyze_with(&set, &ctx).unwrap();
        assert_eq!(wp.schedulable(), WpAnalysis::default().is_schedulable(&set));

        let nps = NpsAnalyzer::carry().analyze_with(&set, &ctx).unwrap();
        assert_eq!(
            nps.schedulable(),
            NpsAnalysis::with_carry().is_schedulable(&set)
        );

        let classic = NpsAnalyzer::classic().analyze_with(&set, &ctx).unwrap();
        assert_eq!(
            classic.schedulable(),
            NpsAnalysis::new().is_schedulable(&set)
        );

        let wp_milp = WpMilpAnalyzer.analyze_with(&set, &ctx).unwrap();
        let legacy = wp_milp_analysis(&set, &ExactEngine::default()).unwrap();
        assert_eq!(wp_milp.schedulable(), legacy.schedulable());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProposedAnalyzer.name(), "proposed");
        assert_eq!(WpAnalyzer::new().name(), "wp");
        assert_eq!(NpsAnalyzer::carry().name(), "nps");
        assert_eq!(NpsAnalyzer::classic().name(), "nps-classic");
        assert_eq!(WpMilpAnalyzer.name(), "wp-milp");
    }

    #[test]
    fn one_shot_analyze_matches_context_path() {
        let set = demo_set();
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&cfg);
        let a = ProposedAnalyzer.analyze(&set, &cfg).unwrap();
        let b = ProposedAnalyzer.analyze_with(&set, &ctx).unwrap();
        assert_eq!(a, b);
    }
}
