//! Dynamic approach registry.
//!
//! Replaces the old `Approach::ALL` fixed-arity enum: sweeps, reports
//! and figures iterate whatever is registered, so adding a fifth
//! approach is `registry.register(Box::new(MyAnalyzer))` — no `[bool; 4]`
//! to widen anywhere.

use crate::analyzer::Analyzer;
use crate::approaches::{NpsAnalyzer, ProposedAnalyzer, WpAnalyzer};
use crate::error::AnalysisError;

/// An ordered collection of [`Analyzer`]s keyed by their stable names.
///
/// Order is significant: it defines the column order of sweep rows and
/// CSV output.
#[derive(Default)]
pub struct Registry {
    analyzers: Vec<Box<dyn Analyzer>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The paper's Fig. 2 comparison, in its column order:
    /// `proposed`, `wp`, `nps`, `nps-classic`.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(ProposedAnalyzer));
        r.register(Box::new(WpAnalyzer::new()));
        r.register(Box::new(NpsAnalyzer::carry()));
        r.register(Box::new(NpsAnalyzer::classic()));
        r
    }

    /// Appends an analyzer.
    ///
    /// # Panics
    ///
    /// Panics if an analyzer with the same name is already registered —
    /// duplicate names would make `get` ambiguous and CSV columns
    /// indistinguishable.
    pub fn register(&mut self, analyzer: Box<dyn Analyzer>) {
        assert!(
            self.get(analyzer.name()).is_none(),
            "analyzer {:?} is already registered",
            analyzer.name()
        );
        self.analyzers.push(analyzer);
    }

    /// Looks an analyzer up by its stable name.
    pub fn get(&self, name: &str) -> Option<&dyn Analyzer> {
        self.analyzers
            .iter()
            .find(|a| a.name() == name)
            .map(|a| a.as_ref())
    }

    /// Like [`Registry::get`], but failing with
    /// [`AnalysisError::UnknownApproach`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::UnknownApproach`] when `name` is not
    /// registered.
    pub fn require(&self, name: &str) -> Result<&dyn Analyzer, AnalysisError> {
        self.get(name)
            .ok_or_else(|| AnalysisError::UnknownApproach(name.to_string()))
    }

    /// Iterates the analyzers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Analyzer> {
        self.analyzers.iter().map(|a| a.as_ref())
    }

    /// The registered names, in registration order (sweep column order).
    pub fn labels(&self) -> Vec<String> {
        self.analyzers
            .iter()
            .map(|a| a.name().to_string())
            .collect()
    }

    /// Number of registered analyzers.
    pub fn len(&self) -> usize {
        self.analyzers.len()
    }

    /// `true` iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.analyzers.is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("analyzers", &self.labels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::WpMilpAnalyzer;

    #[test]
    fn standard_registry_matches_the_papers_column_order() {
        let r = Registry::standard();
        assert_eq!(r.labels(), ["proposed", "wp", "nps", "nps-classic"]);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let r = Registry::standard();
        assert!(r.get("proposed").is_some());
        assert!(r.get("bogus").is_none());
        assert!(r.require("wp").is_ok());
        assert!(matches!(
            r.require("bogus"),
            Err(AnalysisError::UnknownApproach(_))
        ));
    }

    #[test]
    fn a_fifth_approach_is_one_registration() {
        let mut r = Registry::standard();
        r.register(Box::new(WpMilpAnalyzer));
        assert_eq!(r.len(), 5);
        assert_eq!(r.labels().last().map(String::as_str), Some("wp-milp"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::standard();
        r.register(Box::new(crate::approaches::ProposedAnalyzer));
    }
}
