//! Error type of the analysis facade.

use std::error::Error;
use std::fmt;

use pmcs_core::CoreError;

/// An analysis **failed** — as opposed to concluding "unschedulable".
///
/// The distinction matters for sweeps: a solver giving up or an audit
/// refuting a bound must be *counted as a failure* and surfaced, never
/// silently folded into the unschedulable bucket (which would quietly
/// bias schedulability ratios downward).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The underlying analysis pipeline reported an error (solver
    /// failure, non-convergence, audit refutation, model error).
    Core(CoreError),
    /// No analyzer with the requested name is registered.
    UnknownApproach(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Core(e) => write!(f, "analysis failed: {e}"),
            AnalysisError::UnknownApproach(name) => {
                write!(f, "no analyzer registered under the name {name:?}")
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Core(e) => Some(e),
            AnalysisError::UnknownApproach(_) => None,
        }
    }
}

impl From<CoreError> for AnalysisError {
    fn from(e: CoreError) -> Self {
        AnalysisError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcs_model::TaskId;

    #[test]
    fn display_and_source() {
        let e = AnalysisError::from(CoreError::NoConvergence {
            task: TaskId(1),
            iterations: 5,
        });
        assert!(e.to_string().contains("analysis failed"));
        assert!(Error::source(&e).is_some());

        let e = AnalysisError::UnknownApproach("bogus".into());
        assert!(e.to_string().contains("bogus"));
        assert!(Error::source(&e).is_none());
    }
}
