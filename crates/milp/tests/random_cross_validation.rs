//! Property tests cross-validating the MILP solver against brute-force
//! enumeration, and the LP solver against random feasible points.

use proptest::prelude::*;

use pmcs_milp::{Cmp, LinExpr, LpOutcome, Problem, Simplex, Solver};

/// Builds a random binary program with non-negative constraint weights so
/// the all-zero point is always feasible.
fn binary_program(
    objective: &[i32],
    constraints: &[(Vec<i32>, i32)],
) -> (Problem, Vec<pmcs_milp::Var>) {
    let n = objective.len();
    let mut p = Problem::maximize();
    let vars: Vec<_> = (0..n).map(|i| p.binary(format!("b{i}"))).collect();
    for (weights, cap) in constraints {
        let mut e = LinExpr::zero();
        for (v, w) in vars.iter().zip(weights) {
            e += *v * f64::from(*w);
        }
        p.constrain(e, Cmp::Le, f64::from(*cap));
    }
    let mut obj = LinExpr::zero();
    for (v, c) in vars.iter().zip(objective) {
        obj += *v * f64::from(*c);
    }
    p.set_objective(obj);
    (p, vars)
}

/// Exhaustive optimum over all binary assignments.
fn brute_force(objective: &[i32], constraints: &[(Vec<i32>, i32)]) -> f64 {
    let n = objective.len();
    let mut best = f64::NEG_INFINITY;
    for mask in 0u32..(1 << n) {
        let feasible = constraints.iter().all(|(w, cap)| {
            let lhs: i32 = (0..n)
                .map(|i| if mask >> i & 1 == 1 { w[i] } else { 0 })
                .sum();
            lhs <= *cap
        });
        if feasible {
            let obj: i32 = (0..n)
                .map(|i| if mask >> i & 1 == 1 { objective[i] } else { 0 })
                .sum();
            best = best.max(f64::from(obj));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch & bound matches brute-force enumeration on random binary
    /// programs (objective may include negative coefficients).
    #[test]
    fn bnb_matches_brute_force(
        objective in prop::collection::vec(-20i32..=20, 2..=7),
        raw_constraints in prop::collection::vec(
            (prop::collection::vec(0i32..=10, 7), 0i32..=30),
            1..=3,
        ),
    ) {
        let n = objective.len();
        let constraints: Vec<(Vec<i32>, i32)> = raw_constraints
            .into_iter()
            .map(|(w, cap)| (w[..n].to_vec(), cap))
            .collect();
        let (p, _) = binary_program(&objective, &constraints);
        let sol = Solver::new().solve(&p).unwrap();
        prop_assert!(sol.is_optimal());
        let expected = brute_force(&objective, &constraints);
        prop_assert!((sol.objective() - expected).abs() < 1e-6,
            "solver found {}, brute force {}", sol.objective(), expected);
        // The reported point must itself be feasible and achieve the value.
        prop_assert!(p.is_feasible(sol.values(), 1e-6));
    }

    /// The LP optimum dominates every random feasible point and the
    /// returned vertex is feasible.
    #[test]
    fn lp_optimum_dominates_feasible_points(
        coeffs in prop::collection::vec(-10.0f64..10.0, 3),
        rows in prop::collection::vec(
            (prop::collection::vec(0.1f64..5.0, 3), 1.0f64..20.0),
            1..=4,
        ),
        sample in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..3).map(|i| p.continuous(format!("x{i}"), 0.0, 10.0)).collect();
        for (w, cap) in &rows {
            let mut e = LinExpr::zero();
            for (v, c) in vars.iter().zip(w) {
                e += *v * *c;
            }
            p.constrain(e, Cmp::Le, *cap);
        }
        let mut obj = LinExpr::zero();
        for (v, c) in vars.iter().zip(&coeffs) {
            obj += *v * *c;
        }
        p.set_objective(obj.clone());

        let LpOutcome::Optimal(opt) = Simplex::new().solve(&p).unwrap() else {
            // All-zeros is feasible and bounds are finite, so the LP is
            // neither infeasible nor unbounded.
            panic!("expected optimal");
        };
        prop_assert!(p.is_feasible(opt.values(), 1e-6));

        // Scale the random sample into the feasible region.
        let mut point: Vec<f64> = sample;
        for (w, cap) in &rows {
            let lhs: f64 = point.iter().zip(w).map(|(x, c)| x * c).sum();
            if lhs > *cap {
                let scale = *cap / lhs;
                for x in &mut point {
                    *x *= scale;
                }
            }
        }
        prop_assert!(p.is_feasible(&point, 1e-6));
        let sampled = obj.evaluate(&point);
        prop_assert!(opt.objective() >= sampled - 1e-6,
            "optimum {} below feasible point {}", opt.objective(), sampled);
    }

    /// Mixed problems: fixing the binaries of the B&B solution and
    /// re-solving the LP cannot improve the objective.
    #[test]
    fn fixing_binaries_reproduces_milp_objective(
        cont_coeff in 0.5f64..5.0,
        bin_coeffs in prop::collection::vec(-5.0f64..5.0, 2..=4),
        cap in 2.0f64..12.0,
    ) {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, 4.0);
        let bins: Vec<_> = (0..bin_coeffs.len()).map(|i| p.binary(format!("b{i}"))).collect();
        let mut use_expr = LinExpr::from(x);
        for b in &bins {
            use_expr += *b * 2.0;
        }
        p.constrain(use_expr, Cmp::Le, cap);
        let mut obj = x * cont_coeff;
        for (b, c) in bins.iter().zip(&bin_coeffs) {
            obj += *b * *c;
        }
        p.set_objective(obj);

        let milp = Solver::new().solve(&p).unwrap();
        prop_assert!(milp.is_optimal());

        // Fix binaries to the solved values; LP optimum must equal MILP.
        let mut fixed = p.clone();
        for b in &bins {
            let v = milp.value(*b).round();
            fixed.fix(*b, v);
        }
        let LpOutcome::Optimal(lp) = Simplex::new().solve(&fixed).unwrap() else {
            panic!("fixed LP must stay feasible");
        };
        prop_assert!((lp.objective() - milp.objective()).abs() < 1e-6);
    }
}
