//! Differential tests: the dense tableau simplex is the reference oracle,
//! and the presolve + revised-simplex pipeline must agree with it on
//! feasibility and objective for random LPs and window-style MILPs. The
//! exact-rational audit must certify solutions from both backends, and a
//! corrupted presolve transform must *fail* the audit (the negative test
//! for the transform-inversion keystone).

use proptest::prelude::*;

use pmcs_milp::{
    audit, presolve, BackendKind, Cmp, LinExpr, MilpError, PresolveOutcome, Problem, Solver,
    WarmStart,
};

fn dense() -> Solver {
    Solver::new().with_backend(BackendKind::Dense)
}

fn revised() -> Solver {
    Solver::new().with_backend(BackendKind::Revised)
}

/// Random bounded LP: continuous vars in [0, ub], mixed Le/Ge rows.
/// Ge rows can make the program infeasible — both backends must agree on
/// that verdict too.
fn bounded_lp(
    ubs: &[f64],
    coeffs: &[f64],
    rows: &[(Vec<f64>, bool, f64)],
) -> (Problem, Vec<pmcs_milp::Var>) {
    let mut p = Problem::maximize();
    let vars: Vec<_> = ubs
        .iter()
        .enumerate()
        .map(|(i, ub)| p.continuous(format!("x{i}"), 0.0, *ub))
        .collect();
    for (w, is_ge, rhs) in rows {
        let mut e = LinExpr::zero();
        for (v, c) in vars.iter().zip(w) {
            e += *v * *c;
        }
        p.constrain(e, if *is_ge { Cmp::Ge } else { Cmp::Le }, *rhs);
    }
    let mut obj = LinExpr::zero();
    for (v, c) in vars.iter().zip(coeffs) {
        obj += *v * *c;
    }
    p.set_objective(obj);
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense and revised backends agree on feasibility and objective for
    /// random bounded LPs (pure continuous, so B&B solves just the root).
    #[test]
    fn backends_agree_on_random_lps(
        ubs in prop::collection::vec(1.0f64..10.0, 2..=5),
        coeffs in prop::collection::vec(-10.0f64..10.0, 5),
        rows in prop::collection::vec(
            (prop::collection::vec(0.0f64..5.0, 5), any::<bool>(), 0.5f64..15.0),
            1..=4,
        ),
    ) {
        let n = ubs.len();
        let rows: Vec<(Vec<f64>, bool, f64)> = rows
            .into_iter()
            .map(|(w, g, r)| (w[..n].to_vec(), g, r))
            .collect();
        let (p, _) = bounded_lp(&ubs, &coeffs[..n], &rows);
        match (dense().solve(&p), revised().solve(&p)) {
            (Ok(a), Ok(b)) => {
                prop_assert!(a.is_optimal() && b.is_optimal());
                prop_assert!((a.objective() - b.objective()).abs() < 1e-5,
                    "dense {} vs revised {}", a.objective(), b.objective());
                prop_assert!(p.is_feasible(b.values(), 1e-6),
                    "restored revised point infeasible in original space");
            }
            (Err(MilpError::Infeasible), Err(MilpError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "backends disagree: dense {a:?}, revised {b:?}"),
        }
    }

    /// Dense and revised backends agree on random window-style MILPs:
    /// binary "interval placement" vars plus a continuous slack, Le budget
    /// rows — the same shape as the analysis' busy-window programs.
    #[test]
    fn backends_agree_on_random_window_milps(
        bin_coeffs in prop::collection::vec(-8i32..=8, 2..=6),
        weights in prop::collection::vec(1i32..=6, 6),
        cap in 3i32..=18,
        slack_coeff in 0.25f64..3.0,
    ) {
        let n = bin_coeffs.len();
        let mut p = Problem::maximize();
        let bins: Vec<_> = (0..n).map(|i| p.binary(format!("b{i}"))).collect();
        let slack = p.continuous("s", 0.0, 5.0);
        let mut use_expr = LinExpr::from(slack);
        for (b, w) in bins.iter().zip(&weights) {
            use_expr += *b * f64::from(*w);
        }
        p.constrain(use_expr, Cmp::Le, f64::from(cap));
        let mut obj = slack * slack_coeff;
        for (b, c) in bins.iter().zip(&bin_coeffs) {
            obj += *b * f64::from(*c);
        }
        p.set_objective(obj);

        let a = dense().solve(&p).unwrap();
        let b = revised().solve(&p).unwrap();
        prop_assert!(a.is_optimal() && b.is_optimal());
        prop_assert!((a.objective() - b.objective()).abs() < 1e-5,
            "dense {} vs revised {}", a.objective(), b.objective());
        prop_assert!(p.is_feasible(b.values(), 1e-6));

        // The exact audit certifies the restored revised solution against
        // the ORIGINAL (pre-presolve) problem.
        let report = audit::audit_solution(&p, &b);
        prop_assert!(!report.failed(),
            "audit failed: {:?}", report.problems().collect::<Vec<_>>());
    }
}

/// `solve_audited` certifies answers from both backends on a fixed mixed
/// problem, and both reach the same optimum.
#[test]
fn solve_audited_certifies_both_backends() {
    let mut p = Problem::maximize();
    let x = p.continuous("x", 0.0, 4.0);
    let y = p.integer("y", 0.0, 6.0);
    let b = p.binary("b");
    p.constrain(x + 2.0 * y + 3.0 * b, Cmp::Le, 11.0);
    p.constrain(x + y, Cmp::Ge, 2.0);
    p.set_objective(3.0 * x + 2.0 * y + 1.0 * b);

    let mut objectives = Vec::new();
    for backend in [BackendKind::Dense, BackendKind::Revised] {
        let audited = Solver::new()
            .with_backend(backend)
            .solve_audited(&p)
            .unwrap();
        let sol = audited.solution().expect("problem is feasible");
        assert!(
            audited.report.certified(),
            "{backend} audit not certified: {:?}",
            audited.report.problems().collect::<Vec<_>>()
        );
        objectives.push(sol.objective());
    }
    assert!(
        (objectives[0] - objectives[1]).abs() < 1e-6,
        "backends disagree: {objectives:?}"
    );
}

/// Negative test for the correctness keystone: corrupting a presolve
/// transform corrupts the restored solution, and the exact audit (which
/// always checks against the original problem) catches it.
#[test]
fn corrupted_transform_fails_the_audit() {
    let mut p = Problem::maximize();
    let x = p.continuous("x", 3.0, 3.0); // fixed by bounds → FixVar transform
    let y = p.continuous("y", 0.0, 10.0);
    p.constrain(x + y, Cmp::Le, 8.0);
    p.set_objective(2.0 * x + y);

    let PresolveOutcome::Reduced(mut program) = presolve(&p, &[]).unwrap() else {
        panic!("problem is feasible");
    };

    // Sanity: the untampered pipeline is certified.
    let clean = Solver::new()
        .solve_program(&program, None)
        .unwrap()
        .solution;
    assert!((clean.objective() - 11.0).abs() < 1e-6);
    assert!(!audit::audit_solution(&p, &clean).failed());

    // Corrupt the FixVar transform: restore now reports x=0 instead of 3.
    for t in program.transforms_mut() {
        if let pmcs_milp::Transform::FixVar { value, .. } = t {
            *value = 0.0;
        }
    }
    let tampered = Solver::new()
        .solve_program(&program, None)
        .unwrap()
        .solution;
    let report = audit::audit_solution(&p, &tampered);
    assert!(
        report.failed(),
        "audit must reject the corrupted restoration: {report:?}"
    );
}

/// Beale's classical cycling LP terminates at the right optimum on both
/// backends (Bland anti-cycling regression).
#[test]
fn beale_example_terminates_on_both_backends() {
    let mut p = Problem::minimize();
    let x1 = p.continuous("x1", 0.0, f64::INFINITY);
    let x2 = p.continuous("x2", 0.0, f64::INFINITY);
    let x3 = p.continuous("x3", 0.0, f64::INFINITY);
    let x4 = p.continuous("x4", 0.0, f64::INFINITY);
    p.constrain(0.25 * x1 - 8.0 * x2 - 1.0 * x3 + 9.0 * x4, Cmp::Le, 0.0);
    p.constrain(0.5 * x1 - 12.0 * x2 - 0.5 * x3 + 3.0 * x4, Cmp::Le, 0.0);
    p.constrain(1.0 * x3, Cmp::Le, 1.0);
    p.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4);

    for backend in [BackendKind::Dense, BackendKind::Revised] {
        let sol = Solver::new().with_backend(backend).solve(&p).unwrap();
        assert!(sol.is_optimal(), "{backend}: not optimal");
        assert!(
            (sol.objective() + 0.77).abs() < 1e-6,
            "{backend}: obj={}",
            sol.objective()
        );
    }
}

/// Re-solving the same presolved program with an updated budget RHS and
/// the previous root basis warm-starts successfully and matches a cold
/// dense solve of the equivalently-updated original problem.
#[test]
fn rhs_update_warm_start_matches_dense_resolve() {
    // Budget-style program: maximize placement subject to a budget row
    // whose RHS changes between rounds (the C7 pattern from pmcs-core).
    let build = |budget: f64| {
        let mut p = Problem::maximize();
        let bins: Vec<_> = (0..4).map(|i| p.binary(format!("b{i}"))).collect();
        let y = p.continuous("y", 0.0, 10.0);
        let mut use_expr = LinExpr::from(y);
        for (i, b) in bins.iter().enumerate() {
            use_expr += *b * (1.0 + i as f64);
        }
        p.constrain_named(Some("C7_0"), use_expr, Cmp::Le, budget);
        let mut obj = LinExpr::from(y);
        for b in &bins {
            obj += *b * 2.0;
        }
        p.set_objective(obj);
        p
    };

    let p0 = build(6.0);
    let budget_row = 0usize;
    let PresolveOutcome::Reduced(mut program) = presolve(&p0, &[budget_row]).unwrap() else {
        panic!("feasible");
    };

    let solver = Solver::new().with_backend(BackendKind::Revised);
    let first = solver.solve_program(&program, None).unwrap();
    let dense0 = dense().solve(&p0).unwrap();
    assert!((first.solution.objective() - dense0.objective()).abs() < 1e-6);

    // Round 2: only the budget RHS changes; warm-start from round 1's basis.
    program.update_rhs(budget_row, 9.0).unwrap();
    let second = solver
        .solve_program(&program, first.basis.as_ref())
        .unwrap();
    let dense1 = dense().solve(&build(9.0)).unwrap();
    assert!(
        (second.solution.objective() - dense1.objective()).abs() < 1e-6,
        "warm re-solve {} vs dense {}",
        second.solution.objective(),
        dense1.objective()
    );
    assert!(
        second.solution.stats().warm_start_hits > 0,
        "expected at least one warm-start hit, stats: {}",
        second.solution.stats()
    );
    // Warm starts never silently fall back without being counted.
    assert_ne!(
        second.solution.stats().warm_start_attempts,
        0,
        "warm attempt must be recorded"
    );
    let _ = WarmStart::Hit; // re-export sanity: the enum is public API
}
