//! Exact rational LP solving for certificate *generation*.
//!
//! [`solve_dual_exact`] solves, in exact [`Rational`] arithmetic, the dual
//! of an LP relaxation given in `≤`-normal form (see
//! [`crate::audit::le_normal_form`]):
//!
//! * primal: `max cᵀx  s.t.  R·x ≤ r` (variables free — variable bounds
//!   are rows of `R`);
//! * dual: `min rᵀy  s.t.  Rᵀ·y = c, y ≥ 0`.
//!
//! A dual-optimal `y` is a *bound certificate*: any feasible primal `x`
//! satisfies `cᵀx = (Rᵀy)ᵀx = yᵀ(Rx) ≤ yᵀr`, verifiable by pure
//! substitution. A dual *descent ray* `d` (`Rᵀd = 0`, `d ≥ 0`, `rᵀd < 0`)
//! is exactly a Farkas certificate of primal infeasibility. One solver
//! therefore produces both leaf kinds of the branch-and-bound certificate
//! tree ([`crate::audit::BbTree`]).
//!
//! The implementation is a dense two-phase tableau simplex with **Bland's
//! rule** (guaranteed termination, no cycling) over `i128` rationals.
//! It is deliberately slow-but-exact: certificate generation runs outside
//! timed regions, and the problems it sees (single analysis windows) are
//! small. The independent checker never calls this module — it only
//! re-substitutes the multipliers this module found.

use crate::rational::Rational;

/// One `≤`-row of the primal system: `coeffs · x ≤ rhs`.
pub type ExactRow = (Vec<Rational>, Rational);

/// Outcome of an exact dual solve.
#[derive(Debug, Clone)]
pub enum DualOutcome {
    /// The dual has an optimum: `multipliers` prove `cᵀx ≤ bound` for all
    /// primal-feasible `x`; `primal` is the corresponding primal vertex
    /// (used only to guide branching — certificates never depend on it).
    Bounded {
        /// Dual-optimal multipliers, one per normal-form row, all `≥ 0`.
        multipliers: Vec<Rational>,
        /// The proven objective bound `yᵀr` (objective constant excluded).
        bound: Rational,
        /// Primal variable values recovered from the simplex multipliers.
        primal: Vec<Rational>,
    },
    /// The dual is unbounded below, so the primal is infeasible; `farkas`
    /// is a non-negative combination of rows deriving `0 ≤ negative`.
    PrimalInfeasible {
        /// Farkas multipliers, one per normal-form row, all `≥ 0`.
        farkas: Vec<Rational>,
    },
}

/// Hard cap on simplex pivots; Bland's rule terminates finitely but this
/// bounds pathological instances (generation gives up, never the checker).
const MAX_PIVOTS: usize = 200_000;

const OVERFLOW: &str = "exact.overflow: rational arithmetic overflowed";

/// Solves `min rᵀy s.t. Rᵀy = c, y ≥ 0` exactly.
///
/// `rows` is the primal `≤`-normal form (`m` rows over `n` variables),
/// `objective` the primal objective coefficients (length `n`, constant
/// excluded).
///
/// # Errors
///
/// Returns an error string when the dual is infeasible (primal unbounded
/// or lacking finite variable bounds), on rational overflow, on the pivot
/// cap, or on malformed input. Errors mean "could not certify", never an
/// unsound certificate.
pub fn solve_dual_exact(rows: &[ExactRow], objective: &[Rational]) -> Result<DualOutcome, String> {
    let n = objective.len();
    let m = rows.len();
    for (i, (coeffs, _)) in rows.iter().enumerate() {
        if coeffs.len() != n {
            return Err(format!(
                "exact.malformed: row {i} has {} coefficients for {n} variables",
                coeffs.len()
            ));
        }
    }

    // Tableau over the dual: one equation per primal variable j,
    //   sum_i R[i][j] * y_i = c_j,
    // sign-flipped where needed so every right-hand side is >= 0.
    // Columns: m dual variables, then n artificials, then the rhs.
    let ncols = m + n;
    let mut sign = vec![Rational::ONE; n];
    let mut tab: Vec<Vec<Rational>> = Vec::with_capacity(n);
    for j in 0..n {
        let mut row = vec![Rational::ZERO; ncols + 1];
        let flip = objective[j].is_negative();
        if flip {
            sign[j] = -Rational::ONE;
        }
        for (i, (coeffs, _)) in rows.iter().enumerate() {
            row[i] = if flip { -coeffs[j] } else { coeffs[j] };
        }
        row[m + j] = Rational::ONE;
        row[ncols] = if flip { -objective[j] } else { objective[j] };
        tab.push(row);
    }
    let mut basis: Vec<usize> = (m..m + n).collect();

    // Phase 1: minimize the artificial sum. Reduced costs with the
    // all-artificial basis: d_j = (j artificial ? 1 : 0) - sum_rows tab[.][j].
    let mut cost = vec![Rational::ZERO; ncols + 1];
    for j in 0..=ncols {
        let mut s = Rational::ZERO;
        for row in &tab {
            s = s.checked_add(row[j]).ok_or(OVERFLOW)?;
        }
        let base = if (m..ncols).contains(&j) {
            Rational::ONE
        } else {
            Rational::ZERO
        };
        cost[j] = base.checked_sub(s).ok_or(OVERFLOW)?;
    }

    run_simplex(&mut tab, &mut cost, &mut basis, m, true)?;
    if !cost[ncols].is_zero() {
        return Err(
            "exact.dual-infeasible: phase-1 optimum nonzero (primal unbounded or a variable \
             lacks the finite bounds that make the dual feasible)"
                .to_string(),
        );
    }
    drive_out_artificials(&mut tab, &mut basis, m)?;

    // Phase 2: minimize rᵀy. Rebuild reduced costs for the current basis.
    let phase2_cost = |col: usize| -> Rational {
        if col < m {
            rows[col].1
        } else {
            Rational::ZERO
        }
    };
    for j in 0..=ncols {
        let mut s = Rational::ZERO;
        for (row, &b) in tab.iter().zip(&basis) {
            let cb = phase2_cost(b);
            if !cb.is_zero() && !row[j].is_zero() {
                s = s
                    .checked_add(cb.checked_mul(row[j]).ok_or(OVERFLOW)?)
                    .ok_or(OVERFLOW)?;
            }
        }
        let base = if j < ncols {
            phase2_cost(j)
        } else {
            Rational::ZERO
        };
        cost[j] = base.checked_sub(s).ok_or(OVERFLOW)?;
    }

    match run_simplex(&mut tab, &mut cost, &mut basis, m, false)? {
        SimplexEnd::Optimal => {
            let mut multipliers = vec![Rational::ZERO; m];
            for (row, &b) in tab.iter().zip(&basis) {
                if b < m {
                    multipliers[b] = row[ncols];
                }
            }
            let mut bound = Rational::ZERO;
            for (y, (_, rhs)) in multipliers.iter().zip(rows) {
                if !y.is_zero() {
                    bound = bound
                        .checked_add(y.checked_mul(*rhs).ok_or(OVERFLOW)?)
                        .ok_or(OVERFLOW)?;
                }
            }
            // Primal recovery: x_j = sign_j * pi_j where the simplex
            // multiplier pi_j of equation j is minus the reduced cost of
            // artificial j (cost 0 in phase 2).
            let mut primal = Vec::with_capacity(n);
            for j in 0..n {
                let pi = -cost[m + j];
                primal.push(if sign[j].is_negative() { -pi } else { pi });
            }
            Ok(DualOutcome::Bounded {
                multipliers,
                bound,
                primal,
            })
        }
        SimplexEnd::Unbounded { entering } => {
            // Descent ray: d_entering = 1, d_basic(row) = -tab[row][entering]
            // (all >= 0 at an unboundedness detection), zero elsewhere.
            let mut farkas = vec![Rational::ZERO; m];
            if entering < m {
                farkas[entering] = Rational::ONE;
            } else {
                return Err("exact.internal: artificial column entered phase 2".to_string());
            }
            for (row, &b) in tab.iter().zip(&basis) {
                if b < m {
                    farkas[b] = -row[entering];
                } else if !row[entering].is_zero() {
                    return Err("exact.internal: basic artificial in descent ray".to_string());
                }
            }
            if farkas.iter().any(|y| y.is_negative()) {
                return Err("exact.internal: descent ray has a negative component".to_string());
            }
            Ok(DualOutcome::PrimalInfeasible { farkas })
        }
    }
}

enum SimplexEnd {
    Optimal,
    Unbounded {
        /// The column whose descent is unbounded.
        entering: usize,
    },
}

/// Bland-rule tableau iterations until optimality or unboundedness.
///
/// Artificial columns (indices `>= bar_from`) are barred from entering.
/// In phase 1 unboundedness is impossible (objective bounded below by 0),
/// so `phase1` only controls the error message on the impossible case.
fn run_simplex(
    tab: &mut [Vec<Rational>],
    cost: &mut [Rational],
    basis: &mut [usize],
    bar_from: usize,
    phase1: bool,
) -> Result<SimplexEnd, String> {
    let ncols = cost.len() - 1;
    for _ in 0..MAX_PIVOTS {
        // Bland: entering = lowest-index negative-reduced-cost column.
        let Some(entering) = (0..bar_from).find(|&j| cost[j].is_negative()) else {
            return Ok(SimplexEnd::Optimal);
        };
        // Ratio test; ties broken by lowest basis variable index (Bland).
        let mut leave: Option<(usize, Rational)> = None;
        for (row_idx, row) in tab.iter().enumerate() {
            if !row[entering].is_positive() {
                continue;
            }
            let ratio = row[ncols].checked_div(row[entering]).ok_or(OVERFLOW)?;
            let better = match &leave {
                None => true,
                Some((best_row, best)) => {
                    ratio < *best || (ratio == *best && basis[row_idx] < basis[*best_row])
                }
            };
            if better {
                leave = Some((row_idx, ratio));
            }
        }
        let Some((pivot_row, _)) = leave else {
            if phase1 {
                return Err("exact.internal: phase-1 objective unbounded".to_string());
            }
            return Ok(SimplexEnd::Unbounded { entering });
        };
        pivot(tab, cost, pivot_row, entering)?;
        basis[pivot_row] = entering;
    }
    Err("exact.pivot-limit: simplex pivot cap exceeded".to_string())
}

/// Pivots the tableau (and cost row) on `(pivot_row, pivot_col)`.
#[allow(clippy::needless_range_loop)] // reads the pivot row while writing others
fn pivot(
    tab: &mut [Vec<Rational>],
    cost: &mut [Rational],
    pivot_row: usize,
    pivot_col: usize,
) -> Result<(), String> {
    let ncols = cost.len() - 1;
    let p = tab[pivot_row][pivot_col];
    for j in 0..=ncols {
        tab[pivot_row][j] = tab[pivot_row][j].checked_div(p).ok_or(OVERFLOW)?;
    }
    for i in 0..tab.len() {
        if i == pivot_row || tab[i][pivot_col].is_zero() {
            continue;
        }
        let f = tab[i][pivot_col];
        for j in 0..=ncols {
            if !tab[pivot_row][j].is_zero() {
                let t = f.checked_mul(tab[pivot_row][j]).ok_or(OVERFLOW)?;
                tab[i][j] = tab[i][j].checked_sub(t).ok_or(OVERFLOW)?;
            }
        }
    }
    if !cost[pivot_col].is_zero() {
        let f = cost[pivot_col];
        for j in 0..=ncols {
            if !tab[pivot_row][j].is_zero() {
                let t = f.checked_mul(tab[pivot_row][j]).ok_or(OVERFLOW)?;
                cost[j] = cost[j].checked_sub(t).ok_or(OVERFLOW)?;
            }
        }
    }
    Ok(())
}

/// Pivots any zero-valued basic artificial out of the basis after phase 1.
///
/// The certificate problems always give every variable finite bounds, so
/// the dual equations carry linearly independent private columns and a
/// pivot column always exists; degenerate systems are reported as errors.
fn drive_out_artificials(
    tab: &mut [Vec<Rational>],
    basis: &mut [usize],
    m: usize,
) -> Result<(), String> {
    let rows = tab.len();
    for row_idx in 0..rows {
        if basis[row_idx] < m {
            continue;
        }
        let Some(col) = (0..m).find(|&j| !tab[row_idx][j].is_zero()) else {
            return Err(format!(
                "exact.degenerate: dual equation {} is linearly dependent \
                 (a primal variable without finite bounds?)",
                basis[row_idx] - m
            ));
        };
        // Zero-valued pivot: basic solution values are unchanged.
        let mut dummy_cost = vec![Rational::ZERO; tab[0].len()];
        pivot(tab, &mut dummy_cost, row_idx, col)?;
        basis[row_idx] = col;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: i128) -> Rational {
        Rational::from_int(v)
    }

    fn qr(n: i128, d: i128) -> Rational {
        Rational::new(n, d).expect("test rational")
    }

    /// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x, 0 <= y <= 10.
    /// LP optimum: x = 4, y = 0, objective 12.
    fn doc_rows() -> (Vec<ExactRow>, Vec<Rational>) {
        let rows = vec![
            (vec![q(1), q(1)], q(4)),
            (vec![q(1), q(3)], q(6)),
            (vec![q(-1), q(0)], q(0)), // x >= 0
            (vec![q(0), q(-1)], q(0)), // y >= 0
            (vec![q(0), q(1)], q(10)), // y <= 10
        ];
        (rows, vec![q(3), q(2)])
    }

    #[test]
    fn bounded_dual_matches_known_optimum() {
        let (rows, obj) = doc_rows();
        match solve_dual_exact(&rows, &obj).expect("solve") {
            DualOutcome::Bounded {
                multipliers,
                bound,
                primal,
            } => {
                assert_eq!(bound, q(12));
                assert_eq!(primal, vec![q(4), q(0)]);
                // Re-substitute: multipliers must recombine the objective.
                assert_eq!(multipliers.len(), rows.len());
                for y in &multipliers {
                    assert!(!y.is_negative());
                }
                for j in 0..obj.len() {
                    let mut s = Rational::ZERO;
                    for (y, (coeffs, _)) in multipliers.iter().zip(&rows) {
                        s = s.checked_add(y.checked_mul(coeffs[j]).unwrap()).unwrap();
                    }
                    assert_eq!(s, obj[j], "column {j}");
                }
            }
            other => panic!("expected Bounded, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_primal_yields_farkas_ray() {
        // x >= 2 (as -x <= -2) and x <= 1.
        let rows: Vec<ExactRow> = vec![(vec![q(-1)], q(-2)), (vec![q(1)], q(1))];
        match solve_dual_exact(&rows, &[q(1)]).expect("solve") {
            DualOutcome::PrimalInfeasible { farkas } => {
                // Farkas: combination eliminates x and derives 0 <= negative.
                let mut coeff = Rational::ZERO;
                let mut rhs = Rational::ZERO;
                for (y, (coeffs, r)) in farkas.iter().zip(&rows) {
                    assert!(!y.is_negative());
                    coeff = coeff
                        .checked_add(y.checked_mul(coeffs[0]).unwrap())
                        .unwrap();
                    rhs = rhs.checked_add(y.checked_mul(*r).unwrap()).unwrap();
                }
                assert!(coeff.is_zero());
                assert!(rhs.is_negative());
            }
            other => panic!("expected PrimalInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn fractional_vertex_is_recovered_exactly() {
        // max x + y s.t. 2x + y <= 3, x + 2y <= 3, x,y >= 0.
        // Optimum x = y = 1 objective 2; perturb to force fractions:
        // max 2x + y, same rows: optimum x = 3/2, y = 0? No:
        // vertices (0,0),(3/2,0),(1,1),(0,3/2); 2x+y: best 3 at (3/2,0)
        // and 3 at (1,1) — degenerate tie; use objective 3x + y: 9/2 at
        // (3/2, 0).
        let rows: Vec<ExactRow> = vec![
            (vec![q(2), q(1)], q(3)),
            (vec![q(1), q(2)], q(3)),
            (vec![q(-1), q(0)], q(0)),
            (vec![q(0), q(-1)], q(0)),
        ];
        match solve_dual_exact(&rows, &[q(3), q(1)]).expect("solve") {
            DualOutcome::Bounded { bound, primal, .. } => {
                assert_eq!(bound, qr(9, 2));
                assert_eq!(primal, vec![qr(3, 2), q(0)]);
            }
            other => panic!("expected Bounded, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_primal_is_reported_as_dual_infeasible() {
        // max x with only x >= 0: dual infeasible.
        let rows: Vec<ExactRow> = vec![(vec![q(-1)], q(0))];
        let err = solve_dual_exact(&rows, &[q(1)]).unwrap_err();
        assert!(err.starts_with("exact.dual-infeasible"), "{err}");
    }

    #[test]
    fn empty_variable_space_handles_sign_of_rhs() {
        // No variables; a row 0 <= -1 is a ready-made contradiction.
        let rows: Vec<ExactRow> = vec![(vec![], q(-1))];
        match solve_dual_exact(&rows, &[]).expect("solve") {
            DualOutcome::PrimalInfeasible { farkas } => {
                assert_eq!(farkas.len(), 1);
                assert!(farkas[0].is_positive());
            }
            other => panic!("expected PrimalInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn malformed_row_width_is_rejected() {
        let rows: Vec<ExactRow> = vec![(vec![q(1)], q(0))];
        assert!(solve_dual_exact(&rows, &[q(1), q(2)])
            .unwrap_err()
            .starts_with("exact.malformed"));
    }
}
