//! Solver error types.

use std::error::Error;
use std::fmt;

/// Errors reported by the LP/MILP solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MilpError {
    /// No assignment satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The simplex iteration limit was exhausted without convergence,
    /// usually a symptom of numerical trouble.
    NumericalTrouble {
        /// Phase in which the failure occurred (1 or 2).
        phase: u8,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A malformed problem (e.g. inverted bounds, NaN coefficient).
    InvalidProblem(String),
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "problem is infeasible"),
            MilpError::Unbounded => write!(f, "problem is unbounded"),
            MilpError::NumericalTrouble { phase, iterations } => write!(
                f,
                "simplex phase {phase} failed to converge after {iterations} iterations"
            ),
            MilpError::InvalidProblem(reason) => write!(f, "invalid problem: {reason}"),
        }
    }
}

impl Error for MilpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        assert_eq!(MilpError::Infeasible.to_string(), "problem is infeasible");
        assert!(MilpError::NumericalTrouble {
            phase: 1,
            iterations: 10
        }
        .to_string()
        .contains("phase 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MilpError>();
    }
}
