//! Pluggable LP backends for the staged solver pipeline.
//!
//! Branch & bound ([`crate::branch`]) no longer calls the dense simplex
//! directly; it prices each node's relaxation through the [`LpBackend`]
//! trait. Two implementations exist:
//!
//! * [`DenseBackend`] — the original dense-tableau two-phase simplex
//!   ([`crate::simplex`]), kept verbatim as the *reference* backend. It
//!   solves the original (un-presolved) problem and is the oracle the
//!   differential tests compare against.
//! * [`RevisedBackend`] — the sparse revised simplex with explicit basis
//!   factorization ([`crate::revised`]). It can adopt a starting
//!   [`Basis`] (warm start) and exports the optimal basis of every solve,
//!   which branch & bound feeds to child nodes and
//!   [`Solver::solve_program`](crate::Solver::solve_program) carries
//!   across fixed-point rounds.
//!
//! A [`Basis`] is a snapshot of column statuses over the *standardized*
//! column space of the revised backend (structural columns, split
//! negative parts, slacks, equality artificials — a deterministic
//! function of the problem structure). Bases are only meaningful for the
//! backend and problem shape that produced them; backends must reject
//! anything that does not fit ([`WarmStart::Miss`]) and fall back to a
//! cold start.

use std::fmt;

use crate::error::MilpError;
use crate::problem::Problem;
use crate::revised::RevisedSimplex;
use crate::simplex::{LpOutcome, Simplex};

/// Which LP backend a [`Solver`](crate::Solver) routes node relaxations
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Reference dense-tableau simplex on the original problem (no
    /// presolve, no warm starts). The correctness oracle.
    #[default]
    Dense,
    /// Presolve + sparse revised simplex with basis warm starts.
    Revised,
}

impl BackendKind {
    /// Parses a CLI/env spelling (`dense` / `revised`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "dense" => Some(BackendKind::Dense),
            "revised" => Some(BackendKind::Revised),
            _ => None,
        }
    }

    /// Canonical lowercase name (the spelling [`parse`](Self::parse)
    /// accepts).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Revised => "revised",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Status of one standardized column in a [`Basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisStatus {
    /// Basic in the given row slot.
    Basic(usize),
    /// Non-basic at its lower bound.
    AtLower,
    /// Non-basic at its upper bound.
    AtUpper,
}

/// A simplex basis snapshot: one [`BasisStatus`] per standardized column.
///
/// Produced by backends that support warm starts; opaque to callers,
/// which only shuttle it between solves of structurally identical
/// problems (parent → child B&B nodes, round → round window re-solves).
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    pub(crate) statuses: Vec<BasisStatus>,
}

impl Basis {
    /// Number of standardized columns the basis covers.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// `true` iff the basis covers no columns.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }
}

/// Whether a warm-start basis offered to a backend was adopted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// No basis was offered, or the backend does not support warm starts.
    NotAttempted,
    /// The offered basis was adopted (the solve started from it, possibly
    /// after primal repair pivots).
    Hit,
    /// The offered basis did not fit (wrong shape, incomplete row cover,
    /// or singular factorization); the backend cold-started instead.
    Miss,
}

/// Result of one LP solve through an [`LpBackend`].
#[derive(Debug, Clone)]
pub struct LpRun {
    /// The LP verdict.
    pub outcome: LpOutcome,
    /// Optimal basis, when the backend exports one (only on `Optimal`).
    pub basis: Option<Basis>,
    /// Simplex iterations performed (pivots and bound flips).
    pub pivots: u64,
    /// Warm-start disposition of this solve.
    pub warm: WarmStart,
}

/// An LP solver usable as the relaxation engine of branch & bound.
///
/// Implementations must be deterministic: identical `(problem, bounds,
/// warm)` inputs must produce identical outcomes, since the analysis
/// pipeline pins byte-identical results across backends and thread
/// counts.
pub trait LpBackend: fmt::Debug {
    /// Canonical backend name (for stats and reports).
    fn name(&self) -> &'static str;

    /// Solves the LP relaxation of `problem` under `bounds` overrides,
    /// optionally warm-starting from `warm`.
    ///
    /// # Errors
    ///
    /// [`MilpError::InvalidProblem`] for malformed input and
    /// [`MilpError::NumericalTrouble`] on convergence failure; an
    /// infeasible or unbounded LP is an [`LpOutcome`], not an error.
    fn solve_lp(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
    ) -> Result<LpRun, MilpError>;
}

/// The reference backend: dense-tableau two-phase simplex.
#[derive(Debug, Clone, Default)]
pub struct DenseBackend {
    /// The wrapped dense simplex configuration.
    pub simplex: Simplex,
}

impl LpBackend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn solve_lp(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
        _warm: Option<&Basis>,
    ) -> Result<LpRun, MilpError> {
        let (outcome, pivots) = self.simplex.solve_with_bounds_counted(problem, bounds)?;
        Ok(LpRun {
            outcome,
            basis: None,
            pivots,
            warm: WarmStart::NotAttempted,
        })
    }
}

/// The sparse revised-simplex backend with warm starts.
#[derive(Debug, Clone, Default)]
pub struct RevisedBackend {
    /// The wrapped revised simplex configuration.
    pub simplex: RevisedSimplex,
}

impl LpBackend for RevisedBackend {
    fn name(&self) -> &'static str {
        "revised"
    }

    fn solve_lp(
        &self,
        problem: &Problem,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
    ) -> Result<LpRun, MilpError> {
        self.simplex.solve_with_bounds(problem, bounds, warm)
    }
}

/// Materializes the backend for a [`BackendKind`].
pub fn backend_for(kind: BackendKind) -> Box<dyn LpBackend> {
    match kind {
        BackendKind::Dense => Box::new(DenseBackend::default()),
        BackendKind::Revised => Box::new(RevisedBackend::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    #[test]
    fn kind_parsing_round_trips() {
        assert_eq!(BackendKind::parse("dense"), Some(BackendKind::Dense));
        assert_eq!(BackendKind::parse("revised"), Some(BackendKind::Revised));
        assert_eq!(BackendKind::parse("simplex"), None);
        for kind in [BackendKind::Dense, BackendKind::Revised] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::default(), BackendKind::Dense);
    }

    #[test]
    fn dense_backend_counts_pivots_and_never_warm_starts() {
        let mut p = Problem::maximize();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.constrain(x + y, Cmp::Le, 4.0);
        p.set_objective(x + 2.0 * y);
        let bounds = vec![(0.0, f64::INFINITY); 2];
        let run = DenseBackend::default().solve_lp(&p, &bounds, None).unwrap();
        assert!(matches!(run.outcome, LpOutcome::Optimal(_)));
        assert!(run.pivots > 0, "a nontrivial LP takes at least one pivot");
        assert!(run.basis.is_none());
        assert_eq!(run.warm, WarmStart::NotAttempted);
    }

    #[test]
    fn backend_for_matches_kinds() {
        assert_eq!(backend_for(BackendKind::Dense).name(), "dense");
        assert_eq!(backend_for(BackendKind::Revised).name(), "revised");
    }
}
