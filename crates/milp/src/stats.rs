//! Solver-effort accounting.
//!
//! Before the staged-pipeline refactor, branch-and-bound node counts and
//! LP iteration counts died inside the solver: `MilpSolution` carried a
//! bare node count and everything else was discarded. [`SolverStats`] is
//! the uniform effort record threaded from the LP backends through
//! [`BranchAndBound`](crate::BranchAndBound) and up to the analysis
//! reports and `BENCH_<bin>.json` perf records.
//!
//! The counters are plain sums, so records can be merged across solves,
//! engines and worker threads ([`SolverStats::merge`]) and attributed to
//! a single analysis by differencing cumulative snapshots
//! ([`SolverStats::since`]).

use std::fmt;

/// Cumulative solver-effort counters.
///
/// Every field is a monotone count; the struct is closed under
/// [`merge`](SolverStats::merge) and [`since`](SolverStats::since).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Branch-and-bound nodes explored (for the combinatorial
    /// `ExactEngine` this counts its search nodes instead).
    pub bb_nodes: u64,
    /// LP relaxations solved (one per B&B node that reached the backend).
    pub lp_solves: u64,
    /// Simplex pivots performed across all LP solves, bound flips
    /// included.
    pub lp_pivots: u64,
    /// LP solves that were offered a starting basis.
    pub warm_start_attempts: u64,
    /// Offered bases that were actually adopted (factorizable and
    /// complete); a miss falls back to a cold start.
    pub warm_start_hits: u64,
    /// Variables eliminated by presolve fixed-variable substitution.
    pub presolve_vars_fixed: u64,
    /// Rows removed by presolve (singleton conversion or redundancy).
    pub presolve_rows_removed: u64,
    /// Variable bounds tightened by presolve.
    pub presolve_bounds_tightened: u64,
    /// Exact-DP solves that exhausted a search budget (memo entries,
    /// nodes, or the a-priori state-count gate) and degraded to the safe
    /// closed-form fallback cap. Zero for the MILP engines; a nonzero
    /// count means some window bounds are conservative, not exact.
    pub dp_fallbacks: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: SolverStats) {
        self.bb_nodes += other.bb_nodes;
        self.lp_solves += other.lp_solves;
        self.lp_pivots += other.lp_pivots;
        self.warm_start_attempts += other.warm_start_attempts;
        self.warm_start_hits += other.warm_start_hits;
        self.presolve_vars_fixed += other.presolve_vars_fixed;
        self.presolve_rows_removed += other.presolve_rows_removed;
        self.presolve_bounds_tightened += other.presolve_bounds_tightened;
        self.dp_fallbacks += other.dp_fallbacks;
    }

    /// The work performed between an `earlier` cumulative snapshot and
    /// this one (saturating, so stale snapshots cannot underflow).
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            bb_nodes: self.bb_nodes.saturating_sub(earlier.bb_nodes),
            lp_solves: self.lp_solves.saturating_sub(earlier.lp_solves),
            lp_pivots: self.lp_pivots.saturating_sub(earlier.lp_pivots),
            warm_start_attempts: self
                .warm_start_attempts
                .saturating_sub(earlier.warm_start_attempts),
            warm_start_hits: self.warm_start_hits.saturating_sub(earlier.warm_start_hits),
            presolve_vars_fixed: self
                .presolve_vars_fixed
                .saturating_sub(earlier.presolve_vars_fixed),
            presolve_rows_removed: self
                .presolve_rows_removed
                .saturating_sub(earlier.presolve_rows_removed),
            presolve_bounds_tightened: self
                .presolve_bounds_tightened
                .saturating_sub(earlier.presolve_bounds_tightened),
            dp_fallbacks: self.dp_fallbacks.saturating_sub(earlier.dp_fallbacks),
        }
    }

    /// `warm_start_hits / warm_start_attempts`, or `0.0` before the
    /// first attempt.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_start_attempts == 0 {
            0.0
        } else {
            self.warm_start_hits as f64 / self.warm_start_attempts as f64
        }
    }

    /// `true` iff every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == SolverStats::default()
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} LP solves, {} pivots, warm {}/{} ({:.0}%), \
             presolve −{} vars −{} rows {} bounds, {} DP fallbacks",
            self.bb_nodes,
            self.lp_solves,
            self.lp_pivots,
            self.warm_start_hits,
            self.warm_start_attempts,
            self.warm_hit_rate() * 100.0,
            self.presolve_vars_fixed,
            self.presolve_rows_removed,
            self.presolve_bounds_tightened,
            self.dp_fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = SolverStats {
            bb_nodes: 1,
            lp_solves: 2,
            lp_pivots: 3,
            warm_start_attempts: 4,
            warm_start_hits: 2,
            presolve_vars_fixed: 5,
            presolve_rows_removed: 6,
            presolve_bounds_tightened: 7,
            dp_fallbacks: 8,
        };
        a.merge(a);
        assert_eq!(a.bb_nodes, 2);
        assert_eq!(a.lp_pivots, 6);
        assert_eq!(a.presolve_bounds_tightened, 14);
        assert_eq!(a.dp_fallbacks, 16);
        assert!((a.warm_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn since_recovers_the_difference() {
        let early = SolverStats {
            bb_nodes: 10,
            lp_solves: 5,
            ..SolverStats::default()
        };
        let mut late = early;
        late.merge(SolverStats {
            bb_nodes: 3,
            lp_pivots: 9,
            ..SolverStats::default()
        });
        let diff = late.since(&early);
        assert_eq!(diff.bb_nodes, 3);
        assert_eq!(diff.lp_solves, 0);
        assert_eq!(diff.lp_pivots, 9);
        // A stale (larger) snapshot saturates instead of wrapping.
        assert_eq!(early.since(&late).bb_nodes, 0);
    }

    #[test]
    fn display_and_emptiness() {
        assert!(SolverStats::default().is_empty());
        assert_eq!(SolverStats::default().warm_hit_rate(), 0.0);
        let s = SolverStats {
            warm_start_attempts: 4,
            warm_start_hits: 3,
            ..SolverStats::default()
        };
        assert!(!s.is_empty());
        assert!(s.to_string().contains("3/4"));
    }
}
