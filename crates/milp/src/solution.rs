//! MILP solution and solve status.

use std::fmt;

use crate::expr::Var;
use crate::stats::SolverStats;

/// How the branch & bound run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// A node/iteration limit was hit; the reported incumbent (if any) is
    /// feasible and `bound` is a proven bound on the true optimum
    /// (upper bound when maximizing, lower bound when minimizing).
    LimitReached {
        /// Proven bound on the optimal objective.
        bound: f64,
    },
}

/// Result of a MILP solve.
///
/// Obtained from [`Solver::solve`](crate::Solver::solve); see the
/// crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) status: SolveStatus,
    pub(crate) stats: SolverStats,
}

impl MilpSolution {
    /// Value of a variable in the best solution found.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective of the best solution found.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Solve status (optimal vs. limit reached).
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// A proven bound on the true optimum: equal to the objective when
    /// optimal, the remaining tree bound when a limit was reached.
    pub fn proven_bound(&self) -> f64 {
        match self.status {
            SolveStatus::Optimal => self.objective,
            SolveStatus::LimitReached { bound } => bound,
        }
    }

    /// Branch-and-bound nodes explored.
    pub fn nodes(&self) -> usize {
        self.stats.bb_nodes as usize
    }

    /// Full solver-effort record for this solve (nodes, LP solves,
    /// pivots, warm starts, presolve reductions).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// `true` iff the solution is proven optimal.
    pub fn is_optimal(&self) -> bool {
        matches!(self.status, SolveStatus::Optimal)
    }
}

impl fmt::Display for MilpSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective {} ({} nodes, {})",
            self.objective,
            self.stats.bb_nodes,
            match self.status {
                SolveStatus::Optimal => "optimal".to_string(),
                SolveStatus::LimitReached { bound } => format!("limit reached, bound {bound}"),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = MilpSolution {
            values: vec![1.0, 0.0],
            objective: 5.0,
            status: SolveStatus::Optimal,
            stats: SolverStats {
                bb_nodes: 3,
                ..SolverStats::default()
            },
        };
        assert_eq!(s.value(Var(0)), 1.0);
        assert_eq!(s.values(), &[1.0, 0.0]);
        assert_eq!(s.objective(), 5.0);
        assert_eq!(s.proven_bound(), 5.0);
        assert!(s.is_optimal());
        assert_eq!(s.nodes(), 3);
        assert!(s.to_string().contains("optimal"));
    }

    #[test]
    fn limit_reached_reports_bound() {
        let s = MilpSolution {
            values: vec![],
            objective: 4.0,
            status: SolveStatus::LimitReached { bound: 6.0 },
            stats: SolverStats {
                bb_nodes: 100,
                ..SolverStats::default()
            },
        };
        assert!(!s.is_optimal());
        assert_eq!(s.proven_bound(), 6.0);
        assert!(s.to_string().contains("bound 6"));
    }
}
