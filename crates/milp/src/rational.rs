//! Exact rational arithmetic over `i128` for solution auditing.
//!
//! The solver works in `f64`; the audit layer ([`crate::audit`]) re-checks
//! its answers in exact arithmetic. Every finite `f64` is exactly
//! representable as `mantissa · 2^exponent`, so converting solver data to
//! [`Rational`] is lossless ([`Rational::from_f64`]). All operations are
//! *checked*: an `i128` overflow yields `None` instead of a silently wrong
//! verdict, and the auditor reports the check as inconclusive.

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor (binary-free Euclid is fine at this scale).
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Full 128×128 → 256-bit unsigned product as `(hi, lo)`.
fn mul_u256(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den` in reduced form.
    ///
    /// Returns `None` when `den == 0` or the reduction cannot be
    /// represented (`num == i128::MIN` edge cases).
    pub fn new(num: i128, den: i128) -> Option<Rational> {
        if den == 0 || num == i128::MIN || den == i128::MIN {
            return None;
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (n, d) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(n, d).max(1);
        let (n, d) = (n / g, d / g);
        if n > i128::MAX as u128 || d > i128::MAX as u128 {
            return None;
        }
        Some(Rational {
            num: sign * n as i128,
            den: d as i128,
        })
    }

    /// Creates an integer rational.
    pub fn from_int(v: i128) -> Rational {
        Rational { num: v, den: 1 }
    }

    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational). Returns `None` for non-finite inputs and for
    /// magnitudes whose exact form does not fit `i128` (|exponent| too
    /// large — e.g. subnormals or values beyond ~2⁷⁴).
    pub fn from_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rational::ZERO);
        }
        let bits = x.to_bits();
        let negative = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut mantissa, mut exp) = if biased == 0 {
            (frac as u128, -1074)
        } else {
            ((frac | (1 << 52)) as u128, biased - 1075)
        };
        // Strip trailing zero bits so the exponent range check is as
        // permissive as possible.
        while mantissa & 1 == 0 && exp < 0 {
            mantissa >>= 1;
            exp += 1;
        }
        let (num, den): (u128, u128) = if exp >= 0 {
            let shift = exp as u32;
            // Shifting past the leading zeros would drop mantissa bits.
            if shift > mantissa.leading_zeros() {
                return None;
            }
            (mantissa << shift, 1)
        } else {
            let shift = (-exp) as u32;
            if shift >= 127 {
                return None;
            }
            (mantissa, 1u128 << shift)
        };
        if num > i128::MAX as u128 || den > i128::MAX as u128 {
            return None;
        }
        let sign = if negative { -1 } else { 1 };
        Rational::new(sign * num as i128, den as i128)
    }

    /// Approximate `f64` value (for display and diagnostics only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Numerator (reduced form).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (reduced form, always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // num1/den1 + num2/den2, reducing by gcd(den1, den2) first.
        let g = gcd(self.den.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Rational::new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(-rhs)
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs()).max(1) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs()).max(1) as i128;
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Rational::new(num, den)
    }

    /// Checked division. `None` on division by zero or overflow.
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(Rational::new(rhs.den, rhs.num)?)
    }

    /// Exact floor.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Exact ceiling.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Exact distance to the nearest integer (always in `[0, 1/2]`).
    pub fn dist_to_nearest_int(self) -> Rational {
        let r = self.num.rem_euclid(self.den); // 0 <= r < den
        let d = r.min(self.den - r);
        Rational::new(d, self.den).unwrap_or(Rational::ZERO)
    }
}

impl std::ops::Neg for Rational {
    type Output = Rational;

    /// Exact negation.
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Exact comparison via 256-bit cross products: num1·den2 vs
        // num2·den1 (denominators positive, so the sense is preserved).
        let ls = self.num.signum();
        let rs = other.num.signum();
        if ls != rs {
            return ls.cmp(&rs);
        }
        if ls == 0 {
            return Ordering::Equal;
        }
        let l = mul_u256(self.num.unsigned_abs(), other.den.unsigned_abs());
        let r = mul_u256(other.num.unsigned_abs(), self.den.unsigned_abs());
        if ls > 0 {
            l.cmp(&r)
        } else {
            r.cmp(&l)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d).unwrap()
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-3, -9), r(1, 3));
        assert_eq!(r(3, -9), r(-1, 3));
        assert!(Rational::new(1, 0).is_none());
        assert_eq!(r(5, 1).to_string(), "5");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for x in [0.0, 1.0, -2.5, 0.1, 1e-9, 12345.6789, -3.0 / 7.0, 1e18] {
            let q = Rational::from_f64(x).unwrap();
            assert_eq!(q.to_f64(), x, "{x} must convert exactly");
        }
        // 0.1 is NOT 1/10 in binary; the conversion must reflect that.
        assert_ne!(Rational::from_f64(0.1).unwrap(), r(1, 10));
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
        assert!(Rational::from_f64(f64::MIN_POSITIVE / 2.0).is_none()); // subnormal
    }

    #[test]
    fn arithmetic_is_exact() {
        assert_eq!(r(1, 3).checked_add(r(1, 6)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).checked_sub(r(2, 3)).unwrap(), r(-1, 6));
        assert_eq!(r(2, 3).checked_mul(r(9, 4)).unwrap(), r(3, 2));
        assert_eq!(r(1, 2).checked_div(r(1, 4)).unwrap(), r(2, 1));
        assert!(r(1, 2).checked_div(Rational::ZERO).is_none());
        // The classic float failure 0.1 + 0.2 != 0.3 stays exact here.
        let sum = r(1, 10).checked_add(r(2, 10)).unwrap();
        assert_eq!(sum, r(3, 10));
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let big = Rational::from_int(i128::MAX / 2);
        assert!(big.checked_mul(big).is_none());
        assert!(big.checked_add(big).is_some()); // exactly representable
        assert!(Rational::from_int(i128::MAX)
            .checked_add(Rational::ONE)
            .is_none());
    }

    #[test]
    fn comparison_is_exact_even_when_products_overflow() {
        // Cross products num·den exceed i128 here; mul_u256 keeps it exact.
        let a = r(i128::MAX - 1, i128::MAX);
        let b = Rational::ONE;
        assert!(a < b);
        assert!(-a > -b);
        assert_eq!(r(10, 20).cmp(&r(1, 2)), Ordering::Equal);
        assert!(r(-1, 3) < r(1, 1_000_000_000));
    }

    #[test]
    fn floor_ceil_and_nearest() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(5, 1).floor(), 5);
        assert_eq!(r(9, 4).dist_to_nearest_int(), r(1, 4));
        assert_eq!(r(-9, 4).dist_to_nearest_int(), r(1, 4));
        assert_eq!(r(3, 1).dist_to_nearest_int(), Rational::ZERO);
        assert_eq!(r(1, 2).dist_to_nearest_int(), r(1, 2));
    }

    #[test]
    fn predicates() {
        assert!(r(0, 5).is_zero() && !r(0, 5).is_positive());
        assert!(r(3, 2).is_positive() && !r(3, 2).is_integer());
        assert!(r(-3, 2).is_negative());
        assert!(r(4, 2).is_integer());
        assert_eq!(r(-3, 4).abs(), r(3, 4));
    }
}
